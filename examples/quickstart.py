#!/usr/bin/env python
"""Quickstart: compress one gradient with A2SGD and run a tiny distributed job.

This script shows the two levels of the public API:

1. the compressor level — how Algorithm 1 turns a gradient into two scalars,
   what travels over the network, and how the gradient is reconstructed;
2. the experiment level — training one of the paper's models with simulated
   data-parallel workers and comparing A2SGD against dense SGD.

Run with ``python examples/quickstart.py``.  It finishes in well under a
minute on a laptop.
"""

import numpy as np

from repro import A2SGDCompressor, DenseCompressor, ExperimentSpec, run_algorithm_sweep
from repro.analysis.reporting import format_table


def compressor_walkthrough() -> None:
    """Step through Algorithm 1 on a synthetic gradient."""
    print("=" * 72)
    print("Part 1 — A2SGD on a single gradient (Algorithm 1, lines 3-6)")
    print("=" * 72)

    rng = np.random.default_rng(0)
    gradient = (rng.standard_normal(1_000_000) * 0.01).astype(np.float32)

    compressor = A2SGDCompressor()
    payload, ctx = compressor.compress(gradient)
    print(f"model gradient size            : {gradient.size:,} float32 values "
          f"({gradient.nbytes / 1e6:.1f} MB)")
    print(f"wire payload                   : {payload.size} values -> "
          f"{compressor.wire_bits(gradient.size):.0f} bits")
    print(f"positive / negative means      : mu+ = {payload[0]:.6f}, mu- = {payload[1]:.6f}")

    # Pretend three other workers produced slightly different means and the
    # Allreduce averaged them.
    global_means = payload * np.array([1.03, 0.97])
    reconstructed = compressor.decompress(global_means, ctx)
    print(f"reconstruction error vs local  : "
          f"{np.linalg.norm(reconstructed - gradient) / np.linalg.norm(gradient):.4f} "
          "(relative)")
    print(f"variance ratio (reconstructed / original): "
          f"{reconstructed.var() / gradient.var():.4f}")

    dense_bits = DenseCompressor().wire_bits(gradient.size)
    print(f"traffic reduction vs dense SGD : {dense_bits / compressor.wire_bits(gradient.size):,.0f}x")
    print()


def distributed_quickstart() -> None:
    """Train the tiny FNN-3 preset with 4 simulated workers."""
    print("=" * 72)
    print("Part 2 — distributed training with 4 simulated workers")
    print("=" * 72)

    # One declarative spec describes the experiment; the sweep replaces just
    # the algorithm per cell.  The same spec serializes to JSON and runs via
    # ``python -m repro run --config <file>``.
    spec = ExperimentSpec(model="fnn3", preset="tiny", world_size=4, epochs=4,
                          batch_size=16, max_iterations_per_epoch=20,
                          num_train=512, num_test=128, seed=0)
    results = run_algorithm_sweep(spec, ["dense", "a2sgd"])
    rows = []
    for algorithm, result in results.items():
        rows.append([
            algorithm,
            f"{result.final_metric:.1f}%",
            f"{result.wire_bits_per_iteration:,.0f}",
            f"{result.timeline.communication_s * 1e3:.3f}",
            f"{result.wall_time_s:.1f}",
        ])

    print(format_table(
        ["algorithm", "final top-1", "bits/worker/iter", "simulated comm (ms)", "wall time (s)"],
        rows,
        title="Tiny FNN-3, 4 workers, 4 epochs (synthetic MNIST)"))
    print()
    print("A2SGD reaches essentially the same accuracy as dense SGD while")
    print("exchanging 64 bits per worker per iteration instead of 32n.")


if __name__ == "__main__":
    compressor_walkthrough()
    distributed_quickstart()
