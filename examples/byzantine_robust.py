#!/usr/bin/env python
"""Byzantine-robust training: mean vs geometric-median aggregation.

Eight workers train FNN-3 with dense gradient exchange, but two of them are
Byzantine: every iteration they flip the sign of their local gradient
(``sync.corrupt_ranks`` with the default ``sign_flip`` corruption), pushing
the averaged update backwards.  The only thing that changes between the two
runs below is the *aggregator* — the paper's elementwise mean against the
Weiszfeld geometric median — exactly the swap Byzantine-robust systems like
blades make.  The mean folds the poisoned gradients straight into every
update; the geometric median treats each rank's contribution as one point
and refuses to follow the two liars.

Run with ``python examples/byzantine_robust.py``.
"""

from repro import ExperimentSpec, run_experiment

WORLD_SIZE = 8
CORRUPT_RANKS = [2, 5]          # two sign-flipping Byzantine workers


def run(aggregator: str, corrupt: bool):
    spec = ExperimentSpec(
        model="fnn3", preset="tiny", algorithm="dense",
        world_size=WORLD_SIZE, epochs=3, batch_size=16,
        max_iterations_per_epoch=20, num_train=512, num_test=128,
        sync={
            "aggregator": aggregator,
            "corrupt_ranks": CORRUPT_RANKS if corrupt else [],
        },
    )
    return run_experiment(spec)


def main() -> None:
    clean = run("mean", corrupt=False)
    poisoned_mean = run("mean", corrupt=True)
    poisoned_median = run("geometric_median", corrupt=True)

    print(f"fnn3/tiny, dense exchange, {WORLD_SIZE} workers, "
          f"{len(CORRUPT_RANKS)} sign-flipping ranks {CORRUPT_RANKS}\n")
    print(f"{'setup':44s} {'top-1 accuracy':>15s}")
    print("-" * 60)
    for label, result in [
        ("no corruption, mean aggregation", clean),
        ("corrupted, mean aggregation", poisoned_mean),
        ("corrupted, geometric_median aggregation", poisoned_median),
    ]:
        print(f"{label:44s} {result.final_metric:14.2f}%")

    recovered = poisoned_median.final_metric - poisoned_mean.final_metric
    print(f"\nthe geometric median recovers {recovered:+.2f} accuracy points "
          f"under attack\n(swapping one registry entry — no trainer changes)")


if __name__ == "__main__":
    main()
