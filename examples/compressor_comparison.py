#!/usr/bin/env python
"""Compare all gradient compressors on the same gradient stream.

A smaller-scale, self-contained version of the paper's §4.3 analysis: feed an
identical sequence of realistic gradients through every registered compressor
(including the extensions TernGrad, SignSGD and Rand-K that the paper lists
as related work) and report

* bits per worker per iteration (Table 2, column 3),
* measured compression time on this machine (Figure 2's quantity),
* the relative compression error before error feedback, and
* how faithfully the across-worker averaged update tracks dense averaging.

Run with ``python examples/compressor_comparison.py [--size 1000000]``.
"""

import argparse

import numpy as np

from repro.analysis.reporting import format_table
from repro.compress import get_compressor, list_compressors
from repro.compress.base import ExchangeKind
from repro.utils.timer import median_time


def realistic_gradients(n: int, workers: int, seed: int = 0) -> list[np.ndarray]:
    """Bell-shaped gradients with slight per-worker variation (as in Fig. 1)."""
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal(n) * 0.01
    return [(shared + rng.standard_normal(n) * 0.004).astype(np.float32)
            for _ in range(workers)]


def fidelity_of_average(name: str, gradients: list[np.ndarray]) -> float:
    """Relative gap between the algorithm's averaged update and dense averaging."""
    compressors = [get_compressor(name) for _ in gradients]
    payloads, contexts = [], []
    for compressor, gradient in zip(compressors, gradients):
        payload, ctx = compressor.compress(gradient)
        payloads.append(payload)
        contexts.append(ctx)
    if compressors[0].exchange is ExchangeKind.ALLREDUCE:
        if name == "dense":
            global_payload = np.mean(np.stack(payloads), axis=0)
        else:
            global_payload = np.mean(np.stack(payloads), axis=0)
        updates = [c.decompress(global_payload, ctx) for c, ctx in zip(compressors, contexts)]
    else:
        updates = [c.decompress_gathered(payloads, ctx) for c, ctx in zip(compressors, contexts)]
    dense_average = np.mean(np.stack(gradients), axis=0)
    averaged_update = np.mean(np.stack(updates), axis=0)
    return float(np.linalg.norm(averaged_update - dense_average)
                 / np.linalg.norm(dense_average))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1_000_000,
                        help="gradient length (model parameters)")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    gradients = realistic_gradients(args.size, args.workers)
    timing_sample = gradients[0]

    rows = []
    for name in list_compressors():
        compressor = get_compressor(name)
        seconds = median_time(lambda c=compressor: c.compress(timing_sample.copy()), repeats=3)
        fresh = get_compressor(name)
        fresh.compress(timing_sample.copy())
        rows.append([
            name,
            compressor.exchange.value,
            f"{compressor.wire_bits(args.size):,.0f}",
            compressor.computation_complexity(args.size),
            f"{seconds * 1e3:.2f}",
            f"{fresh.stats.last_compression_error:.3f}",
            f"{fidelity_of_average(name, gradients):.3f}",
        ])

    print(format_table(
        ["algorithm", "exchange", "bits/worker", "complexity", "compress (ms)",
         "single-shot error", "avg-update gap vs dense"],
        rows,
        title=f"Gradient compressors on an n={args.size:,} gradient, "
              f"{args.workers} workers"))
    print()
    print("Notes: 'single-shot error' is the relative error of one compressed")
    print("gradient before error feedback; 'avg-update gap' compares the")
    print("across-worker averaged update with plain dense averaging (A2SGD's")
    print("gap comes only from the difference between local and global means).")


if __name__ == "__main__":
    main()
