#!/usr/bin/env python
"""Distributed ResNet-20 on synthetic CIFAR-10 across all five algorithms.

Reproduces one cell of the paper's Figure 3(c) setup at CI scale: the same
ResNet-20 architecture (scaled width), sharded synthetic CIFAR-10 data, and
the five gradient-synchronization algorithms the paper compares.  Prints the
per-epoch accuracy curve and the traffic/time accounting for each algorithm.

Run with ``python examples/distributed_resnet_cifar.py [--workers 4] [--epochs 3]``.
"""

import argparse

from repro.analysis.reporting import format_figure_series, format_table
from repro.core import ExperimentSpec, run_experiment

ALGORITHMS = ("dense", "topk", "qsgd", "gaussiank", "a2sgd")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4, help="simulated data-parallel workers")
    parser.add_argument("--epochs", type=int, default=3, help="training epochs")
    parser.add_argument("--iterations", type=int, default=15, help="iterations per epoch")
    args = parser.parse_args()

    base = ExperimentSpec(model="resnet20", preset="tiny", world_size=args.workers,
                          epochs=args.epochs, batch_size=8,
                          max_iterations_per_epoch=args.iterations,
                          num_train=512, num_test=128, seed=0)
    results = {}
    for algorithm in ALGORITHMS:
        # The sparsifiers use a denser ratio than the paper's 0.001 because the
        # run is only a few dozen iterations long (see DESIGN.md).
        kwargs = {"ratio": 0.05} if algorithm in ("topk", "gaussiank") else {}
        print(f"training resnet20/tiny with {algorithm} on {args.workers} workers ...")
        results[algorithm] = run_experiment(
            base.replace(algorithm=algorithm, compressor_kwargs=kwargs))

    epochs = results["dense"].metrics.epochs
    accuracy_series = {name: result.metrics.metric for name, result in results.items()}
    print()
    print(format_figure_series(accuracy_series, epochs, x_label="epoch",
                               title=f"Figure 3(c)-style panel — ResNet-20, "
                                     f"{args.workers} workers, top-1 accuracy (%)"))

    print()
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            f"{result.final_metric:.1f}%",
            f"{result.wire_bits_per_iteration:,.0f}",
            f"{result.timeline.communication_s * 1e3:.3f}",
            f"{result.timeline.compression_s * 1e3:.1f}",
            f"{result.wall_time_s:.1f}",
        ])
    print(format_table(
        ["algorithm", "final top-1", "bits/worker/iter", "sim comm (ms)",
         "compression (ms)", "wall time (s)"],
        rows, title="Per-algorithm accounting"))


if __name__ == "__main__":
    main()
