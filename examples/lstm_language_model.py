#!/usr/bin/env python
"""LSTM language modelling with A2SGD — the paper's headline workload.

LSTM-PTB (66 M parameters) is the model where A2SGD's O(1) communication
matters most in the paper.  This example trains the scaled-down preset of the
same architecture on the synthetic Penn-Treebank-style corpus with simulated
workers, and then uses the analytic cost model to show what the same
configuration costs at the paper's full 66 M-parameter scale on a 100 Gbps
cluster — reproducing the reasoning behind Figures 4/5.

Run with ``python examples/lstm_language_model.py [--workers 2] [--epochs 2]``.
"""

import argparse

from repro.analysis.reporting import format_figure_series, format_table
from repro.core import ExperimentSpec, run_algorithm_sweep
from repro.core.cost_model import CostModel


def train_tiny_lstm(workers: int, epochs: int) -> None:
    print("=" * 72)
    print("Part 1 — training the tiny LSTM preset with A2SGD vs dense SGD")
    print("=" * 72)
    spec = ExperimentSpec(model="lstm_ptb", preset="tiny", world_size=workers,
                          epochs=epochs, seq_len=10, max_iterations_per_epoch=25,
                          base_lr=5.0, num_train=8000, num_test=1600, seed=0)
    print("training lstm_ptb/tiny with dense and a2sgd ...")
    results = run_algorithm_sweep(spec, ["dense", "a2sgd"])

    epochs_axis = results["dense"].metrics.epochs
    series = {name: result.metrics.metric for name, result in results.items()}
    print()
    print(format_figure_series(series, epochs_axis, x_label="epoch",
                               title=f"Figure 3(d)-style panel — LSTM perplexity, "
                                     f"{workers} workers"))
    print()


def paper_scale_cost_analysis(workers: int) -> None:
    print("=" * 72)
    print("Part 2 — the same job at paper scale (66 M parameters, 100 Gbps IB)")
    print("=" * 72)
    cost_model = CostModel()
    rows = []
    for algorithm in ("dense", "topk", "qsgd", "gaussiank", "a2sgd"):
        breakdown = cost_model.iteration_breakdown("lstm_ptb", algorithm, workers)
        rows.append([
            algorithm,
            f"{cost_model.communication_bits(algorithm, cost_model.model_parameters('lstm_ptb')):,.0f}",
            f"{breakdown.compute_s * 1e3:.1f}",
            f"{breakdown.compression_s * 1e3:.1f}",
            f"{breakdown.communication_s * 1e3:.2f}",
            f"{breakdown.total_s * 1e3:.1f}",
            f"{cost_model.total_training_time('lstm_ptb', algorithm, workers) / 3600:.1f}",
        ])
    print(format_table(
        ["algorithm", "bits/worker/iter", "compute (ms)", "compression (ms)",
         "comm (ms)", "iteration (ms)", "total training (h)"],
        rows,
        title=f"LSTM-PTB at paper scale, {workers} workers (analytic cost model)"))
    print()
    a2sgd = cost_model.total_training_time("lstm_ptb", "a2sgd", workers)
    for other in ("dense", "topk", "qsgd"):
        ratio = cost_model.total_training_time("lstm_ptb", other, workers) / a2sgd
        print(f"A2SGD total-training-time advantage vs {other:10s}: {ratio:5.1f}x")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=2)
    args = parser.parse_args()
    train_tiny_lstm(args.workers, args.epochs)
    paper_scale_cost_analysis(max(2, args.workers * 8))


if __name__ == "__main__":
    main()
