#!/usr/bin/env python
"""Authoring a trainer callback: straggler injection in ~10 lines.

The trainer's lifecycle (``on_train_start`` / ``on_iteration_end`` /
``on_epoch_end`` / ...) is open: any cross-cutting behaviour — stragglers,
worker dropout, gradient noise, custom logging — is a
:class:`repro.Callback` plugged into the run, with no trainer edits.

This example simulates a straggling worker by charging extra simulated
communication time for one rank every iteration, then compares the timing
of a clean run against the straggler run.  Run with
``python examples/custom_callback.py``.
"""

from repro import Callback, ExperimentSpec, run_experiment
from repro.core.callbacks import CALLBACKS


# The whole straggler implementation: slow one worker by `delay_s` per
# iteration, exactly as if its network link stalled.  The workers run in
# lockstep, so the straggler's delay gates every exchange and is charged to
# the world's simulated clock — but only while that rank actually exists.
@CALLBACKS.register("straggler", description="charge one rank extra latency per iteration")
class StragglerCallback(Callback):
    def __init__(self, rank: int = 0, delay_s: float = 0.002):
        self.rank = rank
        self.delay_s = delay_s

    def on_iteration_end(self, state):
        if self.rank < state.world_size:
            state.trainer.world.stats.simulated_time_s += self.delay_s


def main() -> None:
    spec = ExperimentSpec(model="fnn3", preset="tiny", algorithm="a2sgd",
                          world_size=4, epochs=3, batch_size=16,
                          max_iterations_per_epoch=20, num_train=512, num_test=128)

    clean = run_experiment(spec)
    # Because StragglerCallback is registered, a declarative spec (or a CLI
    # `--callback straggler`) can request it by name too.
    straggler = run_experiment(
        spec.replace(callbacks=[{"name": "straggler", "delay_s": 0.002}]))

    clean_comm = clean.metrics.simulated_comm_time_s[-1]
    straggler_comm = straggler.metrics.simulated_comm_time_s[-1]
    print(f"simulated communication time, clean run     : {clean_comm * 1e3:8.3f} ms")
    print(f"simulated communication time, with straggler: {straggler_comm * 1e3:8.3f} ms")
    print(f"accuracy unchanged (same seed, same updates): "
          f"{clean.final_metric:.2f}% vs {straggler.final_metric:.2f}%")
    assert straggler_comm > clean_comm


if __name__ == "__main__":
    main()
