"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without network access to build
backends (``pip install -e . --no-build-isolation`` or
``python setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of A2SGD: O(1) Communication for Distributed SGD "
                 "through Two-Level Gradient Averaging"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
