"""Tape recording and replay for the batched autograd executors.

The define-by-run graph the batched executors build is structurally identical
every iteration — only the input/target data changes.  Rebuilding it in Python
each step (closure allocation, broadcasting checks, graph bookkeeping) is the
dominant cost for deep models.  A :class:`Tape` records, during one eager
iteration, the ordered list of *replay thunks* the ops in
:mod:`repro.tensor.tensor` and :mod:`repro.tensor.functional` emit; a
:class:`TapeReplayer` then re-runs that program on later iterations after the
caller has refreshed the input buffers in place.

Correctness rests on two invariants:

1. **In-place refresh.** Every recorded node's ``data`` array is updated in
   place on replay, never rebound, so the references captured by the backward
   closures (and by downstream replay thunks) stay valid.  Ops whose output is
   a NumPy view of their parent record a view marker and do nothing on replay.
2. **Identical backward order.** Float accumulation into multi-consumer nodes
   is order-sensitive, so the replayer computes the backward topological order
   once using the *same* iterative DFS as :meth:`Tensor.backward` and walks it
   every replay.  Together with thunks that re-run the exact eager arithmetic
   (same ufuncs, only routed through ``out=``), this makes replay bit-identical
   to the eager batched path.

Ops that cannot be replayed (data-dependent control flow such as ``dropout``,
comparisons, ``Tensor.where``) invalidate the tape; executors then fall back
to eager execution for that signature.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Tuple

import numpy as np

from .tensor import Tensor, _NO_REPLAY, _VIEW_REPLAY, set_active_tape


class Tape:
    """Recording of one eager iteration's forward program.

    ``record_node`` / ``record_effect`` are called by the op implementations
    while this tape is installed via :func:`repro.tensor.tensor.set_active_tape`
    (use the :func:`recording` context manager).  Steps are ``(kind, fn)``
    pairs where ``kind`` is ``"ew"`` for fusable elementwise thunks, ``"op"``
    for other replayable thunks, and ``"effect"`` for recorded side effects
    (e.g. BatchNorm running-buffer updates).
    """

    __slots__ = ("nodes", "steps", "view_ops", "invalid_reason")

    def __init__(self) -> None:
        self.nodes: List[Tensor] = []
        self.steps: List[Tuple[str, Callable[[], None]]] = []
        self.view_ops: int = 0
        self.invalid_reason: Optional[str] = None

    @property
    def valid(self) -> bool:
        return self.invalid_reason is None

    def invalidate(self, reason: str) -> None:
        if self.invalid_reason is None:
            self.invalid_reason = reason

    def record_node(self, node: Tensor, replay, elementwise: bool) -> None:
        self.nodes.append(node)
        if replay is _NO_REPLAY:
            self.invalidate(f"op {node.op!r} has no replay rule")
            return
        if replay is _VIEW_REPLAY:
            self.view_ops += 1
            return
        self.steps.append(("ew" if elementwise else "op", replay))

    def record_effect(self, effect: Callable[[], None]) -> None:
        self.steps.append(("effect", effect))


@contextlib.contextmanager
def recording(tape: Tape):
    """Install ``tape`` as the active recording target for the enclosed block."""
    previous = set_active_tape(tape)
    try:
        yield tape
    finally:
        set_active_tape(previous)


def _fused(thunks: List[Callable[[], None]]) -> Callable[[], None]:
    """Collapse a run of elementwise thunks into one call.

    The arithmetic is unchanged — the same thunks run in the same order — but
    a single dispatch replaces one Python call per op, which is where the time
    goes for chains like bias-add -> ReLU or the four LSTM gate activations.
    """
    def run() -> None:
        for thunk in thunks:
            thunk()
    return run


def _peephole(steps: List[Tuple[str, Callable[[], None]]]
              ) -> Tuple[List[Callable[[], None]], int]:
    """Plan the replay program: fuse maximal runs of adjacent elementwise
    thunks.  Returns ``(program, fused_chains)``."""
    program: List[Callable[[], None]] = []
    fused_chains = 0
    run: List[Callable[[], None]] = []

    def flush() -> None:
        nonlocal fused_chains
        if not run:
            return
        if len(run) == 1:
            program.append(run[0])
        else:
            program.append(_fused(list(run)))
            fused_chains += 1
        run.clear()

    for kind, fn in steps:
        if kind == "ew":
            run.append(fn)
        else:
            flush()
            program.append(fn)
    flush()
    return program, fused_chains


def _backward_topo(root: Tensor) -> List[Tensor]:
    """Topological order of the graph below ``root``.

    This is a verbatim copy of the DFS in :meth:`Tensor.backward`: the replay
    backward pass must visit nodes in exactly the same order, because float
    accumulation into multi-consumer parents depends on it.
    """
    topo: List[Tensor] = []
    visited: set = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


class TapeReplayer:
    """Re-execute a recorded iteration against refreshed input buffers.

    Parameters
    ----------
    tape:
        A valid :class:`Tape` recorded over one eager iteration.
    loss:
        The loss tensor produced during recording; replay seeds its gradient
        and walks the recorded graph backward from it.
    seed_grad:
        The gradient seed used every replay (defaults to ones like the loss,
        matching ``loss.backward(np.ones(P))`` on the eager path).  The array
        is never mutated, so one allocation serves all replays.
    """

    __slots__ = ("_program", "_topo", "_loss", "_seed", "stats")

    def __init__(self, tape: Tape, loss: Tensor,
                 seed_grad: Optional[np.ndarray] = None) -> None:
        if not tape.valid:
            raise ValueError(f"cannot replay an invalid tape: {tape.invalid_reason}")
        if loss._backward is None:
            raise ValueError("loss tensor has no backward closure; was it recorded?")
        self._program, fused_chains = _peephole(tape.steps)
        self._topo = _backward_topo(loss)
        self._loss = loss
        if seed_grad is None:
            seed_grad = np.ones_like(loss.data)
        else:
            seed_grad = np.asarray(seed_grad, dtype=loss.data.dtype)
            if seed_grad.shape != loss.data.shape:
                raise ValueError(f"seed gradient shape {seed_grad.shape} does not "
                                 f"match loss shape {loss.data.shape}")
        self._seed = seed_grad
        self.stats = {
            "recorded_ops": len(tape.nodes),
            "view_ops": tape.view_ops,
            "replay_steps": len(self._program),
            "fused_chains": fused_chains,
        }

    def replay(self) -> np.ndarray:
        """Run forward + backward; returns the refreshed loss array.

        The caller must have copied this iteration's inputs/targets into the
        recorded input buffers (in place) beforehand, and reads gradients from
        the same pinned flat-buffer views as on the eager path.
        """
        for step in self._program:
            step()
        loss = self._loss
        loss._accumulate(self._seed)
        for node in reversed(self._topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
            if node._parents:
                node.grad = None
        return loss.data
