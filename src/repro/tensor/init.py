"""Parameter initializers.

The initializers mirror the defaults the paper's PyTorch models would have
used: Kaiming (He) initialization for convolution / ReLU layers, Xavier
(Glorot) for linear layers, and uniform initialization for LSTM / embedding
weights.  Every initializer takes an explicit ``numpy.random.Generator`` so
model construction is reproducible.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out,in) and conv (out,in,k,k) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape)) if shape else 1
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = math.sqrt(2.0)) -> Tensor:
    """He-normal initialization appropriate for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(max(1, fan_in))
    return Tensor(rng.normal(0.0, std, size=shape).astype(np.float32), requires_grad=True)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    gain: float = math.sqrt(2.0)) -> Tensor:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / max(1, fan_in))
    return Tensor(rng.uniform(-bound, bound, size=shape).astype(np.float32), requires_grad=True)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> Tensor:
    """Glorot-uniform initialization for tanh/sigmoid layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / max(1, fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape).astype(np.float32), requires_grad=True)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, bound: float = 0.1) -> Tensor:
    """Uniform initialization in ``[-bound, bound]`` (LSTM / embedding default)."""
    return Tensor(rng.uniform(-bound, bound, size=shape).astype(np.float32), requires_grad=True)


def zeros(shape: Tuple[int, ...]) -> Tensor:
    """Zero initialization (biases)."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True)


def ones(shape: Tuple[int, ...]) -> Tensor:
    """One initialization (BatchNorm scale)."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=True)
