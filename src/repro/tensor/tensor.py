"""Core :class:`Tensor` type and reverse-mode automatic differentiation.

The implementation follows the classic "define-by-run" pattern: every
operation returns a new :class:`Tensor` holding references to its inputs and a
closure that knows how to propagate the output gradient back to them.
Calling :meth:`Tensor.backward` topologically sorts the graph and runs the
closures in reverse order.

Broadcasting is supported for the elementwise operations; gradients flowing
into a broadcast operand are reduced (summed) over the broadcast axes so the
gradient always has the same shape as the operand (``_unbroadcast``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with optional gradient tracking.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of dtype float32/float64
        (integer data is allowed for index tensors but cannot require grad).
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op",
                 "_grad_view")
    __array_priority__ = 100.0  # make NumPy defer to Tensor's reflected ops

    def __init__(self, data: ArrayLike, requires_grad: bool = False, *,
                 _parents: Tuple["Tensor", ...] = (), _op: str = "leaf"):
        if type(data) is np.ndarray:
            arr = data
        elif isinstance(data, Tensor):
            arr = data.data
        else:
            arr = np.asarray(data)
        dtype = arr.dtype
        if dtype != np.float32 and dtype not in (np.int64, np.int32, np.bool_):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            raise ValueError("only floating point tensors can require gradients")
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._grad_view: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = _parents if self.requires_grad or _parents else ()
        self.op: str = _op

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def pin_grad(self, view: Optional[np.ndarray]) -> None:
        """Pin gradient storage to a preallocated array (usually a strided view
        into a flat per-replica buffer — see :mod:`repro.core.flat_buffer`).

        While pinned, the first ``backward`` accumulation writes into ``view``
        in place and sets ``self.grad`` to it, so flattening the gradients of a
        pinned model is a no-op.  Passing ``None`` unpins.  Code that assigns
        ``self.grad`` directly still works: the pinned view is only used when a
        fresh gradient buffer would otherwise have been allocated.
        """
        if view is not None:
            if view.shape != self.data.shape:
                raise ValueError(f"pinned view shape {view.shape} does not match "
                                 f"tensor shape {self.data.shape}")
            if view.dtype != self.data.dtype:
                raise ValueError("pinned view dtype must match the tensor dtype")
        self._grad_view = view
        if self.grad is not None:
            self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output, wiring the backward closure when needed."""
        requires = False
        if _GRAD_ENABLED:
            for p in parents:
                if p.requires_grad:
                    requires = True
                    break
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else (),
                     _op=op)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (allocating on first use).

        When gradient storage is pinned (:meth:`pin_grad`) the accumulation
        happens in place inside the pinned buffer, so no per-parameter arrays
        are allocated on the training hot path.
        """
        if type(grad) is not np.ndarray:
            grad = np.asarray(grad)
        if grad.dtype != self.data.dtype:
            target = self.data.dtype if np.issubdtype(self.data.dtype, np.floating) else np.float32
            grad = grad.astype(target)
        current = self.grad
        pinned = self._grad_view
        if current is None:
            if pinned is not None:
                pinned[...] = grad
                self.grad = pinned
            else:
                self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        elif current is pinned:
            pinned += grad
        else:
            self.grad = current + grad

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad if not isinstance(grad, Tensor) else grad.data,
                              dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match output shape {self.data.shape}")

        topo: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
            # Free intermediate gradients to bound memory in long chains; leaves
            # (parents == ()) keep theirs for the optimizer.
            if node._parents:
                node.grad = None

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=np.float32))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), "sub", backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) / self

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(out_data, (self,), "neg", backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * (self.data ** (exponent - 1)))

        return Tensor._make(out_data, (self,), "pow", backward)

    # comparisons produce detached boolean/float tensors (no gradient).
    def __gt__(self, other: ArrayLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data > other_data).astype(np.float32))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data < other_data).astype(np.float32))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data >= other_data).astype(np.float32))

    def __le__(self, other: ArrayLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data <= other_data).astype(np.float32))

    # ------------------------------------------------------------------ #
    # unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), "log", backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), "sqrt", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), "tanh", backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function: exponentiate only the negative
        # magnitude so neither branch can overflow.
        neg_abs = -np.abs(self.data)
        exp_neg = np.exp(neg_abs)
        out_data = np.where(self.data >= 0, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), "sigmoid", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), "relu", backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), "abs", backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), "clip", backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), "sum", backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split the gradient among ties to keep sums exact.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor._make(out_data, (self,), "max", backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), "reshape", backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), "transpose", backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]

        # Basic indexing (ints / slices only) selects each element at most once,
        # so a simple in-place add suffices; fancy indexing may repeat elements
        # and needs the unbuffered np.add.at.
        parts = index if isinstance(index, tuple) else (index,)
        basic = all(isinstance(p, (int, np.integer, slice, type(Ellipsis), type(None)))
                    for p in parts)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    full[index] += grad
                else:
                    np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), "getitem", backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)
        p = padding

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[..., p:-p, p:-p])

        return Tensor._make(out_data, (self,), "pad2d", backward)

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2
                                     else grad[..., None] * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), "matmul", backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # combination ops (static)
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, end)
                    t._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tuple(tensors), "concat", backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(grad, i, axis=axis))

        return Tensor._make(out_data, tuple(tensors), "stack", backward)

    @staticmethod
    def where(condition: ArrayLike, a: "Tensor", b: "Tensor") -> "Tensor":
        cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
        a = Tensor._coerce(a)
        b = Tensor._coerce(b)
        out_data = np.where(cond, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * cond, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * (~np.asarray(cond, dtype=bool)), b.shape))

        return Tensor._make(out_data, (a, b), "where", backward)


# ---------------------------------------------------------------------- #
# convenience constructors
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """Tensor of zeros."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """Tensor of ones."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def randn(*shape: int, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    """Tensor of standard-normal samples (reproducible when ``rng`` given)."""
    rng = rng if rng is not None else np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)
