"""Core :class:`Tensor` type and reverse-mode automatic differentiation.

The implementation follows the classic "define-by-run" pattern: every
operation returns a new :class:`Tensor` holding references to its inputs and a
closure that knows how to propagate the output gradient back to them.
Calling :meth:`Tensor.backward` topologically sorts the graph and runs the
closures in reverse order.

Broadcasting is supported for the elementwise operations; gradients flowing
into a broadcast operand are reduced (summed) over the broadcast axes so the
gradient always has the same shape as the operand (``_unbroadcast``).

Tape recording (see :mod:`repro.tensor.tape`): when a tape is installed via
:func:`set_active_tape`, every op additionally builds a *replay thunk* — a
closure defined in the same scope as its backward closure, so the two share
cells.  Re-running the thunk refreshes the op's output array (and any cached
scratch arrays such as the ReLU mask) **in place**, which keeps every
reference captured by the backward closures valid.  Ops whose output is a
NumPy view of a parent record a view marker instead (nothing to do on
replay); ops with data-dependent control flow that a replay cannot reproduce
(comparisons, ``where``) invalidate the tape so the executor falls back to
eager re-execution.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


# ---------------------------------------------------------------------- #
# tape recording plumbing (the Tape class itself lives in repro.tensor.tape)
# ---------------------------------------------------------------------- #
#: Sentinel: the op provides no replay rule — recording it invalidates the
#: tape and the executor keeps re-running the graph eagerly.
_NO_REPLAY = object()
#: Sentinel: the op's output is a NumPy view of its parent's data, so
#: refreshing the parent refreshes the output for free.
_VIEW_REPLAY = object()

#: The tape currently recording, or ``None``.  A module-level global keeps the
#: eager fast path at a single load + identity test per op.
_ACTIVE_TAPE = None


def set_active_tape(tape):
    """Install ``tape`` as the recording target; returns the previous tape."""
    global _ACTIVE_TAPE
    previous = _ACTIVE_TAPE
    _ACTIVE_TAPE = tape
    return previous


def active_tape():
    """The tape currently recording, or ``None``."""
    return _ACTIVE_TAPE


def invalidate_active_tape(reason: str) -> None:
    """Mark the recording tape unusable (data-dependent control flow, an op
    without a replay rule, ...).  No-op when nothing is recording."""
    if _ACTIVE_TAPE is not None:
        _ACTIVE_TAPE.invalidate(reason)


def record_tape_effect(effect: Callable[[], None]) -> None:
    """Record a side effect (e.g. BatchNorm running-buffer updates) at the
    current position of the recording tape.  No-op when nothing records."""
    if _ACTIVE_TAPE is not None:
        _ACTIVE_TAPE.record_effect(effect)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


# Floor for the subnormal guards below (sigmoid saturation, LSTM state
# updates, matmul gradient flush).  One subnormal operand or result makes an
# x86 kernel run 10-100x slower, and a value flushed merely to the normal
# minimum (~1.2e-38) times a small weight (~1e-4..1e-2) lands right back in
# the subnormal range inside the very next GEMM.  1e-30 keeps products of
# guarded values with any realistic training operand normal, while staying
# ~20 orders of magnitude below anything that can move a float32 weight.
_FLUSH_FLOOR = np.float32(1e-30)


class Tensor:
    """An n-dimensional array with optional gradient tracking.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of dtype float32/float64
        (integer data is allowed for index tensors but cannot require grad).
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op",
                 "_grad_view", "_grad_foreign")
    __array_priority__ = 100.0  # make NumPy defer to Tensor's reflected ops

    def __init__(self, data: ArrayLike, requires_grad: bool = False, *,
                 _parents: Tuple["Tensor", ...] = (), _op: str = "leaf"):
        if type(data) is np.ndarray:
            arr = data
        elif isinstance(data, Tensor):
            arr = data.data
        else:
            arr = np.asarray(data)
        dtype = arr.dtype
        if dtype != np.float32 and dtype not in (np.int64, np.int32, np.bool_):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            raise ValueError("only floating point tensors can require gradients")
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._grad_view: Optional[np.ndarray] = None
        self._grad_foreign: bool = False
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = _parents if self.requires_grad or _parents else ()
        self.op: str = _op

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def pin_grad(self, view: Optional[np.ndarray]) -> None:
        """Pin gradient storage to a preallocated array (usually a strided view
        into a flat per-replica buffer — see :mod:`repro.core.flat_buffer`).

        While pinned, the first ``backward`` accumulation writes into ``view``
        in place and sets ``self.grad`` to it, so flattening the gradients of a
        pinned model is a no-op.  Passing ``None`` unpins.  Code that assigns
        ``self.grad`` directly still works: the pinned view is only used when a
        fresh gradient buffer would otherwise have been allocated.
        """
        if view is not None:
            if view.shape != self.data.shape:
                raise ValueError(f"pinned view shape {view.shape} does not match "
                                 f"tensor shape {self.data.shape}")
            if view.dtype != self.data.dtype:
                raise ValueError("pinned view dtype must match the tensor dtype")
        self._grad_view = view
        if self.grad is not None:
            self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None],
              replay=_NO_REPLAY, elementwise: bool = False) -> "Tensor":
        """Create an op output, wiring the backward closure when needed.

        ``replay`` is the op's tape-replay rule: a thunk that refreshes the
        output (and any captured scratch arrays) in place, ``_VIEW_REPLAY``
        when the output aliases a parent, or ``_NO_REPLAY`` (the default) when
        the op cannot be replayed — recording such an op invalidates the tape.
        ``elementwise`` tags cheap thunks the tape planner may fuse into runs.
        """
        requires = False
        if _GRAD_ENABLED:
            for p in parents:
                if p.requires_grad:
                    requires = True
                    break
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else (),
                     _op=op)
        if requires:
            out._backward = backward
        if _ACTIVE_TAPE is not None:
            _ACTIVE_TAPE.record_node(out, replay, elementwise)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (allocating on first use).

        When gradient storage is pinned (:meth:`pin_grad`) the accumulation
        happens in place inside the pinned buffer, so no per-parameter arrays
        are allocated on the training hot path.
        """
        if type(grad) is not np.ndarray:
            grad = np.asarray(grad)
        if grad.dtype != self.data.dtype:
            target = self.data.dtype if np.issubdtype(self.data.dtype, np.floating) else np.float32
            grad = grad.astype(target)
        current = self.grad
        pinned = self._grad_view
        if current is None:
            if pinned is not None:
                pinned[...] = grad
                self.grad = pinned
                self._grad_foreign = False
            else:
                if grad.base is not None or grad is self.data:
                    grad = grad.copy()
                    self._grad_foreign = False
                else:
                    # Stored by reference: the array may still be shared with
                    # another consumer's grad (equal-shape pass-through ops
                    # hand the same array to every parent), so in-place
                    # accumulation paths must copy before mutating it.
                    self._grad_foreign = True
                self.grad = grad
        elif current is pinned:
            pinned += grad
        else:
            self.grad = current + grad
            self._grad_foreign = False

    def _accumulate_at(self, index, grad: np.ndarray, basic: bool) -> None:
        """Scatter-accumulate ``grad`` into ``self.grad`` at ``index``.

        Equivalent to building a dense zeros-like array, scattering into it
        and calling :meth:`_accumulate`, but without the dense temporary or
        the full-array add — slice/gather backward passes (LSTM gate slices,
        embedding lookups) hit this every training iteration.
        """
        target = self.grad
        if target is None:
            target = self._grad_view
            if target is not None:
                target[...] = 0.0
            else:
                target = np.zeros_like(self.data)
            self.grad = target
            self._grad_foreign = False
        elif self._grad_foreign:
            target = target.copy()
            self.grad = target
            self._grad_foreign = False
        if basic:
            target[index] += grad
        else:
            np.add.at(target, index, grad)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad if not isinstance(grad, Tensor) else grad.data,
                              dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match output shape {self.data.shape}")

        topo: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
            # Free intermediate gradients to bound memory in long chains; leaves
            # (parents == ()) keep theirs for the optimizer.
            if node._parents:
                node.grad = None

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=np.float32))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self, other), "add", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.add(self.data, other.data, out=out_data)

        return Tensor._make(out_data, (self, other), "add", backward, replay, True)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self, other), "sub", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.subtract(self.data, other.data, out=out_data)

        return Tensor._make(out_data, (self, other), "sub", backward, replay, True)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self, other), "mul", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.multiply(self.data, other.data, out=out_data)

        return Tensor._make(out_data, (self, other), "mul", backward, replay, True)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self, other), "div", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.divide(self.data, other.data, out=out_data)

        return Tensor._make(out_data, (self, other), "div", backward, replay, True)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) / self

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "neg", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.negative(self.data, out=out_data)

        return Tensor._make(out_data, (self,), "neg", backward, replay, True)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * (self.data ** (exponent - 1)))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "pow", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.power(self.data, exponent, out=out_data)

        return Tensor._make(out_data, (self,), "pow", backward, replay, True)

    # Comparisons produce detached boolean/float tensors (no gradient); the
    # result is data-dependent in a way a tape replay cannot refresh, so they
    # invalidate any recording in progress.
    def __gt__(self, other: ArrayLike) -> "Tensor":
        invalidate_active_tape("comparison (gt)")
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data > other_data).astype(np.float32))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        invalidate_active_tape("comparison (lt)")
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data < other_data).astype(np.float32))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        invalidate_active_tape("comparison (ge)")
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data >= other_data).astype(np.float32))

    def __le__(self, other: ArrayLike) -> "Tensor":
        invalidate_active_tape("comparison (le)")
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data <= other_data).astype(np.float32))

    # ------------------------------------------------------------------ #
    # unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "exp", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.exp(self.data, out=out_data)

        return Tensor._make(out_data, (self,), "exp", backward, replay, True)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "log", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.log(self.data, out=out_data)

        return Tensor._make(out_data, (self,), "log", backward, replay, True)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "sqrt", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.sqrt(self.data, out=out_data)

        return Tensor._make(out_data, (self,), "sqrt", backward, replay, True)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "tanh", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.tanh(self.data, out=out_data)

        return Tensor._make(out_data, (self,), "tanh", backward, replay, True)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function: exponentiate only the negative
        # magnitude so neither branch can overflow.
        neg_abs = -np.abs(self.data)
        exp_neg = np.exp(neg_abs)
        out_data = np.where(self.data >= 0, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))
        # Saturated gates (pre-activation < ~-69) underflow toward float32
        # subnormals, and every downstream product then runs 10-100x slower
        # on x86.  A gate below the flush floor is semantically closed:
        # flush it to 0 (see ``_FLUSH_FLOOR`` for the threshold choice).
        out_data *= out_data >= _FLUSH_FLOOR

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "sigmoid", backward)
        out_data = np.asarray(out_data)
        # Replay workspaces: the closure below runs every iteration on the
        # training hot path, so it must not allocate.  Same two-branch
        # arithmetic as the recorded forward, ufunc by ufunc.
        denom = np.empty_like(exp_neg)
        positive = np.empty(out_data.shape, dtype=bool)

        def replay() -> None:
            np.abs(self.data, out=neg_abs)
            np.negative(neg_abs, out=neg_abs)
            np.exp(neg_abs, out=exp_neg)
            np.add(exp_neg, 1.0, out=denom)
            np.divide(exp_neg, denom, out=out_data)
            np.divide(1.0, denom, out=denom)
            np.greater_equal(self.data, 0, out=positive)
            np.copyto(out_data, denom, where=positive)
            np.greater_equal(out_data, _FLUSH_FLOOR, out=positive)
            np.multiply(out_data, positive, out=out_data)

        return Tensor._make(out_data, (self,), "sigmoid", backward, replay, True)

    def flush_subnormals(self) -> "Tensor":
        """Zero values below ``_FLUSH_FLOOR``; identity for everything else.

        Recurrent chains multiply saturated gates into the float32 subnormal
        range, and a single subnormal operand or product makes downstream x86
        kernels run 10-100x slower — for values that carry no training
        signal.  Applied at the LSTM cell/hidden-state updates so long
        carried chains keep full kernel throughput; the backward pass treats
        the op as identity but floors the incoming gradient the same way,
        breaking subnormal chains in the dc/dh recurrences.  The masks are
        recomputed from the live buffers, so taped replays stay bit-identical
        to the eager path.
        """
        out_data = self.data * (np.abs(self.data) >= _FLUSH_FLOOR)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (np.abs(grad) >= _FLUSH_FLOOR))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "flush_subnormals", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.multiply(self.data, np.abs(self.data) >= _FLUSH_FLOOR, out=out_data)

        return Tensor._make(out_data, (self,), "flush_subnormals", backward, replay, True)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "relu", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.greater(self.data, 0, out=mask)
            np.multiply(self.data, mask, out=out_data)

        return Tensor._make(out_data, (self,), "relu", backward, replay, True)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "abs", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.sign(self.data, out=sign)
            np.abs(self.data, out=out_data)

        return Tensor._make(out_data, (self,), "abs", backward, replay, True)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "clip", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            np.clip(self.data, low, high, out=out_data)
            np.greater_equal(self.data, low, out=mask)
            mask &= self.data <= high

        return Tensor._make(out_data, (self,), "clip", backward, replay, True)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "sum", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            self.data.sum(axis=axis, keepdims=keepdims, out=out_data)

        return Tensor._make(out_data, (self,), "sum", backward, replay)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split the gradient among ties to keep sums exact.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "max", backward)
        out_data = np.asarray(out_data)

        def replay() -> None:
            self.data.max(axis=axis, keepdims=keepdims, out=out_data)

        return Tensor._make(out_data, (self,), "max", backward, replay)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "reshape", backward)
        if np.shares_memory(out_data, self.data):
            return Tensor._make(out_data, (self,), "reshape", backward, _VIEW_REPLAY)
        resolved = out_data.shape

        def replay() -> None:
            out_data[...] = self.data.reshape(resolved)

        return Tensor._make(out_data, (self,), "reshape", backward, replay)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        # np.transpose always returns a view, so replay has nothing to do.
        return Tensor._make(out_data, (self,), "transpose", backward, _VIEW_REPLAY)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]

        # Basic indexing (ints / slices only) selects each element at most once,
        # so a simple in-place add suffices; fancy indexing may repeat elements
        # and needs the unbuffered np.add.at.
        parts = index if isinstance(index, tuple) else (index,)
        basic = all(isinstance(p, (int, np.integer, slice, type(Ellipsis), type(None)))
                    for p in parts)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_at(index, grad, basic)

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "getitem", backward)
        if basic:
            # Basic indexing always yields a view of the parent's data.
            return Tensor._make(out_data, (self,), "getitem", backward, _VIEW_REPLAY)
        out_data = np.asarray(out_data)

        def replay() -> None:
            out_data[...] = self.data[index]

        return Tensor._make(out_data, (self,), "getitem", backward, replay)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)
        p = padding

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[..., p:-p, p:-p])

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self,), "pad2d", backward)

        def replay() -> None:
            # The zero border written at record time never changes; only the
            # interior needs refreshing.
            out_data[..., p:-p, p:-p] = self.data

        return Tensor._make(out_data, (self,), "pad2d", backward, replay)

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            # Deep BPTT chains multiply saturated-gate derivatives into the
            # float32 subnormal range, and one subnormal operand — or product
            # with a small weight — makes the matmuls below run 10-100x
            # slower on x86.  Values under the flush floor carry no training
            # signal: flush them (in place — the walk clears this node's grad
            # right after) before the products.
            grad *= np.abs(grad) >= _FLUSH_FLOOR
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2
                                     else grad[..., None] * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, (self, other), "matmul", backward)
        out_data = np.asarray(out_data)
        if (self.data.ndim == other.data.ndim >= 2
                and self.data.shape[:-2] == other.data.shape[:-2]):
            # No broadcasting: both gradient GEMMs keep the operand shapes, so
            # the tape can own persistent workspaces and the recorded backward
            # (which runs on every replay) stops allocating.  Same arithmetic
            # as the generic closure above, routed through ``out=``.
            grad_self = np.empty_like(self.data) if self.requires_grad else None
            grad_other = np.empty_like(other.data) if other.requires_grad else None

            def backward(grad: np.ndarray) -> None:  # noqa: F811
                grad *= np.abs(grad) >= _FLUSH_FLOOR
                if self.requires_grad:
                    np.matmul(grad, np.swapaxes(other.data, -1, -2), out=grad_self)
                    self._accumulate(grad_self)
                if other.requires_grad:
                    np.matmul(np.swapaxes(self.data, -1, -2), grad, out=grad_other)
                    other._accumulate(grad_other)

        if self.data.ndim >= 2 and other.data.ndim >= 2:

            def replay() -> None:
                np.matmul(self.data, other.data, out=out_data)
        else:

            def replay() -> None:
                out_data[...] = self.data @ other.data

        return Tensor._make(out_data, (self, other), "matmul", backward, replay)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # combination ops (static)
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, end)
                    t._accumulate(grad[tuple(slicer)])

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, tuple(tensors), "concat", backward)
        slicers = []
        for start, end in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * out_data.ndim
            slicer[axis] = slice(start, end)
            slicers.append(tuple(slicer))

        def replay() -> None:
            for t, slicer in zip(tensors, slicers):
                out_data[slicer] = t.data

        return Tensor._make(out_data, tuple(tensors), "concat", backward, replay)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(grad, i, axis=axis))

        if _ACTIVE_TAPE is None:
            return Tensor._make(out_data, tuple(tensors), "stack", backward)
        resolved_axis = axis % out_data.ndim
        slicers = [(slice(None),) * resolved_axis + (i,) for i in range(len(tensors))]

        def replay() -> None:
            for t, slicer in zip(tensors, slicers):
                out_data[slicer] = t.data

        return Tensor._make(out_data, tuple(tensors), "stack", backward, replay)

    @staticmethod
    def where(condition: ArrayLike, a: "Tensor", b: "Tensor") -> "Tensor":
        # The selection mask is data the caller computed outside the graph; a
        # replay cannot know how to refresh it, so recording ``where``
        # invalidates the tape (the executor falls back to eager).
        invalidate_active_tape("where")
        cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
        a = Tensor._coerce(a)
        b = Tensor._coerce(b)
        out_data = np.where(cond, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * cond, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * (~np.asarray(cond, dtype=bool)), b.shape))

        return Tensor._make(out_data, (a, b), "where", backward)


# ---------------------------------------------------------------------- #
# convenience constructors
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """Tensor of zeros."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """Tensor of ones."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def randn(*shape: int, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    """Tensor of standard-normal samples (reproducible when ``rng`` given)."""
    rng = rng if rng is not None else np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)
