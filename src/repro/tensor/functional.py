"""Functional neural-network operations built on :class:`~repro.tensor.Tensor`.

This module contains the composite operations the models need: im2col-based
2-D convolution and pooling, numerically stable softmax / log-softmax /
cross-entropy, linear projection, dropout and embedding lookup.  All
operations construct the autograd graph through the primitive ops defined on
:class:`Tensor`, except convolution and pooling which provide hand-written
backward closures for efficiency (one big GEMM instead of thousands of tiny
ops).

The ``*_batched`` variants evaluate all ``P`` replicas of a simulated world in
one call: operands gain a leading replica axis (inputs ``(P, N, ...)``,
parameters ``(P, *shape)`` — strided views of the world's flat buffers, see
:mod:`repro.core.batched_replicas`) and every replica slice performs exactly
the arithmetic of the unbatched op, keeping the fused pipeline bit-identical
to the per-replica loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast, active_tape, invalidate_active_tape


# ---------------------------------------------------------------------- #
# im2col helpers
# ---------------------------------------------------------------------- #
def _im2col_indices(x_shape: Tuple[int, int, int, int], kernel: int, stride: int,
                    padding: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Compute the gather indices turning NCHW patches into columns."""
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"kernel {kernel} with stride {stride} does not fit input {h}x{w}")

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kernel * kernel).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, Tuple]:
    """Rearrange NCHW image patches into a (C*K*K, N*OH*OW) matrix."""
    n, c, h, w = x.shape
    if padding > 0:
        x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        x_padded = x
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, padding)
    cols = x_padded[:, k, i, j]                       # (N, C*K*K, OH*OW)
    cols = cols.transpose(1, 2, 0).reshape(c * kernel * kernel, -1)
    return cols, (k, i, j, out_h, out_w, x_padded.shape)


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel: int,
            stride: int, padding: int, cache: Tuple) -> np.ndarray:
    """Scatter columns back into an NCHW image (adjoint of :func:`_im2col`)."""
    n, c, h, w = x_shape
    k, i, j, out_h, out_w, padded_shape = cache
    x_padded = np.zeros(padded_shape, dtype=cols.dtype)
    cols_reshaped = cols.reshape(c * kernel * kernel, -1, n).transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, i, j), cols_reshaped)
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


# ---------------------------------------------------------------------- #
# convolution / pooling
# ---------------------------------------------------------------------- #
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, *,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution on an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional per-channel bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} do not match weight channels {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh

    cols, cache = _im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    out = w_mat @ cols                                     # (C_out, N*OH*OW)
    _, _, _, out_h, out_w, _ = cache
    out = out.reshape(c_out, out_h * out_w, n).transpose(2, 0, 1).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, out_h * out_w).transpose(1, 2, 0).reshape(c_out, -1)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            weight._accumulate((grad_mat @ cols.T).reshape(weight.shape))
        if x.requires_grad:
            dcols = w_mat.T @ grad_mat
            x._accumulate(_col2im(dcols, x.shape, kernel, stride, padding, cache))

    return Tensor._make(out, parents, "conv2d", backward)


def conv2d_batched(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, *,
                   stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over ``P`` stacked replicas with per-replica filters.

    The replica axis leads every operand: ``x`` is ``(P, N, C_in, H, W)``,
    ``weight`` is ``(P, C_out, C_in, K, K)`` and ``bias`` is ``(P, C_out)``.
    The image patches of all replicas are gathered with **one** im2col call
    (the replica axis folds into the im2col batch), then one stacked GEMM per
    direction replaces the ``P`` independent GEMMs of :func:`conv2d`.  Every
    replica's slice performs exactly the arithmetic of the unbatched op, so
    forward activations and parameter gradients are bit-identical to running
    :func:`conv2d` replica by replica.
    """
    P, n, c_in, h, w = x.shape
    P_w, c_out, c_in_w, kh, kw = weight.shape
    if P != P_w:
        raise ValueError(f"input has {P} replicas but weight has {P_w}")
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} do not match weight channels {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh

    cols, cache = _im2col(x.data.reshape(P * n, c_in, h, w), kernel, stride, padding)
    _, _, _, out_h, out_w, _ = cache
    ckk = c_in * kernel * kernel
    # (CKK, OH*OW, P, N) -> (P, CKK, OH*OW*N): replica p's block equals the
    # exact column matrix the unbatched conv2d builds for that replica.
    cols_p = np.ascontiguousarray(
        cols.reshape(ckk, out_h * out_w, P, n).transpose(2, 0, 1, 3)
    ).reshape(P, ckk, out_h * out_w * n)
    w_mat = weight.data.reshape(P, c_out, ckk)
    mm = np.matmul(w_mat, cols_p)                          # (P, C_out, OH*OW*N)
    out = (mm.reshape(P, c_out, out_h * out_w, n).transpose(0, 3, 1, 2)
             .reshape(P, n, c_out, out_h, out_w))
    if bias is not None:
        out = out + bias.data.reshape(P, 1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = (grad.reshape(P, n, c_out, out_h * out_w).transpose(0, 2, 3, 1)
                        .reshape(P, c_out, -1))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(1, 3, 4)))
        if weight.requires_grad:
            weight._accumulate(np.matmul(grad_mat, cols_p.transpose(0, 2, 1))
                               .reshape(weight.shape))
        if x.requires_grad:
            dcols = np.matmul(w_mat.transpose(0, 2, 1), grad_mat)   # (P, CKK, OHOW*N)
            dcols = np.ascontiguousarray(
                dcols.reshape(P, ckk, out_h * out_w, n).transpose(1, 2, 0, 3)
            ).reshape(ckk, -1)
            dx = _col2im(dcols, (P * n, c_in, h, w), kernel, stride, padding, cache)
            x._accumulate(dx.reshape(P, n, c_in, h, w))

    if active_tape() is None:
        return Tensor._make(out, parents, "conv2d_batched", backward)
    # Replay workspaces: cols_p and mm are refreshed in place (backward reads
    # cols_p and w_mat), and the final rearranged/bias-added result lands in
    # the same ``out`` array downstream nodes and closures reference.
    cols_p4 = cols_p.reshape(P, ckk, out_h * out_w, n)
    out4 = out.reshape(P, n, c_out, out_h * out_w)
    w_is_view = np.shares_memory(w_mat, weight.data)

    def replay() -> None:
        new_cols, _ = _im2col(x.data.reshape(P * n, c_in, h, w), kernel, stride, padding)
        np.copyto(cols_p4, new_cols.reshape(ckk, out_h * out_w, P, n).transpose(2, 0, 1, 3))
        if not w_is_view:
            w_mat[...] = weight.data.reshape(P, c_out, ckk)
        np.matmul(w_mat, cols_p, out=mm)
        np.copyto(out4, mm.reshape(P, c_out, out_h * out_w, n).transpose(0, 3, 1, 2))
        if bias is not None:
            out += bias.data.reshape(P, 1, c_out, 1, 1)

    return Tensor._make(out, parents, "conv2d_batched", backward, replay)


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    # View input as (N, C, OH, K, OW, K) windows when stride == kernel and the
    # spatial size divides exactly; otherwise fall back to im2col.
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out = reshaped.max(axis=(3, 5))
        argmask = (reshaped == out[:, :, :, None, :, None])
        # Break ties: keep only the first max in each window.  Group the two
        # kernel axes together (window-major layout) before flattening them.
        window_major = argmask.transpose(0, 1, 2, 4, 3, 5)        # (N,C,OH,OW,K,K)
        flat = window_major.reshape(n, c, out_h, out_w, kernel * kernel)
        first = np.zeros_like(flat)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., None], 1, axis=-1)
        mask = (first.reshape(n, c, out_h, out_w, kernel, kernel)
                     .transpose(0, 1, 2, 4, 3, 5))                # back to (N,C,OH,K,OW,K)

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            g = grad[:, :, :, None, :, None] * mask
            x._accumulate(g.reshape(n, c, h, w))

        return Tensor._make(out, (x,), "max_pool2d", backward)

    cols, cache = _im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    cols = cols.reshape(kernel * kernel, -1)
    arg = cols.argmax(axis=0)
    out = cols[arg, np.arange(cols.shape[1])]
    _, _, _, oh, ow, _ = cache
    out = out.reshape(oh * ow, n * c).T.reshape(n, c, oh, ow)

    def backward(grad: np.ndarray) -> None:  # pragma: no cover - exercised via odd sizes
        if not x.requires_grad:
            return
        dcols = np.zeros_like(cols)
        gflat = grad.reshape(n * c, oh * ow).T.reshape(-1)
        dcols[arg, np.arange(cols.shape[1])] = gflat
        dx = _col2im(dcols, (n * c, 1, h, w), kernel, stride, 0, cache)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), "max_pool2d", backward)


def max_pool2d_batched(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over ``(P, N, C, H, W)`` stacked replica batches.

    Pooling has no parameters, so the replica axis simply folds into the
    window bookkeeping; each replica slice computes exactly what
    :func:`max_pool2d` computes for it (same window maxima, same
    first-max tie-breaking, same scatter in the backward pass).
    """
    stride = kernel if stride is None else stride
    P, n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        reshaped = x.data.reshape(P, n, c, out_h, kernel, out_w, kernel)
        out = reshaped.max(axis=(4, 6))
        argmask = (reshaped == out[:, :, :, :, None, :, None])
        window_major = argmask.transpose(0, 1, 2, 3, 5, 4, 6)     # (P,N,C,OH,OW,K,K)
        flat = window_major.reshape(P, n, c, out_h, out_w, kernel * kernel)
        first = np.zeros_like(flat)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., None], 1, axis=-1)
        mask = (first.reshape(P, n, c, out_h, out_w, kernel, kernel)
                     .transpose(0, 1, 2, 3, 5, 4, 6))             # back to (P,N,C,OH,K,OW,K)

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            g = grad[:, :, :, :, None, :, None] * mask
            x._accumulate(g.reshape(P, n, c, h, w))

        if active_tape() is None:
            return Tensor._make(out, (x,), "max_pool2d_batched", backward)

        def replay() -> None:
            win = x.data.reshape(P, n, c, out_h, kernel, out_w, kernel)
            np.max(win, axis=(4, 6), out=out)
            np.equal(win, out[:, :, :, :, None, :, None], out=argmask)
            # ``mask`` is a view of ``first``: zero it and re-scatter the
            # first-max tie-break in place so backward sees fresh winners.
            new_flat = (argmask.transpose(0, 1, 2, 3, 5, 4, 6)
                        .reshape(P, n, c, out_h, out_w, kernel * kernel))
            first[...] = False
            np.put_along_axis(first, new_flat.argmax(axis=-1)[..., None], 1, axis=-1)

        return Tensor._make(out, (x,), "max_pool2d_batched", backward, replay)

    # Strided / non-dividing windows: fold the replica axis into the im2col
    # batch exactly as the unbatched slow path folds (N, C).
    cols, cache = _im2col(x.data.reshape(P * n * c, 1, h, w), kernel, stride, 0)
    cols = cols.reshape(kernel * kernel, -1)
    arg = cols.argmax(axis=0)
    out = cols[arg, np.arange(cols.shape[1])]
    _, _, _, oh, ow, _ = cache
    out = out.reshape(oh * ow, P * n * c).T.reshape(P, n, c, oh, ow)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dcols = np.zeros_like(cols)
        gflat = grad.reshape(P * n * c, oh * ow).T.reshape(-1)
        dcols[arg, np.arange(cols.shape[1])] = gflat
        dx = _col2im(dcols, (P * n * c, 1, h, w), kernel, stride, 0, cache)
        x._accumulate(dx.reshape(P, n, c, h, w))

    if active_tape() is None:
        return Tensor._make(out, (x,), "max_pool2d_batched", backward)
    col_index = np.arange(cols.shape[1])

    def replay() -> None:
        new_cols, _ = _im2col(x.data.reshape(P * n * c, 1, h, w), kernel, stride, 0)
        cols[...] = new_cols.reshape(kernel * kernel, -1)
        arg[...] = cols.argmax(axis=0)
        np.copyto(out.reshape(P * n * c, oh * ow),
                  cols[arg, col_index].reshape(oh * ow, P * n * c).T)

    return Tensor._make(out, (x,), "max_pool2d_batched", backward, replay)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows (stride defaults to kernel)."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        out_h, out_w = h // kernel, w // kernel
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out = reshaped.mean(axis=(3, 5))

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            g = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3) / (kernel * kernel)
            x._accumulate(g)

        return Tensor._make(out, (x,), "avg_pool2d", backward)
    raise NotImplementedError("avg_pool2d requires stride == kernel and exact division")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions of an NCHW tensor → (N, C)."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------- #
# dense / softmax / losses
# ---------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ W^T + b`` with ``weight`` of shape (out, in)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    # The max-shift constant is a detached Tensor the tape cannot refresh.
    invalidate_active_tape("softmax max-shift constant")
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    invalidate_active_tape("log_softmax max-shift constant")
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    The gradient is the standard ``softmax - onehot`` divided by batch size,
    wired directly for efficiency and numerical stability.
    """
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    targets = targets.astype(np.int64).reshape(-1)
    n, c = logits.shape
    if targets.shape[0] != n:
        raise ValueError(f"targets length {targets.shape[0]} does not match batch {n}")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    # Deeply negative shifted logits (< ~-87) exponentiate into float32
    # subnormals, where x86 kernels run 10-100x slower; those terms cannot
    # move the float32 logsumexp (the max term is 1.0), so flush them.
    exp_shifted = np.exp(shifted)
    exp_shifted *= exp_shifted >= np.finfo(exp_shifted.dtype).tiny
    logsumexp = np.log(exp_shifted.sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    loss_value = -log_probs[np.arange(n), targets].mean()

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(log_probs)
        # Same flush as the forward: a probability below ~1.2e-38 carries no
        # gradient signal but poisons every downstream kernel's speed.
        probs *= probs >= np.finfo(probs.dtype).tiny
        probs[np.arange(n), targets] -= 1.0
        logits._accumulate(grad * probs / n)

    return Tensor._make(np.asarray(loss_value, dtype=np.float32), (logits,), "cross_entropy", backward)


def cross_entropy_batched(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Per-replica mean cross-entropy over stacked ``(P, N, C)`` logits.

    Returns the ``(P,)`` vector of replica losses; calling ``backward`` with a
    gradient of ones reproduces, slice by slice, exactly the arithmetic of
    :func:`cross_entropy` run on each replica separately (same shifted
    softmax, same contiguous-axis mean, same ``(softmax - onehot)/N``
    gradient), so the batched loss is bit-identical to the per-replica loop.
    """
    src = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    p, n, c = logits.shape
    targets = src.astype(np.int64).reshape(p, -1)
    if targets.shape[1] != n:
        raise ValueError(f"targets shape {targets.shape} does not match batch ({p}, {n})")

    shifted = logits.data - logits.data.max(axis=2, keepdims=True)
    # Mirror :func:`cross_entropy`'s subnormal flush so the batched loss and
    # its gradient stay bit-identical to the per-replica loop.
    exp_shifted = np.exp(shifted)
    exp_shifted *= exp_shifted >= np.finfo(exp_shifted.dtype).tiny
    logsumexp = np.log(exp_shifted.sum(axis=2, keepdims=True))
    log_probs = shifted - logsumexp
    replica_index = np.arange(p)[:, None]
    batch_index = np.arange(n)[None, :]
    loss_value = np.asarray(-log_probs[replica_index, batch_index, targets].mean(axis=1),
                            dtype=np.float32)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(log_probs)
        probs *= probs >= np.finfo(probs.dtype).tiny
        probs[replica_index, batch_index, targets] -= 1.0
        logits._accumulate(grad.reshape(p, 1, 1) * probs / n)

    if active_tape() is None:
        return Tensor._make(loss_value, (logits,), "cross_entropy_batched", backward)
    # Replay refreshes the captured int target buffer from the caller's array
    # (``src``): taped executors mutate their target buffer in place each
    # iteration, so the recorded reference stays live.
    exp_ws = np.empty_like(shifted)

    def replay() -> None:
        np.copyto(targets, src.reshape(p, -1), casting="unsafe")
        np.subtract(logits.data, logits.data.max(axis=2, keepdims=True), out=shifted)
        np.exp(shifted, out=exp_ws)
        np.multiply(exp_ws, exp_ws >= np.finfo(exp_ws.dtype).tiny, out=exp_ws)
        exp_ws.sum(axis=2, keepdims=True, out=logsumexp)
        np.log(logsumexp, out=logsumexp)
        np.subtract(shifted, logsumexp, out=log_probs)
        np.mean(log_probs[replica_index, batch_index, targets], axis=1, out=loss_value)
        np.negative(loss_value, out=loss_value)

    return Tensor._make(loss_value, (logits,), "cross_entropy_batched", backward, replay)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given precomputed log-probabilities."""
    targets = np.asarray(targets).astype(np.int64).reshape(-1)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


# ---------------------------------------------------------------------- #
# regularization / embedding
# ---------------------------------------------------------------------- #
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    # The mask is freshly sampled every iteration — inherently unreplayable.
    invalidate_active_tape("dropout")
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Look up rows of ``weight`` (V, D) for integer ``indices`` (...,)."""
    indices = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
    indices = indices.astype(np.int64)
    out = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        weight._accumulate_at(indices.reshape(-1),
                              grad.reshape(-1, weight.shape[1]), False)

    return Tensor._make(out, (weight,), "embedding", backward)


def embedding_batched(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Per-replica row lookup into stacked ``(P, V, D)`` embedding tables.

    ``indices`` carries the replica axis first, ``(P, ...)``; replica ``p``
    looks its tokens up in table ``weight[p]``.  The scatter-add backward
    touches disjoint table slabs per replica in the same visiting order as
    :func:`embedding`, so gradients are bit-identical to the per-replica loop.
    """
    src = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
    indices = src.astype(np.int64)
    p, _, d = weight.shape
    if indices.shape[0] != p:
        raise ValueError(f"indices lead with {indices.shape[0]} replicas, table has {p}")
    replica_index = np.arange(p).reshape((p,) + (1,) * (indices.ndim - 1))
    out = weight.data[replica_index, indices]

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        weight._accumulate_at(
            (np.broadcast_to(replica_index, indices.shape).reshape(-1),
             indices.reshape(-1)),
            grad.reshape(-1, d), False)

    if active_tape() is None:
        return Tensor._make(out, (weight,), "embedding_batched", backward)

    def replay() -> None:
        # Refresh the captured int token buffer from the caller's array, then
        # regather rows into the recorded output buffer.
        np.copyto(indices, src, casting="unsafe")
        out[...] = weight.data[replica_index, indices]

    return Tensor._make(out, (weight,), "embedding_batched", backward, replay)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding (plain NumPy; no gradient)."""
    indices = np.asarray(indices).astype(np.int64).reshape(-1)
    out = np.zeros((indices.shape[0], num_classes), dtype=np.float32)
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out
