"""Functional neural-network operations built on :class:`~repro.tensor.Tensor`.

This module contains the composite operations the models need: im2col-based
2-D convolution and pooling, numerically stable softmax / log-softmax /
cross-entropy, linear projection, dropout and embedding lookup.  All
operations construct the autograd graph through the primitive ops defined on
:class:`Tensor`, except convolution and pooling which provide hand-written
backward closures for efficiency (one big GEMM instead of thousands of tiny
ops).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast


# ---------------------------------------------------------------------- #
# im2col helpers
# ---------------------------------------------------------------------- #
def _im2col_indices(x_shape: Tuple[int, int, int, int], kernel: int, stride: int,
                    padding: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Compute the gather indices turning NCHW patches into columns."""
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"kernel {kernel} with stride {stride} does not fit input {h}x{w}")

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kernel * kernel).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, Tuple]:
    """Rearrange NCHW image patches into a (C*K*K, N*OH*OW) matrix."""
    n, c, h, w = x.shape
    if padding > 0:
        x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        x_padded = x
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, padding)
    cols = x_padded[:, k, i, j]                       # (N, C*K*K, OH*OW)
    cols = cols.transpose(1, 2, 0).reshape(c * kernel * kernel, -1)
    return cols, (k, i, j, out_h, out_w, x_padded.shape)


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel: int,
            stride: int, padding: int, cache: Tuple) -> np.ndarray:
    """Scatter columns back into an NCHW image (adjoint of :func:`_im2col`)."""
    n, c, h, w = x_shape
    k, i, j, out_h, out_w, padded_shape = cache
    x_padded = np.zeros(padded_shape, dtype=cols.dtype)
    cols_reshaped = cols.reshape(c * kernel * kernel, -1, n).transpose(2, 0, 1)
    np.add.at(x_padded, (slice(None), k, i, j), cols_reshaped)
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


# ---------------------------------------------------------------------- #
# convolution / pooling
# ---------------------------------------------------------------------- #
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, *,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution on an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional per-channel bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} do not match weight channels {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh

    cols, cache = _im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    out = w_mat @ cols                                     # (C_out, N*OH*OW)
    _, _, _, out_h, out_w, _ = cache
    out = out.reshape(c_out, out_h * out_w, n).transpose(2, 0, 1).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, out_h * out_w).transpose(1, 2, 0).reshape(c_out, -1)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            weight._accumulate((grad_mat @ cols.T).reshape(weight.shape))
        if x.requires_grad:
            dcols = w_mat.T @ grad_mat
            x._accumulate(_col2im(dcols, x.shape, kernel, stride, padding, cache))

    return Tensor._make(out, parents, "conv2d", backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    # View input as (N, C, OH, K, OW, K) windows when stride == kernel and the
    # spatial size divides exactly; otherwise fall back to im2col.
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out = reshaped.max(axis=(3, 5))
        argmask = (reshaped == out[:, :, :, None, :, None])
        # Break ties: keep only the first max in each window.  Group the two
        # kernel axes together (window-major layout) before flattening them.
        window_major = argmask.transpose(0, 1, 2, 4, 3, 5)        # (N,C,OH,OW,K,K)
        flat = window_major.reshape(n, c, out_h, out_w, kernel * kernel)
        first = np.zeros_like(flat)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., None], 1, axis=-1)
        mask = (first.reshape(n, c, out_h, out_w, kernel, kernel)
                     .transpose(0, 1, 2, 4, 3, 5))                # back to (N,C,OH,K,OW,K)

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            g = grad[:, :, :, None, :, None] * mask
            x._accumulate(g.reshape(n, c, h, w))

        return Tensor._make(out, (x,), "max_pool2d", backward)

    cols, cache = _im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    cols = cols.reshape(kernel * kernel, -1)
    arg = cols.argmax(axis=0)
    out = cols[arg, np.arange(cols.shape[1])]
    _, _, _, oh, ow, _ = cache
    out = out.reshape(oh * ow, n * c).T.reshape(n, c, oh, ow)

    def backward(grad: np.ndarray) -> None:  # pragma: no cover - exercised via odd sizes
        if not x.requires_grad:
            return
        dcols = np.zeros_like(cols)
        gflat = grad.reshape(n * c, oh * ow).T.reshape(-1)
        dcols[arg, np.arange(cols.shape[1])] = gflat
        dx = _col2im(dcols, (n * c, 1, h, w), kernel, stride, 0, cache)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), "max_pool2d", backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows (stride defaults to kernel)."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        out_h, out_w = h // kernel, w // kernel
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out = reshaped.mean(axis=(3, 5))

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            g = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3) / (kernel * kernel)
            x._accumulate(g)

        return Tensor._make(out, (x,), "avg_pool2d", backward)
    raise NotImplementedError("avg_pool2d requires stride == kernel and exact division")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions of an NCHW tensor → (N, C)."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------- #
# dense / softmax / losses
# ---------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ W^T + b`` with ``weight`` of shape (out, in)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    The gradient is the standard ``softmax - onehot`` divided by batch size,
    wired directly for efficiency and numerical stability.
    """
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    targets = targets.astype(np.int64).reshape(-1)
    n, c = logits.shape
    if targets.shape[0] != n:
        raise ValueError(f"targets length {targets.shape[0]} does not match batch {n}")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    loss_value = -log_probs[np.arange(n), targets].mean()

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(log_probs)
        probs[np.arange(n), targets] -= 1.0
        logits._accumulate(grad * probs / n)

    return Tensor._make(np.asarray(loss_value, dtype=np.float32), (logits,), "cross_entropy", backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given precomputed log-probabilities."""
    targets = np.asarray(targets).astype(np.int64).reshape(-1)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


# ---------------------------------------------------------------------- #
# regularization / embedding
# ---------------------------------------------------------------------- #
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Look up rows of ``weight`` (V, D) for integer ``indices`` (...,)."""
    indices = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
    indices = indices.astype(np.int64)
    out = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.shape[1]))
        weight._accumulate(full)

    return Tensor._make(out, (weight,), "embedding", backward)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding (plain NumPy; no gradient)."""
    indices = np.asarray(indices).astype(np.int64).reshape(-1)
    out = np.zeros((indices.shape[0], num_classes), dtype=np.float32)
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out
