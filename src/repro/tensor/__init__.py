"""A minimal reverse-mode autograd engine on NumPy.

This package is the substrate that replaces PyTorch in the reproduction.  It
provides a :class:`Tensor` type carrying a gradient, a dynamic computation
graph built as operations execute, and a ``backward`` pass that accumulates
gradients into leaf tensors.  The neural-network layers in :mod:`repro.nn`
are written purely in terms of this API.

Only the operations actually needed by the paper's four models are
implemented, but they are implemented carefully (correct broadcasting
semantics, numerically stable softmax/log-sum-exp, im2col convolution) so
gradients have the same statistical structure the A2SGD algorithm exploits.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor, zeros, ones, randn
from repro.tensor.tape import Tape, TapeReplayer, recording
from repro.tensor import functional
from repro.tensor import init

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "Tape",
    "TapeReplayer",
    "recording",
]
