"""Unified registry framework for every pluggable component.

One :class:`Registry` instance backs each family of components — compressors,
models, datasets, optimizers, LR-schedule pieces, networks and trainer
callbacks.  All of them share the same surface:

* ``register`` — add an entry, either directly or as a decorator, with
  optional aliases and a one-line description;
* ``get`` — look up the registered object (class, factory or value) by a
  case/punctuation-insensitive name;
* ``create`` — look up a factory and call it with forwarded kwargs;
* ``list`` — sorted canonical names;
* ``describe`` — ``{name: description}`` for help text and CLI listings.

Unknown names raise :class:`RegistryKeyError` (a ``KeyError``) whose message
names the registry, lists what *is* available and suggests close matches —
the error a user actually needs when they typo ``--algorithm topK1``.

Registries behave like read-only mappings (``in``, ``len``, iteration,
``registry[name]``), so legacy module-level dicts such as
``COMPRESSOR_REGISTRY`` can be rebound to a :class:`Registry` without
breaking callers that treated them as dicts.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence


def normalize_name(name: str) -> str:
    """Canonicalise a lookup key: lowercase, drop ``-``/``_``/spaces.

    ``"Top-K"``, ``"top_k"`` and ``"topk"`` all normalise to ``"topk"``.
    Path-style separators (``"fnn3/tiny"``) are preserved so composite keys
    stay distinguishable.
    """
    return name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")


def unknown_field_problems(keys: Sequence[str], known: Sequence[str],
                           label: str = "field") -> List[str]:
    """Did-you-mean messages for dict keys that are not known field names.

    Shared by the declarative spec parsers (``ExperimentSpec.from_dict``,
    ``SyncSpec.from_dict``) so the suggestion wording and matching stay in
    one place.  Returns one message per unknown key; empty when all keys
    are known.
    """
    known = list(known)
    problems: List[str] = []
    for key in keys:
        if key not in known:
            suggestions = difflib.get_close_matches(str(key), known, n=1)
            hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            problems.append(f"unknown {label} {key!r}{hint} (known fields: {known})")
    return problems


#: Registries that opted into CLI/introspection listing (``expose=...``),
#: keyed by their public label (e.g. ``"compressors"``).  ``repro components``
#: derives its listing from this mapping, so a new registry shows up there the
#: moment its module is imported — no hand-maintained table to forget.
PUBLIC_REGISTRIES: Dict[str, "Registry"] = {}


def public_registries() -> Dict[str, "Registry"]:
    """The live label → :class:`Registry` mapping of exposed registries."""
    return PUBLIC_REGISTRIES


class RegistryKeyError(KeyError):
    """Unknown-name lookup error carrying the available options."""

    def __init__(self, kind: str, name: str, available: Sequence[str],
                 suggestions: Sequence[str] = ()):
        self.kind = kind
        self.name = name
        self.available = list(available)
        self.suggestions = list(suggestions)
        message = f"unknown {kind} {name!r}; available: {self.available}"
        if self.suggestions:
            message += f" (did you mean {' or '.join(repr(s) for s in self.suggestions)}?)"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0]


class Registry:
    """A named mapping from component names to factories/objects."""

    def __init__(self, kind: str, *, expose: Optional[str] = None):
        #: Human-readable singular kind ("compressor", "model", ...) used in errors.
        self.kind = kind
        self._entries: Dict[str, Any] = {}          # canonical name -> object
        self._descriptions: Dict[str, str] = {}     # canonical name -> description
        self._index: Dict[str, str] = {}            # normalized name/alias -> canonical
        #: Public label under which this registry is listed (None = internal).
        self.expose = expose
        if expose is not None:
            existing = PUBLIC_REGISTRIES.get(expose)
            if existing is not None and existing is not self:
                raise ValueError(f"a registry is already exposed as {expose!r}")
            PUBLIC_REGISTRIES[expose] = self

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: Optional[str] = None, obj: Any = None, *,
                 aliases: Sequence[str] = (), description: Optional[str] = None,
                 overwrite: bool = False):
        """Register ``obj`` under ``name`` (or use as a decorator).

        Direct form::

            registry.register("sgd", SGD, description="vanilla momentum SGD")

        Decorator form (name defaults to the decorated object's ``__name__``)::

            @registry.register("progress", description="log every k iterations")
            class ProgressCallback(Callback): ...
        """
        def _do_register(target: Any) -> Any:
            canonical = name if name is not None else target.__name__
            if canonical in self._entries and not overwrite:
                raise ValueError(f"{self.kind} {canonical!r} is already registered; "
                                 f"pass overwrite=True to replace it")
            for key in (canonical, *aliases):
                normalized = normalize_name(key)
                existing = self._index.get(normalized)
                if existing is not None and existing != canonical and not overwrite:
                    raise ValueError(
                        f"{self.kind} name {key!r} already registered (for {existing!r})")
                self._index[normalized] = canonical
            self._entries[canonical] = target
            text = description
            if text is None:
                doc = (getattr(target, "__doc__", None) or "").strip()
                text = doc.splitlines()[0] if doc else ""
            self._descriptions[canonical] = text
            return target

        if obj is not None:
            return _do_register(obj)
        return _do_register

    def alias(self, alias: str, target: str) -> None:
        """Add an extra lookup name for an already-registered entry."""
        canonical = self._resolve(target)
        self._index[normalize_name(alias)] = canonical

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def _resolve(self, name: str) -> str:
        normalized = normalize_name(str(name))
        if normalized not in self._index:
            suggestions = difflib.get_close_matches(normalized, list(self._index), n=2)
            canonical_suggestions = sorted({self._index[s] for s in suggestions})
            raise RegistryKeyError(self.kind, name, self.list(), canonical_suggestions)
        return self._index[normalized]

    def get(self, name: str) -> Any:
        """The registered object (class/factory/value) for ``name``."""
        return self._entries[self._resolve(name)]

    def create(self, name: str, *args, **kwargs) -> Any:
        """Instantiate the factory registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def canonical(self, name: str) -> str:
        """The canonical registered name for ``name`` (resolving aliases)."""
        return self._resolve(name)

    def list(self) -> List[str]:
        """Sorted canonical names (aliases are not listed)."""
        return sorted(self._entries)

    def describe(self) -> Dict[str, str]:
        """``{canonical name: one-line description}`` for every entry."""
        return {name: self._descriptions.get(name, "") for name in self.list()}

    # ------------------------------------------------------------------ #
    # read-only mapping behaviour (legacy *_REGISTRY dict compatibility)
    # ------------------------------------------------------------------ #
    def __contains__(self, name: object) -> bool:
        try:
            self._resolve(str(name))
            return True
        except KeyError:
            return False

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.list())

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return [(name, self._entries[name]) for name in self.list()]

    def keys(self):
        return self.list()

    def values(self):
        return [self._entries[name] for name in self.list()]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Registry(kind={self.kind!r}, entries={self.list()})"
