"""Scaling-efficiency computations (Table 2, last column)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.cost_model import CostModel


def scaling_efficiency_table(cost_model: CostModel,
                             models: Sequence[str] = ("fnn3", "vgg16", "resnet20", "lstm_ptb"),
                             algorithms: Sequence[str] = ("dense", "qsgd", "topk",
                                                          "gaussiank", "a2sgd"),
                             world_size: int = 8) -> Dict[str, Dict[str, float]]:
    """Scaling efficiency (throughput vs dense@2) for every model × algorithm."""
    table: Dict[str, Dict[str, float]] = {}
    for algorithm in algorithms:
        table[algorithm] = {
            model: cost_model.scaling_efficiency(model, algorithm, world_size=world_size)
            for model in models
        }
    return table


def speedup_curve(cost_model: CostModel, model: str, algorithm: str,
                  world_sizes: Sequence[int] = (2, 4, 8, 16)) -> List[float]:
    """Total-training-time speedup relative to the smallest worker count."""
    times = [cost_model.total_training_time(model, algorithm, p) for p in world_sizes]
    baseline = times[0]
    return [baseline / t for t in times]
