"""Analysis utilities: gradient statistics, convergence diagnostics, scaling, reporting."""

from repro.analysis.gradient_stats import GradientDistributionTracker, gradient_histogram
from repro.analysis.convergence import (
    assumption3_bound_estimate,
    empirical_gradient_bound_holds,
    reconstruction_preserves_mean,
    time_to_accuracy,
    variance_ratio,
)
from repro.analysis.perf_pipeline import (
    format_benchmark,
    run_pipeline_benchmark,
    write_benchmark_json,
)
from repro.analysis.scaling import scaling_efficiency_table, speedup_curve
from repro.analysis.sweeps import (
    convergence_sweep,
    cost_sweep,
    synchronization_sweep,
    time_to_accuracy_sweep,
)
from repro.analysis.reporting import (
    format_figure_series,
    format_table,
    render_convergence_figure,
    render_iteration_time_figure,
    render_table2,
)

__all__ = [
    "GradientDistributionTracker",
    "gradient_histogram",
    "assumption3_bound_estimate",
    "empirical_gradient_bound_holds",
    "variance_ratio",
    "reconstruction_preserves_mean",
    "scaling_efficiency_table",
    "speedup_curve",
    "time_to_accuracy",
    "convergence_sweep",
    "cost_sweep",
    "synchronization_sweep",
    "time_to_accuracy_sweep",
    "format_benchmark",
    "run_pipeline_benchmark",
    "write_benchmark_json",
    "format_table",
    "format_figure_series",
    "render_table2",
    "render_convergence_figure",
    "render_iteration_time_figure",
]
