"""Grid-sweep helpers used by the CLI and the figure benchmarks.

A sweep is a grid over (models × algorithms × worker counts).  Two kinds are
provided:

* :func:`convergence_sweep` — actually trains the tiny presets with the
  simulated trainer (the Figure 3 data path);
* :func:`cost_sweep` — evaluates the analytic cost model at paper scale (the
  Figure 4/5 and Table 2 data path).

Both return plain nested dicts so results can be serialized with
:func:`repro.utils.serialization.save_json` and rendered with the helpers in
:mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.cost_model import CostModel
from repro.core.experiment import run_experiment
from repro.core.spec import ExperimentSpec

DEFAULT_ALGORITHMS = ("dense", "topk", "qsgd", "gaussiank", "a2sgd")


def convergence_sweep(model: str, algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                      world_sizes: Sequence[int] = (2, 4, 8), epochs: int = 3,
                      max_iterations_per_epoch: int = 12, seed: int = 0,
                      sparsifier_ratio: float = 0.05,
                      base_lr: Optional[float] = None,
                      sync: Optional[dict] = None) -> Dict[str, Dict]:
    """Train ``model`` (tiny preset) for every (algorithm, world size) cell.

    ``sync`` optionally selects a synchronization setup for every cell
    (``{"strategy": "local_sgd", "period": 4}``); None runs the paper's
    allreduce + mean.  Returns ``{world_size: {algorithm: {"epochs": [...],
    "metric": [...], "final": float, "wire_bits": float}}}`` (keys
    stringified for JSON).
    """
    base = ExperimentSpec(
        model=model, preset="tiny", epochs=epochs, batch_size=16,
        max_iterations_per_epoch=max_iterations_per_epoch,
        num_train=384, num_test=96, seed=seed, base_lr=base_lr, seq_len=10,
        sync=sync,
    )
    results: Dict[str, Dict] = {}
    for world_size in world_sizes:
        row: Dict[str, Dict] = {}
        for algorithm in algorithms:
            kwargs = ({"ratio": sparsifier_ratio}
                      if algorithm in ("topk", "gaussiank", "randk", "dgc") else {})
            spec = base.replace(algorithm=algorithm, world_size=world_size,
                                compressor_kwargs=kwargs)
            result = run_experiment(spec)
            row[algorithm] = {
                "epochs": list(result.metrics.epochs),
                "metric": [float(v) for v in result.metrics.metric],
                "final": float(result.final_metric),
                "metric_name": result.metric_name,
                "wire_bits": float(result.wire_bits_per_iteration),
                "simulated_comm_s": float(result.timeline.communication_s),
            }
        results[str(world_size)] = row
    return results


DEFAULT_SYNC_SETUPS = {
    "allreduce": {"strategy": "allreduce"},
    "local_sgd_h4": {"strategy": "local_sgd", "period": 4},
    "gossip_ring": {"strategy": "gossip", "topology": "ring"},
    # Compressed parameter exchange: the decentralized strategies ship
    # per-rank deltas against the last synchronized reference instead of
    # dense float32 vectors (quantized gossip / compressed local SGD).
    # levels >= sqrt(bucket_size): error feedback needs a contractive
    # compressor (see repro.compress.param_delta), and QSGD's default
    # levels=4 @ bucket 512 is not.
    "local_sgd_h4_qsgd": {"strategy": "local_sgd", "period": 4,
                          "parameter_compression": "qsgd",
                          "parameter_compression_kwargs": {"levels": 16,
                                                           "bucket_size": 64}},
    # ratio 0.1 matches dense-gossip accuracy on the tiny presets at ~10x
    # less steady-state parameter traffic.
    "gossip_ring_topk": {"strategy": "gossip", "topology": "ring",
                         "parameter_compression": "topk",
                         "parameter_compression_kwargs": {"ratio": 0.1}},
}


def synchronization_sweep(model: str = "fnn3", algorithm: str = "dense",
                          world_size: int = 4, epochs: int = 3,
                          sync_setups: Optional[Dict[str, dict]] = None,
                          max_iterations_per_epoch: int = 12,
                          seed: int = 0) -> Dict[str, Dict]:
    """Train one (model, algorithm) cell under several synchronization setups.

    ``sync_setups`` maps a label to a sync-section dict
    (:class:`~repro.sync.SyncSpec` form); defaults compare the paper's
    allreduce against local SGD (H=4) and ring gossip.  Returns
    ``{label: {"epochs": [...], "metric": [...], "final": float,
    "simulated_comm_s": float, "wire_bits": float}}``.
    """
    setups = sync_setups if sync_setups is not None else DEFAULT_SYNC_SETUPS
    base = ExperimentSpec(
        model=model, preset="tiny", algorithm=algorithm, world_size=world_size,
        epochs=epochs, batch_size=16, max_iterations_per_epoch=max_iterations_per_epoch,
        num_train=384, num_test=96, seed=seed, seq_len=10,
    )
    results: Dict[str, Dict] = {}
    for label, sync in setups.items():
        result = run_experiment(base.replace(sync=dict(sync)))
        results[label] = {
            "epochs": list(result.metrics.epochs),
            "metric": [float(v) for v in result.metrics.metric],
            "final": float(result.final_metric),
            "metric_name": result.metric_name,
            "wire_bits": float(result.wire_bits_per_iteration),
            "simulated_comm_s": float(result.timeline.communication_s),
        }
    return results


DEFAULT_TIME_SETUPS = {
    "allreduce": {"strategy": "allreduce"},
    "async_ps": {"strategy": "async_ps"},
    "easgd": {"strategy": "easgd", "period": 4},
}


def time_to_accuracy_sweep(model: str = "fnn3", algorithm: str = "dense",
                           world_size: int = 4, epochs: int = 3,
                           compute_model: object = None,
                           clock_seed: int = 0,
                           target: Optional[float] = None,
                           sync_setups: Optional[Dict[str, dict]] = None,
                           max_iterations_per_epoch: int = 12,
                           seed: int = 0) -> Dict[str, Dict]:
    """Compare strategies on the virtual clock: time-to-accuracy, not epochs.

    Every setup trains the same (model, algorithm) cell under the same
    ``compute_model`` (default: a straggler fabric where the last rank runs
    8x slower — the regime where asynchrony pays) and the same
    ``clock_seed``.  Returns ``{label: {"metric": [...],
    "simulated_time_s": [...], "final": float, "time_to_target": float}}``
    where ``time_to_target`` is the interpolated first crossing of
    ``target`` (defaulting to the *worst* setup's final metric, so every
    setup has a finite number to compare on its own curve).
    """
    from repro.analysis.convergence import time_to_accuracy

    setups = sync_setups if sync_setups is not None else DEFAULT_TIME_SETUPS
    if compute_model is None:
        compute_model = {"name": "straggler", "slowdown": 8.0, "sigma": 0.3}
    base = ExperimentSpec(
        model=model, preset="tiny", algorithm=algorithm, world_size=world_size,
        epochs=epochs, batch_size=16, max_iterations_per_epoch=max_iterations_per_epoch,
        num_train=384, num_test=96, seed=seed, seq_len=10,
        compute_model=compute_model, clock_seed=clock_seed,
    )
    results: Dict[str, Dict] = {}
    for label, sync in setups.items():
        result = run_experiment(base.replace(sync=dict(sync)))
        results[label] = {
            "epochs": list(result.metrics.epochs),
            "metric": [float(v) for v in result.metrics.metric],
            "metric_name": result.metric_name,
            "final": float(result.final_metric),
            "simulated_time_s": [float(v) for v in result.metrics.simulated_time_s],
            "total_simulated_s": float(result.sim["simulated_time_s"])
                if result.sim else float("nan"),
            "sim": result.sim,
        }
    higher_is_better = all(r["metric_name"] == "top1" for r in results.values())
    if target is None and results:
        finals = [r["final"] for r in results.values()]
        target = min(finals) if higher_is_better else max(finals)
    for row in results.values():
        row["target"] = float(target)
        row["time_to_target"] = time_to_accuracy(
            row["simulated_time_s"], row["metric"], target,
            higher_is_better=higher_is_better)
    return results


def cost_sweep(models: Sequence[str] = ("fnn3", "vgg16", "resnet20", "lstm_ptb"),
               algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
               world_sizes: Sequence[int] = (2, 4, 8, 16),
               cost_model: Optional[CostModel] = None) -> Dict[str, Dict]:
    """Evaluate iteration/total time and scaling efficiency at paper scale."""
    cost_model = cost_model if cost_model is not None else CostModel()
    sweep: Dict[str, Dict] = {}
    for model in models:
        per_model: Dict[str, Dict] = {}
        for algorithm in algorithms:
            per_model[algorithm] = {
                "iteration_s": [cost_model.iteration_time(model, algorithm, p)
                                for p in world_sizes],
                "total_s": [cost_model.total_training_time(model, algorithm, p)
                            for p in world_sizes],
                "scaling_efficiency_at_8": cost_model.scaling_efficiency(model, algorithm, 8),
                "communication_bits": cost_model.communication_bits(
                    algorithm, cost_model.model_parameters(model)),
            }
        sweep[model] = {"world_sizes": list(world_sizes), "algorithms": per_model}
    return sweep


def best_algorithm_by_total_time(sweep: Dict[str, Dict], model: str,
                                 world_size: int) -> str:
    """Name of the fastest algorithm for (model, world size) in a cost sweep."""
    entry = sweep[model]
    index = entry["world_sizes"].index(world_size)
    totals = {name: data["total_s"][index] for name, data in entry["algorithms"].items()}
    return min(totals, key=totals.get)
