"""Gradient distribution statistics (Figure 1 of the paper).

Figure 1 plots the frequency distribution of a representative worker's
gradient values at several points during training, showing that (i) the
values form a roughly symmetric bell around zero and (ii) the distribution
tightens as training progresses.  Those two observations motivate A2SGD's
two-mean summary.  :class:`GradientDistributionTracker` collects exactly that
data from a training run; :func:`gradient_histogram` builds one snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


def gradient_histogram(gradient: np.ndarray, bins: int = 61,
                       value_range: Optional[Tuple[float, float]] = None
                       ) -> Dict[str, np.ndarray]:
    """Histogram of gradient values plus the summary statistics Figure 1 implies.

    Returns a dict with ``edges``, ``counts`` and the scalar statistics used
    by the tests and the figure renderer (mean, std, skewness proxy, fraction
    of near-zero values, and the two A2SGD means).
    """
    gradient = np.asarray(gradient, dtype=np.float64).reshape(-1)
    if gradient.size == 0:
        raise ValueError("cannot histogram an empty gradient")
    if value_range is None:
        limit = max(1e-12, float(np.percentile(np.abs(gradient), 99.5)))
        value_range = (-limit, limit)
    counts, edges = np.histogram(gradient, bins=bins, range=value_range)

    positive = gradient[gradient >= 0]
    negative = gradient[gradient < 0]
    std = float(gradient.std())
    return {
        "edges": edges,
        "counts": counts,
        "mean": float(gradient.mean()),
        "std": std,
        "near_zero_fraction": float((np.abs(gradient) < 0.1 * (std or 1.0)).mean()),
        "mu_plus": float(positive.mean()) if positive.size else 0.0,
        "mu_minus": float(np.abs(negative).mean()) if negative.size else 0.0,
        "positive_fraction": float((gradient >= 0).mean()),
    }


@dataclass
class GradientDistributionTracker:
    """Collect gradient histograms at chosen iterations of a training run.

    Used by the Figure 1 benchmark: the trainer (or a manual loop) calls
    :meth:`observe` with the flat gradient of a representative worker; the
    tracker stores snapshots only at the requested iteration numbers so memory
    stays bounded.
    """

    snapshot_iterations: Tuple[int, ...] = (0, 50, 100, 200)
    bins: int = 61
    snapshots: Dict[int, Dict[str, np.ndarray]] = field(default_factory=dict)
    _iteration: int = 0

    def observe(self, gradient: np.ndarray) -> None:
        """Record the gradient if the current iteration is a snapshot point."""
        if self._iteration in self.snapshot_iterations:
            self.snapshots[self._iteration] = gradient_histogram(gradient, bins=self.bins)
        self._iteration += 1

    @property
    def iterations_seen(self) -> int:
        return self._iteration

    def concentration_progression(self) -> List[Tuple[int, float]]:
        """(iteration, std) pairs — should be non-increasing as training converges."""
        return [(it, float(snap["std"])) for it, snap in sorted(self.snapshots.items())]

    def near_zero_progression(self) -> List[Tuple[int, float]]:
        """(iteration, fraction near zero) pairs — should grow as training converges."""
        return [(it, float(snap["near_zero_fraction"]))
                for it, snap in sorted(self.snapshots.items())]
