"""Performance harness for the execution backends.

Times full fused training iterations (forward/backward → compression →
collective → optimizer step) on the same workload under every backend
configuration:

* **inprocess** — the single-process batched/taped executors (the baseline
  every other backend must match bit for bit).
* **multiprocessing @ k workers** — the forward/backward stage fanned out to
  ``k`` long-lived worker processes over shared-memory flat buffers
  (:mod:`repro.backends.multiprocess`); ``k`` ∈ {1, 2, 4} by default.

The result dictionary is what ``BENCH_backend.json`` stores; successive PRs
append runs so the repository accumulates a perf trajectory.  Runnable
without pytest via ``python -m repro bench-backend``.

Reading the numbers: the multiprocessing backend parallelizes only the
gradients stage (exchange and the optimizer step stay in the parent), so its
ceiling is Amdahl over the gradients fraction — and the *hardware* ceiling is
``host.cpu_count``: on a single-core host every worker shares one core and
the barrier/IPC overhead is pure loss, which the ``stage_regressions`` field
records honestly rather than hiding.
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.version import __version__

#: Smallest per-iteration delta (ms) treated as a real regression; anything
#: under it is timer noise (same floor as perf_pipeline).
NOISE_FLOOR_MS = 0.05

#: Untimed iterations per trainer before the clock starts: the first
#: iteration spawns the multiprocessing workers and records the tapes, and
#: per-iteration cost is what the benchmark is about.
WARMUP_ITERATIONS = 2


def _build_trainer(*, model: str, algorithm: str, world_size: int,
                   iterations: int, seed: int, taped: bool,
                   backend: str, num_workers: Optional[int]) -> DistributedTrainer:
    backend_kwargs = {} if num_workers is None else {"num_workers": num_workers}
    config = TrainerConfig(model=model, preset="tiny", algorithm=algorithm,
                           world_size=world_size, epochs=1, seed=seed,
                           max_iterations_per_epoch=iterations,
                           taped=taped, backend=backend,
                           backend_kwargs=backend_kwargs,
                           num_train=max(1024, 16 * world_size * iterations),
                           num_test=64)
    return DistributedTrainer(config)


def _time_backend(trainer: DistributedTrainer, iterations: int) -> Dict[str, float]:
    """Time ``iterations`` full fused iterations after warm-up (stages in ms)."""
    stage = {"gradients_s": 0.0, "exchange_s": 0.0, "apply_s": 0.0}
    per_epoch = trainer.iterations_per_epoch
    iterators = [iter(loader) for loader in trainer.loaders]
    timed = 0
    wall = 0.0
    for iteration in range(WARMUP_ITERATIONS + iterations):
        if iteration and iteration % per_epoch == 0:
            iterators = [iter(loader) for loader in trainer.loaders]
        batches = [next(it) for it in iterators]
        progress = iteration / max(1, iterations)

        t0 = time.perf_counter()
        G, _loss = trainer._classification_gradients_fused(batches)
        t1 = time.perf_counter()
        new_matrix, report = trainer.sync_strategy.exchange_batched(G)
        t2 = time.perf_counter()
        trainer._apply_gradients_fused(new_matrix, progress)
        t3 = time.perf_counter()
        trainer._parameter_phase(report, fused=True)
        t4 = time.perf_counter()
        if iteration < WARMUP_ITERATIONS:
            continue                  # worker spawn / tape recording excluded
        timed += 1
        stage["gradients_s"] += t1 - t0
        stage["exchange_s"] += (t2 - t1) + (t4 - t3)
        stage["apply_s"] += t3 - t2
        wall += t4 - t0
    scale = 1e3 / max(1, timed)
    return {
        "iteration_ms": wall * scale,
        "gradients_ms": stage["gradients_s"] * scale,
        "exchange_ms": stage["exchange_s"] * scale,
        "apply_ms": stage["apply_s"] * scale,
    }


def run_backend_benchmark(model: str = "resnet20", algorithm: str = "a2sgd",
                          world_size: int = 4,
                          workers: Sequence[int] = (1, 2, 4),
                          iterations: int = 20, repeats: int = 3,
                          seed: int = 0, taped: bool = True) -> Dict:
    """Time inprocess vs multiprocessing at each worker count.

    Every configuration runs the identical workload (same model, data, seeds
    — the backends are bit-identical, so the comparison is pure wall clock).
    Each is timed ``repeats`` times on a fresh trainer (best run kept) with
    :data:`WARMUP_ITERATIONS` untimed iterations per trainer so worker spawn
    and tape recording don't pollute the per-iteration cost.  Worker counts
    exceeding ``world_size`` are skipped (a shard cannot be empty).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    configs = [("inprocess", None)]
    skipped = [w for w in workers if w > world_size]
    configs += [("multiprocessing", int(w)) for w in workers if w <= world_size]

    timings: Dict[str, Dict[str, float]] = {}
    for backend, num_workers in configs:
        label = backend if num_workers is None else f"{backend}@{num_workers}"
        best: Optional[Dict[str, float]] = None
        for _ in range(repeats):
            trainer = _build_trainer(model=model, algorithm=algorithm,
                                     world_size=world_size, iterations=iterations,
                                     seed=seed, taped=taped,
                                     backend=backend, num_workers=num_workers)
            try:
                timing = _time_backend(trainer, iterations)
            finally:
                trainer.close()
            if best is None or timing["iteration_ms"] < best["iteration_ms"]:
                best = timing
        timings[label] = best

    base = timings["inprocess"]
    multiprocessing_runs: Dict[str, Dict[str, float]] = {}
    stage_regressions = []
    for backend, num_workers in configs:
        if num_workers is None:
            continue
        label = f"{backend}@{num_workers}"
        entry = dict(timings[label])
        entry["speedup"] = base["iteration_ms"] / entry["iteration_ms"]
        entry["gradients_speedup"] = (base["gradients_ms"] / entry["gradients_ms"]
                                      if entry["gradients_ms"] > 0 else float("inf"))
        multiprocessing_runs[str(num_workers)] = entry
        # Honest accounting: a worker count that is *slower* end to end than
        # the in-process baseline is a regression row, noise floor applied.
        if (entry["speedup"] < 1.0
                and entry["iteration_ms"] - base["iteration_ms"] > NOISE_FLOOR_MS):
            stage_regressions.append(f"workers={num_workers}:iteration_ms")

    cpu_count = os.cpu_count() or 1
    result = {
        "benchmark": "backend",
        "version": __version__,
        "workload": {"model": model, "preset": "tiny", "algorithm": algorithm,
                     "world_size": world_size, "iterations": iterations,
                     "repeats": repeats, "seed": seed, "taped": taped,
                     "workers": [int(w) for w in workers]},
        "host": {"platform": platform.platform(),
                 "python": platform.python_version(),
                 "numpy": np.__version__,
                 "cpu_count": cpu_count},
        "inprocess": base,
        "multiprocessing": multiprocessing_runs,
        "stage_regressions": sorted(stage_regressions),
    }
    if skipped:
        result["skipped_workers"] = [int(w) for w in skipped]
    if cpu_count < max([1, *[w for _, w in configs if w]]):
        result["note"] = (f"host has {cpu_count} CPU core(s): worker processes "
                          f"time-share the core(s), so parallel speedup is "
                          f"hardware-bound; regressions here measure IPC/"
                          f"barrier overhead, not a code path getting slower")
    if stage_regressions:
        warnings.warn(f"multiprocessing backend slower than inprocess on "
                      f"{model}: " + ", ".join(sorted(stage_regressions)),
                      RuntimeWarning, stacklevel=2)
    return result


def write_benchmark_json(result: Dict, path: str | Path) -> Path:
    """Append ``result`` to the ``runs`` list in a BENCH_backend.json file."""
    path = Path(path)
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    else:
        document = {}
    runs = document.get("runs", [])
    runs.append(result)
    document = {
        "description": "Inprocess vs multiprocessing execution-backend "
                       "timings (ms per iteration; see README: Execution "
                       "backends)",
        "runs": runs,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_benchmark(result: Dict) -> str:
    """Human-readable rendering of one backend benchmark result."""
    w = result["workload"]
    regressions = set(result.get("stage_regressions", ()))
    lines = [
        f"Execution backend benchmark — {w['model']}/{w['preset']}, "
        f"{w['algorithm']}, P={w['world_size']}, {w['iterations']} iterations, "
        f"taped={w['taped']} (host: {result['host']['cpu_count']} CPU core(s))",
        f"{'backend':<22}{'iteration':>12}{'gradients':>12}{'exchange':>12}"
        f"{'apply':>12}{'speedup':>10}",
    ]
    base = result["inprocess"]
    lines.append(f"{'inprocess':<22}{base['iteration_ms']:>10.3f}ms"
                 f"{base['gradients_ms']:>10.3f}ms{base['exchange_ms']:>10.3f}ms"
                 f"{base['apply_ms']:>10.3f}ms{'1.00x':>10}")
    for count, entry in sorted(result["multiprocessing"].items(),
                               key=lambda kv: int(kv[0])):
        row = (f"{f'multiprocessing@{count}':<22}{entry['iteration_ms']:>10.3f}ms"
               f"{entry['gradients_ms']:>10.3f}ms{entry['exchange_ms']:>10.3f}ms"
               f"{entry['apply_ms']:>10.3f}ms{entry['speedup']:>9.2f}x")
        if f"workers={count}:iteration_ms" in regressions:
            row += "  << REGRESSION"
        lines.append(row)
    if result.get("note"):
        lines.append(f"note: {result['note']}")
    return "\n".join(lines)
