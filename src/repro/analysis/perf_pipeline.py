"""Performance harness for the fused gradient pipeline.

Times full training iterations (data batch → forward/backward → compression →
collective → reconstruction → optimizer step) twice on the same workload:

* **seed path** (``fused_pipeline=False``): per-rank Python loops, concatenate
  flatten / per-parameter unflatten, one compressor call per rank, looped
  optimizer step — the implementation the repository seeded with.
* **fused path** (``fused_pipeline=True``): zero-copy flat ``(P, n)`` buffers,
  batched compressor kernels, whole-world optimizer step, and the batched
  replica executors (hand-derived for MLPs, stacked-graph autograd for
  conv/recurrent models — so lstm_ptb/resnet20/vgg16 workloads time the fast
  path too).
* **taped path** (``fused_pipeline=True, taped=True``): the fused path with the
  taped replica executors — the batched graph is recorded once, then replayed
  every iteration through a peephole-fused program that reuses every workspace
  buffer (see ``repro.tensor.tape``).

The result dictionary is what ``BENCH_pipeline.json`` stores; successive PRs
append runs to that file so the repository accumulates a perf trajectory.
Runnable without pytest via ``python -m repro bench-pipeline``.
"""

from __future__ import annotations

import json
import platform
import time
import warnings
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.models.registry import get_model_spec
from repro.version import __version__

#: Smallest per-iteration delta (ms) treated as a real stage regression;
#: anything under it is timer noise on a stage both paths share.
NOISE_FLOOR_MS = 0.05


def _build_trainer(fused: bool, *, model: str, algorithm: str, world_size: int,
                   iterations: int, seed: int, taped: bool = False,
                   sync: Optional[Dict] = None) -> DistributedTrainer:
    if get_model_spec(model, "tiny").task == "language_model":
        # num_train counts tokens for language models; the dataset default
        # (20k tokens) gives enough BPTT windows, and the timing loop wraps
        # at epoch boundaries exactly like the classification loop.
        sizes = {"num_test": 2048}
    else:
        sizes = {"num_train": max(1024, 16 * world_size * iterations),
                 "num_test": 64}
    config = TrainerConfig(model=model, preset="tiny", algorithm=algorithm,
                           world_size=world_size, epochs=1, seed=seed,
                           max_iterations_per_epoch=iterations,
                           fused_pipeline=fused, taped=taped,
                           sync=dict(sync) if sync else None,
                           **sizes)
    return DistributedTrainer(config)


def _time_iterations(trainer: DistributedTrainer, iterations: int) -> Dict[str, float]:
    """Run ``iterations`` training iterations (any task), timing stages."""
    fused = trainer.flat_world is not None
    language_model = trainer.spec.task == "language_model"
    stage = {"gradients_s": 0.0, "exchange_s": 0.0, "apply_s": 0.0}
    per_epoch = trainer.iterations_per_epoch

    def fresh_iterators():
        if language_model:
            return [shard.batches() for shard in trainer.lm_shards]
        return [iter(loader) for loader in trainer.loaders]

    def fresh_states():
        # The batched LM executor threads one stacked state; the per-replica
        # paths thread one state per rank.
        return None if trainer.executor is not None \
            else [None] * trainer.config.world_size

    iterators = fresh_iterators()
    states = fresh_states()

    wall_start = time.perf_counter()
    for iteration in range(iterations):
        if iteration and iteration % per_epoch == 0:
            iterators = fresh_iterators()
            states = fresh_states()
        batches = [next(it) for it in iterators]
        progress = iteration / max(1, iterations)

        t0 = time.perf_counter()
        if fused and language_model:
            G, _loss, states = trainer._language_model_gradients_fused(batches, states)
        elif fused:
            G, _loss = trainer._classification_gradients_fused(batches)
        elif language_model:
            gradients, _loss, states = trainer._language_model_gradients(batches, states)
        else:
            gradients, _loss = trainer._classification_gradients(batches)
        t1 = time.perf_counter()
        # The bound strategy, not the deprecated allreduce shim: non-default
        # setups (local SGD, gossip, compressed parameter exchange) time
        # their real exchange behaviour.
        if fused:
            new_matrix, report = trainer.sync_strategy.exchange_batched(G)
            t2 = time.perf_counter()
            trainer._apply_gradients_fused(new_matrix, progress)
        else:
            new_gradients, report = trainer.sync_strategy.exchange(gradients)
            t2 = time.perf_counter()
            trainer._apply_gradients(new_gradients, progress)
        t3 = time.perf_counter()
        # Post-optimizer parameter phase (local-SGD averaging, gossip):
        # counted as exchange — it IS the wire traffic of those strategies.
        trainer._parameter_phase(report, fused)
        t4 = time.perf_counter()
        stage["gradients_s"] += t1 - t0
        stage["exchange_s"] += (t2 - t1) + (t4 - t3)
        stage["apply_s"] += t3 - t2
    wall = time.perf_counter() - wall_start

    scale = 1e3 / iterations
    return {
        "iteration_ms": wall * scale,
        "gradients_ms": stage["gradients_s"] * scale,
        "exchange_ms": stage["exchange_s"] * scale,
        "apply_ms": stage["apply_s"] * scale,
    }


def run_pipeline_benchmark(model: str = "fnn3", algorithm: str = "a2sgd",
                           world_size: int = 8, iterations: int = 60,
                           repeats: int = 3, seed: int = 0,
                           sync: Optional[Dict] = None, taped: bool = True) -> Dict:
    """Time the seed vs fused (vs taped) pipeline on a Figure-4-style workload.

    ``sync`` optionally selects a synchronization setup in
    :class:`~repro.sync.SyncSpec` dict form (``{"strategy": "gossip",
    "topology": "ring", "parameter_compression": "topk"}``), so the
    trajectory file accumulates rows for the decentralized strategies and
    their compressed parameter exchange too; None benchmarks the paper's
    allreduce + mean.  ``taped`` adds a third column timing the taped
    record/replay executors on top of the fused path.  Returns per-path
    per-stage times in milliseconds per iteration (best of ``repeats`` runs,
    after one warm-up) plus the end-to-end speedups.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    paths = [("seed_path", False, False), ("fused_path", True, False)]
    if taped:
        paths.append(("taped_path", True, True))
    results: Dict[str, Dict[str, float]] = {}
    for label, fused, taped_path in paths:
        best: Optional[Dict[str, float]] = None
        for attempt in range(repeats + 1):            # first run warms caches
            trainer = _build_trainer(fused, model=model, algorithm=algorithm,
                                     world_size=world_size, iterations=iterations,
                                     seed=seed, taped=taped_path, sync=sync)
            timing = _time_iterations(trainer, iterations)
            if attempt == 0:
                continue
            if best is None or timing["iteration_ms"] < best["iteration_ms"]:
                best = timing
        results[label] = best

    seed_ms = results["seed_path"]["iteration_ms"]
    fused_ms = results["fused_path"]["iteration_ms"]
    stage_speedups = {
        key: results["seed_path"][key] / results["fused_path"][key]
        for key in ("gradients_ms", "exchange_ms", "apply_ms")
        if results["fused_path"][key] > 0
    }
    # Flag stages where the fused path lost ground instead of silently
    # recording a <1.0x ratio in the trajectory file (the seed of this repo
    # shipped several exchange_ms regressions nobody noticed).  Deltas below
    # the timer's noise floor don't count: shared-code stages (exchange runs
    # the same kernels on both paths) hover at 1.00x, and a 2µs loss must
    # not flap the flag that CI asserts on.
    stage_regressions = sorted(
        key for key, ratio in stage_speedups.items()
        if ratio < 1.0
        and results["fused_path"][key] - results["seed_path"][key] > NOISE_FLOOR_MS)
    result = {
        "benchmark": "pipeline",
        "version": __version__,
        "workload": {"model": model, "preset": "tiny", "algorithm": algorithm,
                     "world_size": world_size, "iterations": iterations,
                     "repeats": repeats, "seed": seed,
                     **({"sync": dict(sync)} if sync else {})},
        "host": {"platform": platform.platform(), "python": platform.python_version(),
                 "numpy": np.__version__},
        "seed_path": results["seed_path"],
        "fused_path": results["fused_path"],
        "speedup": seed_ms / fused_ms,
        "stage_speedups": stage_speedups,
        "stage_regressions": stage_regressions,
    }
    if taped:
        taped_ms = results["taped_path"]["iteration_ms"]
        result["taped_path"] = results["taped_path"]
        result["taped_speedup"] = fused_ms / taped_ms
        # Taping only changes the gradients stage (exchange/apply run the
        # same code, so their ratios are timing noise): regression-flag the
        # stage the tape is accountable for, not the shared ones.
        fused_gradients = results["fused_path"]["gradients_ms"]
        taped_gradients = results["taped_path"]["gradients_ms"]
        if taped_gradients > 0:
            result["taped_gradients_speedup"] = fused_gradients / taped_gradients
            if (result["taped_gradients_speedup"] < 1.0
                    and taped_gradients - fused_gradients > NOISE_FLOOR_MS):
                stage_regressions.append("taped_gradients_ms")
    if stage_regressions:
        warnings.warn(
            f"pipeline regressed on {model}/{algorithm} stages: "
            + ", ".join(stage_regressions),
            RuntimeWarning, stacklevel=2)
    return result


def write_benchmark_json(result: Dict, path: str | Path) -> Path:
    """Append ``result`` to the ``runs`` list in a BENCH_pipeline.json file."""
    path = Path(path)
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    else:
        document = {}
    runs = document.get("runs", [])
    runs.append(result)
    document = {
        "description": "Seed vs fused gradient-pipeline timings "
                       "(ms per iteration; see README: reading BENCH_pipeline.json)",
        "runs": runs,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_benchmark(result: Dict) -> str:
    """Human-readable rendering of one benchmark result."""
    w = result["workload"]
    sync = w.get("sync")
    sync_note = ""
    if sync:
        parts = [sync.get("strategy", "allreduce")]
        parts += [str(sync[key]) for key in ("topology", "period",
                                             "parameter_compression")
                  if sync.get(key) not in (None, "none")]
        sync_note = f" [sync: {'+'.join(parts)}]"
    taped = result.get("taped_path")
    header = f"{'stage':<14}{'seed path':>12}{'fused':>12}{'speedup':>10}"
    if taped:
        header += f"{'taped':>12}{'vs fused':>10}"
    lines = [
        f"Gradient pipeline benchmark — {w['model']}/{w['preset']}, "
        f"{w['algorithm']}, {w['world_size']} workers, "
        f"{w['iterations']} iterations{sync_note}",
        header,
    ]
    regressions = set(result.get("stage_regressions", ()))
    for key, label in (("iteration_ms", "iteration"), ("gradients_ms", "gradients"),
                       ("exchange_ms", "exchange"), ("apply_ms", "apply")):
        seed_v = result["seed_path"][key]
        fused_v = result["fused_path"][key]
        ratio = seed_v / fused_v if fused_v else float("inf")
        row = f"{label:<14}{seed_v:>10.3f}ms{fused_v:>10.3f}ms{ratio:>9.2f}x"
        flagged = key in regressions
        if taped:
            taped_v = taped[key]
            taped_ratio = fused_v / taped_v if taped_v else float("inf")
            row += f"{taped_v:>10.3f}ms{taped_ratio:>9.2f}x"
            flagged = flagged or f"taped_{key}" in regressions
        lines.append(row + ("  << REGRESSION" if flagged else ""))
    return "\n".join(lines)
