"""Performance harness for the fused gradient pipeline.

Times full training iterations (data batch → forward/backward → compression →
collective → reconstruction → optimizer step) twice on the same workload:

* **seed path** (``fused_pipeline=False``): per-rank Python loops, concatenate
  flatten / per-parameter unflatten, one compressor call per rank, looped
  optimizer step — the implementation the repository seeded with.
* **fused path** (``fused_pipeline=True``): zero-copy flat ``(P, n)`` buffers,
  batched compressor kernels, whole-world optimizer step, and the batched
  replica executors (hand-derived for MLPs, stacked-graph autograd for
  conv/recurrent models — so lstm_ptb/resnet20/vgg16 workloads time the fast
  path too).

The result dictionary is what ``BENCH_pipeline.json`` stores; successive PRs
append runs to that file so the repository accumulates a perf trajectory.
Runnable without pytest via ``python -m repro bench-pipeline``.
"""

from __future__ import annotations

import json
import platform
import time
import warnings
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.models.registry import get_model_spec
from repro.version import __version__


def _build_trainer(fused: bool, *, model: str, algorithm: str, world_size: int,
                   iterations: int, seed: int,
                   sync: Optional[Dict] = None) -> DistributedTrainer:
    if get_model_spec(model, "tiny").task == "language_model":
        # num_train counts tokens for language models; the dataset default
        # (20k tokens) gives enough BPTT windows, and the timing loop wraps
        # at epoch boundaries exactly like the classification loop.
        sizes = {"num_test": 2048}
    else:
        sizes = {"num_train": max(1024, 16 * world_size * iterations),
                 "num_test": 64}
    config = TrainerConfig(model=model, preset="tiny", algorithm=algorithm,
                           world_size=world_size, epochs=1, seed=seed,
                           max_iterations_per_epoch=iterations,
                           fused_pipeline=fused, sync=dict(sync) if sync else None,
                           **sizes)
    return DistributedTrainer(config)


def _time_iterations(trainer: DistributedTrainer, iterations: int) -> Dict[str, float]:
    """Run ``iterations`` training iterations (any task), timing stages."""
    fused = trainer.flat_world is not None
    language_model = trainer.spec.task == "language_model"
    stage = {"gradients_s": 0.0, "exchange_s": 0.0, "apply_s": 0.0}
    per_epoch = trainer.iterations_per_epoch

    def fresh_iterators():
        if language_model:
            return [shard.batches() for shard in trainer.lm_shards]
        return [iter(loader) for loader in trainer.loaders]

    def fresh_states():
        # The batched LM executor threads one stacked state; the per-replica
        # paths thread one state per rank.
        return None if trainer.executor is not None \
            else [None] * trainer.config.world_size

    iterators = fresh_iterators()
    states = fresh_states()

    wall_start = time.perf_counter()
    for iteration in range(iterations):
        if iteration and iteration % per_epoch == 0:
            iterators = fresh_iterators()
            states = fresh_states()
        batches = [next(it) for it in iterators]
        progress = iteration / max(1, iterations)

        t0 = time.perf_counter()
        if fused and language_model:
            G, _loss, states = trainer._language_model_gradients_fused(batches, states)
        elif fused:
            G, _loss = trainer._classification_gradients_fused(batches)
        elif language_model:
            gradients, _loss, states = trainer._language_model_gradients(batches, states)
        else:
            gradients, _loss = trainer._classification_gradients(batches)
        t1 = time.perf_counter()
        # The bound strategy, not the deprecated allreduce shim: non-default
        # setups (local SGD, gossip, compressed parameter exchange) time
        # their real exchange behaviour.
        if fused:
            new_matrix, report = trainer.sync_strategy.exchange_batched(G)
            t2 = time.perf_counter()
            trainer._apply_gradients_fused(new_matrix, progress)
        else:
            new_gradients, report = trainer.sync_strategy.exchange(gradients)
            t2 = time.perf_counter()
            trainer._apply_gradients(new_gradients, progress)
        t3 = time.perf_counter()
        # Post-optimizer parameter phase (local-SGD averaging, gossip):
        # counted as exchange — it IS the wire traffic of those strategies.
        trainer._parameter_phase(report, fused)
        t4 = time.perf_counter()
        stage["gradients_s"] += t1 - t0
        stage["exchange_s"] += (t2 - t1) + (t4 - t3)
        stage["apply_s"] += t3 - t2
    wall = time.perf_counter() - wall_start

    scale = 1e3 / iterations
    return {
        "iteration_ms": wall * scale,
        "gradients_ms": stage["gradients_s"] * scale,
        "exchange_ms": stage["exchange_s"] * scale,
        "apply_ms": stage["apply_s"] * scale,
    }


def run_pipeline_benchmark(model: str = "fnn3", algorithm: str = "a2sgd",
                           world_size: int = 8, iterations: int = 60,
                           repeats: int = 3, seed: int = 0,
                           sync: Optional[Dict] = None) -> Dict:
    """Time the seed vs fused pipeline on a Figure-4-style workload.

    ``sync`` optionally selects a synchronization setup in
    :class:`~repro.sync.SyncSpec` dict form (``{"strategy": "gossip",
    "topology": "ring", "parameter_compression": "topk"}``), so the
    trajectory file accumulates rows for the decentralized strategies and
    their compressed parameter exchange too; None benchmarks the paper's
    allreduce + mean.  Returns per-path per-stage times in milliseconds per
    iteration (best of ``repeats`` runs, after one warm-up) plus the
    end-to-end speedup.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    results: Dict[str, Dict[str, float]] = {}
    for label, fused in (("seed_path", False), ("fused_path", True)):
        best: Optional[Dict[str, float]] = None
        for attempt in range(repeats + 1):            # first run warms caches
            trainer = _build_trainer(fused, model=model, algorithm=algorithm,
                                     world_size=world_size, iterations=iterations,
                                     seed=seed, sync=sync)
            timing = _time_iterations(trainer, iterations)
            if attempt == 0:
                continue
            if best is None or timing["iteration_ms"] < best["iteration_ms"]:
                best = timing
        results[label] = best

    seed_ms = results["seed_path"]["iteration_ms"]
    fused_ms = results["fused_path"]["iteration_ms"]
    stage_speedups = {
        key: results["seed_path"][key] / results["fused_path"][key]
        for key in ("gradients_ms", "exchange_ms", "apply_ms")
        if results["fused_path"][key] > 0
    }
    # Flag stages where the fused path lost ground instead of silently
    # recording a <1.0x ratio in the trajectory file (the seed of this repo
    # shipped several exchange_ms regressions nobody noticed).
    stage_regressions = sorted(key for key, ratio in stage_speedups.items()
                               if ratio < 1.0)
    result = {
        "benchmark": "pipeline",
        "version": __version__,
        "workload": {"model": model, "preset": "tiny", "algorithm": algorithm,
                     "world_size": world_size, "iterations": iterations,
                     "repeats": repeats, "seed": seed,
                     **({"sync": dict(sync)} if sync else {})},
        "host": {"platform": platform.platform(), "python": platform.python_version(),
                 "numpy": np.__version__},
        "seed_path": results["seed_path"],
        "fused_path": results["fused_path"],
        "speedup": seed_ms / fused_ms,
        "stage_speedups": stage_speedups,
        "stage_regressions": stage_regressions,
    }
    if stage_regressions:
        warnings.warn(
            f"fused pipeline regressed on {model}/{algorithm} stages: "
            + ", ".join(f"{key} {stage_speedups[key]:.2f}x" for key in stage_regressions),
            RuntimeWarning, stacklevel=2)
    return result


def write_benchmark_json(result: Dict, path: str | Path) -> Path:
    """Append ``result`` to the ``runs`` list in a BENCH_pipeline.json file."""
    path = Path(path)
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    else:
        document = {}
    runs = document.get("runs", [])
    runs.append(result)
    document = {
        "description": "Seed vs fused gradient-pipeline timings "
                       "(ms per iteration; see README: reading BENCH_pipeline.json)",
        "runs": runs,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_benchmark(result: Dict) -> str:
    """Human-readable rendering of one benchmark result."""
    w = result["workload"]
    sync = w.get("sync")
    sync_note = ""
    if sync:
        parts = [sync.get("strategy", "allreduce")]
        parts += [str(sync[key]) for key in ("topology", "period",
                                             "parameter_compression")
                  if sync.get(key) not in (None, "none")]
        sync_note = f" [sync: {'+'.join(parts)}]"
    lines = [
        f"Gradient pipeline benchmark — {w['model']}/{w['preset']}, "
        f"{w['algorithm']}, {w['world_size']} workers, "
        f"{w['iterations']} iterations{sync_note}",
        f"{'stage':<14}{'seed path':>12}{'fused':>12}{'speedup':>10}",
    ]
    regressions = set(result.get("stage_regressions", ()))
    for key, label in (("iteration_ms", "iteration"), ("gradients_ms", "gradients"),
                       ("exchange_ms", "exchange"), ("apply_ms", "apply")):
        seed_v = result["seed_path"][key]
        fused_v = result["fused_path"][key]
        ratio = seed_v / fused_v if fused_v else float("inf")
        flag = "  << REGRESSION" if key in regressions else ""
        lines.append(f"{label:<14}{seed_v:>10.3f}ms{fused_v:>10.3f}ms{ratio:>9.2f}x{flag}")
    return "\n".join(lines)
