"""Plain-text renderers for the paper's tables and figure data.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent (and testable) across benchmarks.
Figures are rendered as aligned numeric series rather than plots, since the
reproduction runs headless.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None, float_format: str = "{:.4g}") -> str:
    """Render an aligned plain-text table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_figure_series(series: Mapping[str, Sequence[float]], x_values: Sequence[object],
                         x_label: str, title: str, float_format: str = "{:.4g}") -> str:
    """Render a figure's data as one column per plotted line."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)


def render_table2(complexities: Mapping[str, str], traffic_bits: Mapping[str, str],
                  scaling: Mapping[str, Mapping[str, float]],
                  models: Sequence[str] = ("fnn3", "vgg16", "resnet20", "lstm_ptb")) -> str:
    """Render the reproduction of Table 2."""
    headers = ["Algorithm", "Computation", "Communication (bits)",
               f"Scaling Efficiency @8 ({'/'.join(models)})"]
    rows = []
    for algorithm in complexities:
        eff = scaling.get(algorithm, {})
        eff_text = " / ".join(f"{eff.get(m, float('nan')):.2f}" for m in models)
        rows.append([algorithm, complexities[algorithm], traffic_bits[algorithm], eff_text])
    return format_table(headers, rows,
                        title="Table 2 — Gradient synchronization complexities and scaling efficiency")


def render_convergence_figure(results: Mapping[str, Sequence[float]], epochs: Sequence[int],
                              metric_name: str, model: str, world_size: int) -> str:
    """Render one panel of Figure 3 (metric vs epoch for every algorithm)."""
    return format_figure_series(results, list(epochs), x_label="epoch",
                                title=f"Figure 3 ({model}, {world_size} workers) — {metric_name} per epoch")


def render_iteration_time_figure(times: Mapping[str, Sequence[float]],
                                 world_sizes: Sequence[int], model: str,
                                 figure_name: str = "Figure 4") -> str:
    """Render one panel of Figure 4/5 (time vs worker count for every algorithm)."""
    return format_figure_series(times, list(world_sizes), x_label="workers",
                                title=f"{figure_name} ({model}) — seconds")
