"""Convergence diagnostics tied to the paper's theoretical analysis (§3.2).

The analysis rests on three ingredients that can be checked numerically:

* **Assumption 3 (gradient bound)** — ``E‖g_t + ∇µ_t‖² ≤ A + B‖w − w*‖²``.
  :func:`assumption3_bound_estimate` fits the smallest ``(A, B)`` consistent
  with observed samples; :func:`empirical_gradient_bound_holds` checks that a
  run's samples admit finite constants.
* **Variance preservation** — the reason A2SGD keeps local errors is so the
  reconstructed gradient has (almost) the variance of the dense gradient.
  :func:`variance_ratio` measures it.
* **Mean preservation** — averaging the reconstructed gradients over workers
  should equal averaging the raw gradients up to the difference between
  local and global means; :func:`reconstruction_preserves_mean` quantifies
  the gap.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.compress.a2sgd import A2SGDCompressor


def assumption3_bound_estimate(gradient_norms_sq: Sequence[float],
                               distances_sq: Sequence[float]) -> Tuple[float, float]:
    """Smallest (A, B) with ``‖g + ∇µ‖² ≤ A + B·‖w − w*‖²`` on the samples.

    A simple robust fit: B is the slope that covers the upper envelope of the
    scatter, A the residual intercept.  Finite values mean the finite-sample
    proxy of Assumption 3 holds for the observed run.
    """
    norms = np.asarray(list(gradient_norms_sq), dtype=np.float64)
    dists = np.asarray(list(distances_sq), dtype=np.float64)
    if norms.size == 0 or norms.size != dists.size:
        raise ValueError("need equally many gradient norms and distances")
    positive = dists > 1e-12
    if positive.any():
        slope = float(np.max(norms[positive] / dists[positive]))
    else:
        slope = 0.0
    intercept = float(np.max(norms - slope * dists))
    return max(0.0, intercept), max(0.0, slope)


def empirical_gradient_bound_holds(gradient_norms_sq: Sequence[float],
                                   distances_sq: Sequence[float],
                                   max_constant: float = 1e9) -> bool:
    """True when finite constants (A, B) below ``max_constant`` exist."""
    a, b = assumption3_bound_estimate(gradient_norms_sq, distances_sq)
    return np.isfinite(a) and np.isfinite(b) and a <= max_constant and b <= max_constant


def variance_ratio(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Var(reconstructed) / Var(original) — should stay near 1 for A2SGD."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    denom = float(original.var())
    if denom == 0.0:
        return 1.0 if float(reconstructed.var()) == 0.0 else float("inf")
    return float(reconstructed.var()) / denom


def reconstruction_preserves_mean(gradients: Sequence[np.ndarray]) -> float:
    """Relative gap between dense averaging and A2SGD reconstruction averaging.

    Runs one full A2SGD exchange over ``gradients`` (one per worker) and
    compares the across-worker mean of the reconstructed gradients with the
    plain mean of the raw gradients.  The gap stems only from the ∇µ term and
    should be small relative to the gradient norm.
    """
    gradients = [np.asarray(g, dtype=np.float32).reshape(-1) for g in gradients]
    compressors = [A2SGDCompressor() for _ in gradients]
    payloads, contexts = [], []
    for compressor, gradient in zip(compressors, gradients):
        payload, ctx = compressor.compress(gradient)
        payloads.append(payload)
        contexts.append(ctx)
    global_means = np.mean(np.stack(payloads), axis=0)
    reconstructed = [compressor.decompress(global_means, ctx)
                     for compressor, ctx in zip(compressors, contexts)]
    dense_average = np.mean(np.stack(gradients), axis=0)
    a2sgd_average = np.mean(np.stack(reconstructed), axis=0)
    scale = float(np.linalg.norm(dense_average)) or 1.0
    return float(np.linalg.norm(a2sgd_average - dense_average)) / scale


def time_to_accuracy(times: Sequence[float], values: Sequence[float],
                     target: float, higher_is_better: bool = True) -> float:
    """First simulated time at which ``values`` crosses ``target``.

    ``times`` is the per-epoch simulated clock (monotone non-decreasing),
    ``values`` the matching metric curve.  The crossing is linearly
    interpolated between the bracketing epochs, so two runs evaluated at
    different cadences compare fairly; returns ``inf`` when the target is
    never reached.  ``higher_is_better=False`` flips the comparison for
    loss/perplexity-style metrics.
    """
    times = np.asarray(list(times), dtype=np.float64)
    values = np.asarray(list(values), dtype=np.float64)
    if times.size == 0 or times.size != values.size:
        raise ValueError("need equally many (non-zero) times and metric values")
    reached = values >= target if higher_is_better else values <= target
    reached &= np.isfinite(values) & np.isfinite(times)
    if not reached.any():
        return float("inf")
    i = int(np.argmax(reached))           # first crossing index
    if i == 0:
        return float(times[0])
    t0, t1 = times[i - 1], times[i]
    v0, v1 = values[i - 1], values[i]
    if not (np.isfinite(v0) and np.isfinite(t0)) or v1 == v0:
        return float(t1)
    frac = (target - v0) / (v1 - v0)
    frac = min(max(float(frac), 0.0), 1.0)
    return float(t0 + frac * (t1 - t0))


def track_gradient_bound_samples(weights: Sequence[np.ndarray],
                                 gradients: Sequence[np.ndarray],
                                 optimum: np.ndarray) -> Tuple[List[float], List[float]]:
    """Build the (‖g‖², ‖w − w*‖²) sample lists Assumption 3 is checked on."""
    norms = [float(np.linalg.norm(g) ** 2) for g in gradients]
    distances = [float(np.linalg.norm(np.asarray(w) - optimum) ** 2) for w in weights]
    return norms, distances
