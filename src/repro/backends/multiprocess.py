"""Multiprocessing execution backend: real parallel workers, shared buffers.

Process model
-------------
The parent (trainer) process keeps everything except the forward/backward
pass: data loading, the synchronization strategy's exchange, the fused
optimizer step, the parameter phase, callbacks, evaluation and
checkpointing.  Each worker process owns a contiguous shard of ranks
(``np.array_split``), attaches to the shared segments, rebuilds its shard's
replicas for *structure only* (``adopt_values=False`` re-points them at the
shared parameter rows the parent initialized) and loops:

    barrier → read step number → forward/backward on its shard → write
    losses → barrier

The flat ``(P, n)`` parameter and gradient matrices live in one
:class:`~repro.backends.shm.SharedMemoryArena` segment; the parent's
``WorldFlatBuffers`` and every worker's shard world are views of the same
physical pages, so gradients written by a worker's backward pass are the
matrix the parent's compressor kernels consume — zero pickling, zero copies
on the hot path.  BatchNorm running stats are adopted into per-rank shared
slots the same way, so the parent's evaluation-time replicas see the
statistics the workers accumulated.

Coordination is the barrier/sequence-number protocol of
:mod:`repro.backends.shm`: a generation-counting :class:`ShmBarrier` over a
single-writer int64 slot plus a monotonically increasing step number the
workers deduplicate on, so a spurious release never recomputes a step.  The
parent polls worker liveness while blocked and raises a
:class:`WorkerDiedError` naming the dead rank shard instead of hanging.

Tapes are never pickled: each worker builds its own (taped) batched executor
over its shard rows and records the graph locally on its first iteration —
the "re-record in worker" half of the tape-shipping design.

Determinism
-----------
Batched execution is row-independent (the PR-3 executor tests pin batched ==
per-replica-loop bit-identity for any world size), so a shard of ``S`` rows
computes exactly what those rows compute inside the full ``(P, B, ...)``
batch.  Workers enable the same flush-to-zero mode as the parent and derive
replica initialization from the same centralized seed
(:func:`repro.utils.rng.replica_init_seed`); every RNG the run consumes
(batch order, compressor dithering) stays in the parent.  The backend is
therefore bit-identical to ``inprocess`` — parameters, losses and metrics.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import EXECUTION_BACKENDS, ExecutionBackend
from repro.backends.shm import BarrierTimeout, SharedMemoryArena, ShmBarrier
from repro.core.flat_buffer import (
    FlatLayout,
    WorldFlatBuffers,
    adopt_module_buffers,
)
from repro.nn.module import Module

#: ctrl slot layout: [command, step number, reserved, reserved].
CMD_RUN, CMD_SHUTDOWN = 0, 1

#: Wall-clock bound on one worker forward/backward before the parent gives
#: up (liveness is polled far sooner; this guards against a livelocked
#: worker, not a slow one — tiny-preset steps take milliseconds).
STEP_TIMEOUT_S = 600.0


class WorkerDiedError(RuntimeError):
    """A worker process exited (crash/OOM/SIGKILL) while the run needed it."""


def _buffer_slot(rank: int, name: str) -> str:
    return f"buffers:{rank}:{name}"


def _worker_main(payload: dict) -> None:
    """Worker process entry point: attach, rebuild the shard, serve steps."""
    # Mirror the parent's kernel environment: flush-to-zero is enabled at
    # ``import repro`` on the importing thread; under the fork start method
    # this thread inherited the parent's MXCSR, under spawn the fresh import
    # set it — calling again is idempotent and keeps both paths identical.
    from repro.models.registry import get_model_spec
    from repro.core.batched_replicas import build_replica_executor
    from repro.utils import denormals
    from repro.utils.rng import replica_init_seed

    denormals.enable_flush_to_zero()
    parent_pid = payload["parent_pid"]

    def check_parent() -> None:
        if os.getppid() != parent_pid:
            os._exit(3)          # orphaned: the parent is gone, nothing to serve

    state = SharedMemoryArena(payload["state"]["slots"],
                              name=payload["state"]["name"], create=False)
    io = SharedMemoryArena(payload["io"]["slots"],
                           name=payload["io"]["name"], create=False)
    ranks: List[int] = payload["ranks"]
    lo, hi = ranks[0], ranks[-1] + 1

    spec = get_model_spec(payload["model"], payload["preset"])
    replicas = [spec.build(seed=replica_init_seed(payload["seed"], rank))
                for rank in ranks]
    shard_world = WorldFlatBuffers(replicas,
                                   param_matrix=state["params"][lo:hi],
                                   grad_matrix=state["grads"][lo:hi],
                                   adopt_values=False)
    for rank, replica in zip(ranks, replicas):
        views = {name: state[_buffer_slot(rank, name)]
                 for name in payload["buffer_names"]}
        adopt_module_buffers(replica, views, adopt_values=False)
    executor = build_replica_executor(replicas, shard_world, spec.task,
                                      taped=payload["taped"])

    ctrl = state["ctrl"]
    losses = state["losses"]
    inputs = io["inputs"][lo:hi]
    targets = io["targets"][lo:hi]
    barrier = ShmBarrier(state["arrive"], index=payload["worker_index"])
    last_step = 0
    while True:
        barrier.wait(poll=check_parent)
        if int(ctrl[0]) == CMD_SHUTDOWN:
            break
        step = int(ctrl[1])
        if step == last_step:
            continue             # join-phase release of a step already served
        last_step = step
        losses[lo:hi] = executor.forward_backward(inputs, targets)
    state.close()
    io.close()


class _MultiprocessExecutor:
    """The parent-side executor: stage the batch, run the fork/join protocol.

    Drop-in for the in-process batched executors —
    ``forward_backward(inputs, targets) -> losses`` with the gradients landing
    in ``world.grad_matrix`` (which *is* the shared segment here).  Workers
    are spawned lazily on the first call, when the batch geometry is known;
    classification loaders run with ``drop_last=True`` so the shape is
    constant for the rest of the run.
    """

    def __init__(self, backend: "MultiprocessingBackend", *, model: str,
                 preset: str, seed: int, taped: bool):
        self.backend = backend
        self.model = model
        self.preset = preset
        self.seed = seed
        self.taped = taped

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        backend = self.backend
        if backend._processes is None:
            backend._start_workers(self, inputs, targets)
        io = backend.io_arena
        if inputs.shape != io["inputs"].shape:
            raise ValueError(f"batch shape changed mid-run: staged "
                             f"{io['inputs'].shape}, got {inputs.shape}")
        io["inputs"][...] = inputs
        io["targets"][...] = targets
        ctrl = backend.arena["ctrl"]
        ctrl[1] += 1                               # publish the step number...
        backend._barrier.wait(poll=backend.check_workers)   # ...release workers
        backend._barrier.wait(poll=backend.check_workers,   # join: shard grads
                              timeout=STEP_TIMEOUT_S)       # and losses ready
        return [float(x) for x in backend.arena["losses"]]


@EXECUTION_BACKENDS.register(
    "multiprocessing",
    description="long-lived worker processes over shared-memory flat buffers "
                "(bit-identical to inprocess; real cores)")
class MultiprocessingBackend(ExecutionBackend):
    """Rank shards as worker processes over shared ``(P, n)`` matrices."""

    name = "multiprocessing"

    def __init__(self, num_workers: Optional[int] = None,
                 start_method: Optional[str] = None):
        if num_workers is not None and (not isinstance(num_workers, int)
                                        or isinstance(num_workers, bool)
                                        or num_workers < 1):
            raise ValueError(f"num_workers must be an integer >= 1, "
                             f"got {num_workers!r}")
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            # fork shares the parent's loaded modules and MXCSR state and
            # starts in milliseconds; spawn is the portable fallback.
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise ValueError(f"start_method must be one of {available}, "
                             f"got {start_method!r}")
        self.num_workers = num_workers
        self.start_method = start_method
        self.arena: Optional[SharedMemoryArena] = None
        self.io_arena: Optional[SharedMemoryArena] = None
        self._processes: Optional[List[Tuple[multiprocessing.Process, List[int]]]] = None
        self._barrier: Optional[ShmBarrier] = None
        self._buffer_names: List[str] = []
        self._world_size = 0
        self._owner_pid = os.getpid()
        self._closed = False

    # ------------------------------------------------------------------ #
    # compatibility (same pinned text in spec.validate and trainer bind)
    # ------------------------------------------------------------------ #
    def compatibility_problems(self, *, world_size=None, task=None,
                               sync_strategy=None, is_async=False,
                               faults_active=False, fused_pipeline=True) -> List[str]:
        problems: List[str] = []
        if is_async:
            problems.append(
                f"backend 'multiprocessing' cannot run sync strategy "
                f"{sync_strategy!r}: the event-driven virtual clock executes "
                f"one rank at a time; use backend 'inprocess'")
        if faults_active:
            problems.append(
                "backend 'multiprocessing' does not support fault injection; "
                "remove the \"faults\" section or use backend 'inprocess'")
        if not fused_pipeline:
            problems.append(
                "backend 'multiprocessing' requires the fused pipeline; "
                "remove \"fused_pipeline\": false or use backend 'inprocess'")
        if task == "language_model":
            problems.append(
                "backend 'multiprocessing' does not support language models; "
                "use backend 'inprocess'")
        if (self.num_workers is not None and isinstance(world_size, int)
                and self.num_workers > world_size):
            problems.append(
                f"backend num_workers ({self.num_workers}) cannot exceed "
                f"world_size ({world_size})")
        return problems

    # ------------------------------------------------------------------ #
    # world + executor construction
    # ------------------------------------------------------------------ #
    def create_world(self, replicas: Sequence[Module]) -> WorldFlatBuffers:
        P = len(replicas)
        self._world_size = P
        self._num_workers = min(self.num_workers or P, P)
        layout = FlatLayout.from_model(replicas[0])
        n = layout.total_size
        buffer_specs = [(name, buf.shape, buf.dtype.str)
                        for name, buf in replicas[0].named_buffers()]
        self._buffer_names = [name for name, _, _ in buffer_specs]
        slots: Dict[str, Tuple[Tuple[int, ...], str]] = {
            "params": ((P, n), np.float32),
            "grads": ((P, n), np.float32),
            "losses": ((P,), np.float64),
            "ctrl": ((4,), np.int64),
            "arrive": ((self._num_workers + 1,), np.int64),
        }
        for rank in range(P):
            for name, shape, dtype in buffer_specs:
                slots[_buffer_slot(rank, name)] = (shape, dtype)
        self.arena = SharedMemoryArena(slots)
        world = WorldFlatBuffers(replicas,
                                 param_matrix=self.arena["params"],
                                 grad_matrix=self.arena["grads"])
        for rank, replica in enumerate(replicas):
            views = {name: self.arena[_buffer_slot(rank, name)]
                     for name in self._buffer_names}
            adopt_module_buffers(replica, views, adopt_values=True)
        atexit.register(self._atexit_close)
        return world

    def create_executor(self, trainer) -> _MultiprocessExecutor:
        return _MultiprocessExecutor(self, model=trainer.config.model,
                                     preset=trainer.config.preset,
                                     seed=trainer.config.seed,
                                     taped=trainer.config.taped)

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #
    def _start_workers(self, executor: _MultiprocessExecutor,
                       inputs: np.ndarray, targets: np.ndarray) -> None:
        self.io_arena = SharedMemoryArena({
            "inputs": (inputs.shape, inputs.dtype.str),
            "targets": (targets.shape, targets.dtype.str),
        })
        self._barrier = ShmBarrier(self.arena["arrive"],
                                   index=self._num_workers)
        context = multiprocessing.get_context(self.start_method)
        shards = np.array_split(np.arange(self._world_size), self._num_workers)
        self._processes = []
        for index, shard in enumerate(shards):
            ranks = [int(r) for r in shard]
            payload = {
                "worker_index": index,
                "ranks": ranks,
                "model": executor.model,
                "preset": executor.preset,
                "seed": executor.seed,
                "taped": executor.taped,
                "buffer_names": self._buffer_names,
                "state": {"name": self.arena.name, "slots": self.arena.slots},
                "io": {"name": self.io_arena.name, "slots": self.io_arena.slots},
                "parent_pid": os.getpid(),
            }
            process = context.Process(target=_worker_main, args=(payload,),
                                      daemon=True,
                                      name=f"repro-worker-{index}")
            process.start()
            self._processes.append((process, ranks))

    def check_workers(self) -> None:
        """Raise :class:`WorkerDiedError` naming any dead worker's ranks."""
        for index, (process, ranks) in enumerate(self._processes or []):
            if not process.is_alive():
                raise WorkerDiedError(
                    f"multiprocessing backend: worker {index} "
                    f"(ranks {ranks[0]}..{ranks[-1]}) died with exit code "
                    f"{process.exitcode}; the surviving parent reclaims the "
                    f"shared segments on close()")

    def close(self) -> None:
        """Shut workers down and unlink the shared segments (idempotent)."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        processes = self._processes or []
        if processes and self.arena is not None and self._barrier is not None \
                and all(p.is_alive() for p, _ in processes):
            self.arena["ctrl"][0] = CMD_SHUTDOWN
            # Workers may be one barrier phase ahead after an aborted
            # iteration; a couple of bounded arrivals releases them either
            # way, after which they observe SHUTDOWN and exit.
            for _ in range(2):
                try:
                    self._barrier.wait(timeout=2.0)
                except BarrierTimeout:
                    break
                for process, _ in processes:
                    process.join(timeout=2.0)
                if not any(p.is_alive() for p, _ in processes):
                    break
        for process, _ in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes = None
        if self.io_arena is not None:
            self.io_arena.close()
        if self.arena is not None:
            self.arena.close()
        atexit.unregister(self._atexit_close)

    def _atexit_close(self) -> None:
        if not self._closed:
            self.close()
