"""Execution backends: who actually runs the replicas' forward/backward.

The trainer's fused pipeline is written against two objects — a
:class:`~repro.core.flat_buffer.WorldFlatBuffers` holding the ``(P, n)``
parameter/gradient matrices and an executor with
``forward_backward(inputs, targets) -> losses`` — but nothing in the
algorithm code cares *where* those live.  An :class:`ExecutionBackend`
supplies both:

* ``inprocess`` (the default, and the reference semantics) builds the plain
  in-memory world and the batched/taped executors of
  :mod:`repro.core.batched_replicas`, exactly as every PR before this one
  ran.
* ``multiprocessing`` (:mod:`repro.backends.multiprocess`) puts the matrices
  in shared memory and fans the forward/backward out to long-lived worker
  processes — bit-identical numerics, real cores.

Backends are the 12th component registry (``repro components`` lists them;
unknown names get did-you-mean errors), and each backend declares which
feature combinations it cannot run via :meth:`compatibility_problems`, which
``ExperimentSpec.validate()`` and the trainer's bind-time check both call —
the exact same pinned error text in both places.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.batched_replicas import build_replica_executor
from repro.core.flat_buffer import WorldFlatBuffers
from repro.nn.module import Module
from repro.registry import Registry

#: The execution-backend registry (12th public registry; see
#: ``repro components --registry backends``).
EXECUTION_BACKENDS = Registry("execution backend", expose="backends")


class ExecutionBackend:
    """Where a training run's forward/backward passes execute.

    Subclasses provide the flat world (whose storage they may place wherever
    they like) and the executor the trainer calls each iteration; everything
    else — data loading, the synchronization strategy's exchange, the fused
    optimizer step, evaluation, checkpointing — stays in the parent process
    regardless of backend, which is what keeps the backends bit-identical.
    """

    #: Canonical registry name (set by subclasses).
    name = "abstract"

    def compatibility_problems(self, *, world_size: Optional[int] = None,
                               task: Optional[str] = None,
                               sync_strategy: Optional[str] = None,
                               is_async: bool = False,
                               faults_active: bool = False,
                               fused_pipeline: bool = True) -> List[str]:
        """Pinned error messages for feature combinations this backend
        cannot run; empty when the configuration is supported."""
        return []

    def create_world(self, replicas: Sequence[Module]) -> WorldFlatBuffers:
        """Build the ``(P, n)`` flat world the trainer operates on."""
        raise NotImplementedError

    def create_executor(self, trainer):
        """Build the executor whose ``forward_backward`` runs each iteration."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent; the default has none)."""


@EXECUTION_BACKENDS.register(
    "inprocess",
    description="single-process batched/taped executors (the default; "
                "reference semantics every other backend must match)")
class InProcessBackend(ExecutionBackend):
    """The seed execution model: everything runs in the trainer's process."""

    name = "inprocess"

    def create_world(self, replicas: Sequence[Module]) -> WorldFlatBuffers:
        return WorldFlatBuffers(replicas)

    def create_executor(self, trainer):
        return build_replica_executor(trainer.replicas, trainer.flat_world,
                                      trainer.spec.task,
                                      taped=trainer.config.taped)


def backend_spec_problems(backend: object, backend_kwargs: object, *,
                          world_size: Optional[int] = None,
                          task: Optional[str] = None,
                          sync_strategy: Optional[str] = None,
                          is_async: bool = False,
                          faults_active: bool = False,
                          fused_pipeline: bool = True) -> List[str]:
    """Validation messages for a spec's ``backend`` / ``backend_kwargs``.

    Shared by ``ExperimentSpec.validate()`` and the trainer's constructor so
    a bad combination fails with identical text whichever entry point hits it
    first.  Checks, in order: the name resolves in the registry (did-you-mean
    on typos), the backend is constructible with the kwargs, and the backend
    accepts the feature combination.
    """
    from repro.registry import RegistryKeyError

    problems: List[str] = []
    if not isinstance(backend, str):
        return [f"backend must be a registered name, got {type(backend).__name__}"]
    if not isinstance(backend_kwargs, dict):
        return [f"backend_kwargs must be a dict, got {type(backend_kwargs).__name__}"]
    try:
        canonical = EXECUTION_BACKENDS.canonical(backend)
    except RegistryKeyError as error:
        return [str(error)]
    try:
        instance = EXECUTION_BACKENDS.create(canonical, **backend_kwargs)
    except Exception as error:
        return [f"backend {canonical!r} cannot be constructed with "
                f"{backend_kwargs!r}: {error}"]
    problems.extend(instance.compatibility_problems(
        world_size=world_size, task=task, sync_strategy=sync_strategy,
        is_async=is_async, faults_active=faults_active,
        fused_pipeline=fused_pipeline))
    instance.close()
    return problems
