"""Shared-memory primitives for the multiprocessing execution backend.

Three layers, each usable on its own:

* :class:`SharedMemoryArena` — one named ``multiprocessing.shared_memory``
  segment carved into typed numpy slots.  The creating process owns the
  segment (context-manager ``unlink`` plus a pid-guarded ``atexit`` fallback,
  so ``/dev/shm`` is clean even after a mid-run exception); attaching
  processes immediately deregister from the ``resource_tracker`` so a worker
  exit can never unlink a segment the parent still needs.
* :class:`ShmBarrier` — a generation-counting barrier over an int64 slot of
  an arena.  Every participant owns exactly one cell (single-writer, so the
  protocol needs no locks on a cache-coherent host); ``wait`` spins briefly,
  then yields, and periodically invokes a ``poll`` callback so the parent can
  detect a dead worker instead of spinning forever.
* :class:`ShmCommunicator` — a second implementation of the
  :class:`repro.comm.backend.Communicator` interface (the first is the
  simulated :class:`~repro.comm.inprocess.InProcessWorld`): collectives for
  *real* processes that coordinate through shared staging rows with the
  barrier's sequence numbers.  ``allreduce`` gathers every rank's payload and
  reduces locally with :meth:`CollectiveOp.combine`, so all ranks compute the
  bit-identical result in the same order.

The training hot path never pickles: parameters, gradients, batch inputs and
losses all live in arena slots that both sides view in place.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.comm.backend import CollectiveOp, Communicator

#: Slot alignment in bytes (one cache line, so single-writer int64 cells of
#: adjacent participants never share a line with payload data).
_ALIGN = 64

#: Name prefix of every segment this module creates; the lifecycle tests
#: enumerate ``/dev/shm`` for it to prove nothing leaks.
SEGMENT_PREFIX = "repro_mp_"


class BarrierTimeout(RuntimeError):
    """A barrier participant did not arrive within the timeout."""


def _slot_spec(shape: Sequence[int], dtype) -> Tuple[Tuple[int, ...], str]:
    """Normalize a slot declaration to ``(shape tuple, dtype string)``."""
    return tuple(int(s) for s in shape), np.dtype(dtype).str


class SharedMemoryArena:
    """One shared-memory segment carved into named, typed numpy slots.

    Parameters
    ----------
    slots:
        ``{name: (shape, dtype)}`` declarations.  The same mapping must be
        passed on attach (ship it to workers once, at spawn — it is the only
        pickled metadata; the arrays themselves are never serialized).
    name:
        Segment name to attach to; ``None`` creates a fresh segment.
    create:
        ``True`` creates (and owns) the segment; ``False`` attaches to an
        existing one and immediately deregisters it from this process's
        ``resource_tracker`` so our exit cannot unlink the owner's segment.
    """

    def __init__(self, slots: Mapping[str, Tuple[Sequence[int], object]], *,
                 name: Optional[str] = None, create: bool = True):
        self.slots: Dict[str, Tuple[Tuple[int, ...], str]] = {
            key: _slot_spec(shape, dtype) for key, (shape, dtype) in slots.items()}
        self._offsets: Dict[str, int] = {}
        offset = 0
        for key, (shape, dtype) in self.slots.items():
            self._offsets[key] = offset
            nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            offset += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        self.nbytes = max(offset, _ALIGN)
        self.owner = bool(create)
        self._owner_pid = os.getpid() if create else None
        self._closed = False
        if create:
            name = name or f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
            self._shm = shared_memory.SharedMemory(name=name, create=True,
                                                   size=self.nbytes)
            # POSIX shm segments outlive their creator until unlinked: if the
            # owner dies without reaching close() (mid-run exception, ^C),
            # this fallback reclaims /dev/shm.  Pid-guarded so a forked child
            # that *does* run atexit handlers cannot unlink the parent's
            # segment.
            atexit.register(self._atexit_unlink)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        # Opt out of resource_tracker accounting on both sides (Python < 3.13
        # has no track=False).  The arena owns the lifecycle: explicit close()
        # plus the pid-guarded atexit fallback.  Without this, (a) a *spawned*
        # worker's private tracker unlinks the segment out from under the
        # parent when the worker exits, and (b) under fork — one tracker
        # shared by the whole family — the eventual unlink()'s UNREGISTER
        # hits a cache our attach-side opt-out already emptied, making the
        # tracker print KeyError tracebacks.  close() re-registers just
        # before unlinking so every register/unregister pairs up.
        try:
            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker not running
            pass
        self.name = self._shm.name
        self._views: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def __getitem__(self, key: str) -> np.ndarray:
        """The live numpy view of slot ``key`` (zero-copy, shared)."""
        view = self._views.get(key)
        if view is None:
            shape, dtype = self.slots[key]
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(self._shm.buf, dtype=np.dtype(dtype),
                                 count=count, offset=self._offsets[key]
                                 ).reshape(shape)
            self._views[key] = view
        return view

    def __contains__(self, key: str) -> bool:
        return key in self.slots

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release this process's handle; the owner also unlinks the name.

        Live numpy views (e.g. adopted ``Parameter.data``) may still alias
        the mapping, in which case the pages stay mapped until the process
        exits — but the ``/dev/shm`` entry is removed immediately, which is
        the resource that must not leak.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:
            # Adopted views (e.g. re-pointed Parameter.data) still alias the
            # buffer; the mapping lives until the process exits, which is
            # fine — the /dev/shm name is unlinked below regardless.  Detach
            # the mmap handle and close the fd ourselves so SharedMemory's
            # __del__ does not retry close() and spray unraisable
            # BufferErrors at interpreter shutdown.
            self._shm._mmap = None
            if self._shm._fd >= 0:
                try:
                    os.close(self._shm._fd)
                except OSError:  # pragma: no cover - already closed
                    pass
                self._shm._fd = -1
        if self.owner and os.getpid() == self._owner_pid:
            try:
                # Balance the unlink()'s UNREGISTER (we opted out at create).
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker not running
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            atexit.unregister(self._atexit_unlink)

    def _atexit_unlink(self) -> None:
        if not self._closed and os.getpid() == self._owner_pid:
            self.close()

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def leaked_segments() -> List[str]:
    """Names of live ``/dev/shm`` segments created by this module.

    The lifecycle tests assert this is empty after clean exits, mid-run
    exceptions and SIGKILLed workers.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux hosts
        return []
    return sorted(entry for entry in os.listdir(shm_dir)
                  if entry.startswith(SEGMENT_PREFIX))


class ShmBarrier:
    """Generation-counting barrier over one int64 arena slot.

    Cell ``index`` is written only by participant ``index`` (its arrival
    generation); a participant has passed generation ``g`` once every cell
    is ``>= g``.  Consecutive ``wait`` calls therefore implement an
    alternating-phase fork/join with no reset step and no locks.
    """

    def __init__(self, arrive: np.ndarray, index: int):
        if arrive.dtype != np.int64 or arrive.ndim != 1:
            raise ValueError("barrier slot must be a 1-D int64 array")
        self.arrive = arrive
        self.index = int(index)
        self.parties = int(arrive.shape[0])

    def wait(self, timeout: Optional[float] = None,
             poll: Optional[Callable[[], None]] = None) -> int:
        """Arrive and block until every participant reaches this generation.

        ``poll`` runs periodically while blocked (the parent checks worker
        liveness there; workers check for an orphaned parent) and may raise
        to abort the wait.  Returns the generation number passed.
        """
        generation = int(self.arrive[self.index]) + 1
        self.arrive[self.index] = generation
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while int(self.arrive.min()) < generation:
            spins += 1
            if spins < 200:        # fast path: everyone is already here
                continue
            # Yield the core (essential when participants oversubscribe the
            # CPUs), then back off to a short sleep.
            time.sleep(0.0 if spins < 2000 else 0.0002)
            if poll is not None and spins % 256 == 0:
                poll()
            if deadline is not None and time.monotonic() > deadline:
                raise BarrierTimeout(
                    f"barrier participant {self.index} timed out at generation "
                    f"{generation} ({timeout:.1f}s); arrivals: "
                    f"{self.arrive.tolist()}")
        return generation


#: Wire dtypes the communicator can stage, by header code.
_COMM_DTYPES = [np.dtype(np.float32), np.dtype(np.float64),
                np.dtype(np.int64), np.dtype(np.int32),
                np.dtype(np.uint8), np.dtype(np.bool_)]
_COMM_HEADER = 12          # int64s: dtype code, ndim, shape[0..9]
_MAX_NDIM = _COMM_HEADER - 2


def communicator_slots(world_size: int, capacity_bytes: int,
                       prefix: str = "comm") -> Dict[str, Tuple[Tuple[int, ...], str]]:
    """Arena slot declarations for a :class:`ShmCommunicator` world."""
    return {
        f"{prefix}:arrive": ((world_size,), np.int64),
        f"{prefix}:header": ((world_size, _COMM_HEADER), np.int64),
        f"{prefix}:data": ((world_size, int(capacity_bytes)), np.uint8),
    }


class ShmCommunicator(Communicator):
    """Collectives over shared staging rows — one per real process.

    The second :class:`~repro.comm.backend.Communicator` implementation:
    where :class:`~repro.comm.inprocess.InProcessWorld` simulates a priced
    fabric inside one process, this one coordinates genuinely concurrent
    processes through a :class:`SharedMemoryArena`.  Every collective is a
    publish → barrier → read → barrier sequence over per-rank staging rows
    (sequence numbers are the barrier generations), so no payload is ever
    pickled or sent through a pipe.
    """

    def __init__(self, arena: SharedMemoryArena, rank: int, world_size: int,
                 prefix: str = "comm",
                 poll: Optional[Callable[[], None]] = None,
                 timeout: Optional[float] = None):
        self._rank = int(rank)
        self._world_size = int(world_size)
        self._header = arena[f"{prefix}:header"]
        self._data = arena[f"{prefix}:data"]
        self._barrier = ShmBarrier(arena[f"{prefix}:arrive"], self._rank)
        self._poll = poll
        self._timeout = timeout

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def world_size(self) -> int:
        return self._world_size

    # ------------------------------------------------------------------ #
    def _publish(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        try:
            code = _COMM_DTYPES.index(array.dtype)
        except ValueError:
            raise TypeError(f"unsupported dtype {array.dtype} for shared-memory "
                            f"collectives; supported: "
                            f"{[str(d) for d in _COMM_DTYPES]}") from None
        if array.ndim > _MAX_NDIM:
            raise ValueError(f"arrays of ndim > {_MAX_NDIM} are not supported")
        if array.nbytes > self._data.shape[1]:
            raise ValueError(f"payload of {array.nbytes} B exceeds the staging "
                             f"capacity of {self._data.shape[1]} B per rank")
        header = self._header[self._rank]
        header[0] = code
        header[1] = array.ndim
        header[2:2 + array.ndim] = array.shape
        self._data[self._rank, :array.nbytes] = array.reshape(-1).view(np.uint8)

    def _read(self, rank: int) -> np.ndarray:
        header = self._header[rank]
        dtype = _COMM_DTYPES[int(header[0])]
        shape = tuple(int(s) for s in header[2:2 + int(header[1])])
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        flat = self._data[rank, :nbytes].copy().view(dtype)
        return flat.reshape(shape)

    def _sync(self) -> None:
        self._barrier.wait(timeout=self._timeout, poll=self._poll)

    # ------------------------------------------------------------------ #
    def barrier(self) -> None:
        self._sync()

    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        self._publish(array)
        self._sync()                                 # all payloads published
        results = [self._read(rank) for rank in range(self._world_size)]
        self._sync()                                 # all reads done; rows free
        return results

    def allreduce(self, array: np.ndarray,
                  op: CollectiveOp = CollectiveOp.MEAN) -> np.ndarray:
        # Gather-then-combine: every rank folds the same stack in the same
        # order, so the reduction is bit-identical across ranks.
        return op.combine(self.allgather(array))

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        if self._rank == root:
            self._publish(array)
        self._sync()                                 # root's payload published
        result = self._read(root)
        self._sync()                                 # all reads done
        return result
