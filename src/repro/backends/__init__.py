"""Execution backends: pluggable homes for the forward/backward passes.

Importing this package registers every built-in backend with
:data:`EXECUTION_BACKENDS` (the 12th public component registry):

* ``inprocess`` — the single-process batched/taped executors every PR before
  the backend split ran on; the reference semantics.
* ``multiprocessing`` — long-lived worker processes over
  ``multiprocessing.shared_memory`` flat buffers, bit-identical to
  ``inprocess`` while using real cores.

The shared-memory substrate (:class:`SharedMemoryArena`, :class:`ShmBarrier`,
:class:`ShmCommunicator`) lives in :mod:`repro.backends.shm` and is usable on
its own — ``ShmCommunicator`` is the second implementation of the
:class:`repro.comm.backend.Communicator` interface.
"""

from repro.backends.base import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    InProcessBackend,
    backend_spec_problems,
)
from repro.backends.multiprocess import MultiprocessingBackend, WorkerDiedError
from repro.backends.shm import (
    BarrierTimeout,
    SharedMemoryArena,
    ShmBarrier,
    ShmCommunicator,
    communicator_slots,
    leaked_segments,
)

__all__ = [
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "InProcessBackend",
    "MultiprocessingBackend",
    "WorkerDiedError",
    "backend_spec_problems",
    "BarrierTimeout",
    "SharedMemoryArena",
    "ShmBarrier",
    "ShmCommunicator",
    "communicator_slots",
    "leaked_segments",
]
