"""Deterministic event-driven virtual clock for simulated asynchronous training.

The clock is a priority queue of ``(time, rank)`` completion events.  Each
rank has **exactly one** event in flight at any moment (its next gradient
becoming ready), so the pair ``(time, rank)`` is a total order: ties in time
break by rank, deterministically, independent of insertion history.  That
property is what makes checkpoint/resume bit-identical — the queue can be
reconstructed from the per-rank pending times alone, with no hidden sequence
counters.

Simulated time only moves forward: popping an event advances ``now`` to the
event's timestamp.  All times are float seconds on the same axis as the
α–β :mod:`repro.comm.network_model` costs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple


class VirtualClock:
    """Priority-queue event loop over ``(time, rank)`` completion events."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, rank: int) -> None:
        """Schedule rank's next completion at absolute time ``when``."""
        when = float(when)
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at t={when} before now={self._now}")
        heapq.heappush(self._heap, (when, int(rank)))

    def pop(self) -> Tuple[float, int]:
        """Pop the earliest event and advance ``now`` to its timestamp."""
        if not self._heap:
            raise IndexError("pop from an empty VirtualClock")
        when, rank = heapq.heappop(self._heap)
        self._now = max(self._now, when)
        return when, rank

    def peek(self) -> Tuple[float, int]:
        if not self._heap:
            raise IndexError("peek into an empty VirtualClock")
        return self._heap[0]

    # ------------------------------------------------------------------ #
    # checkpoint support
    # ------------------------------------------------------------------ #
    def pending(self) -> Dict[int, float]:
        """``{rank: completion_time}`` for every in-flight event."""
        return {rank: when for when, rank in self._heap}

    def restore(self, now: float, pending: Dict[int, float]) -> None:
        """Rebuild the queue from a checkpointed ``(now, pending)`` snapshot."""
        self._now = float(now)
        self._heap = []
        for rank, when in pending.items():
            heapq.heappush(self._heap, (float(when), int(rank)))
