"""Event-driven training loop on the virtual clock.

Two integration points with the trainer:

* :class:`SimulationEngine` replaces the lockstep epoch loops when the bound
  strategy ``is_async``.  Ranks advance at the heterogeneous speeds drawn
  from the compute-time model: the clock pops the earliest ``(time, rank)``
  completion event, that rank's gradient is computed (host-side — real
  numerics, simulated duration), the strategy's :meth:`worker_step` performs
  the async numerics and prices its traffic through the α–β network model,
  and the rank's next completion is scheduled at
  ``event_time + comm + stall + compute``.  Epoch semantics are
  *update-budget based*: one epoch is ``world_size × iterations_per_epoch``
  worker steps in event order (the same number of gradient computations as
  a lockstep epoch), so fast ranks contribute more steps per epoch — which
  is exactly how asynchronous training converts straggler slack into
  progress.
* :class:`LockstepSimulator` keeps the synchronous paths' numerics
  untouched and only *prices* them: each lockstep iteration costs the
  barrier ``max_r(compute_r + stall_r)`` plus the iteration's measured-model
  compression/communication/aggregation time.  Under a constant model this
  reproduces today's behaviour bit for bit while adding a simulated clock.

Both expose ``state_arrays``/``load_state_arrays`` so checkpoints capture
the clock, the in-flight events and the compute-model RNG positions
(restored by draw-count replay), making resumed trajectories bit-identical.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.clock import VirtualClock
from repro.sim.compute import ComputeTimeModel
from repro.sim.report import SimReport
from repro.optim.lars import LARS, lars_flat_update
from repro.optim.sgd import sgd_flat_update
from repro.tensor import Tensor, functional as F

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trainer import DistributedTrainer


class SimulationEngine:
    """Runs an async strategy's training loop on the virtual clock."""

    def __init__(self, trainer: "DistributedTrainer",
                 compute_model: ComputeTimeModel, clock_seed: int):
        self.trainer = trainer
        self.compute_model = compute_model
        self.clock_seed = int(clock_seed)
        world_size = trainer.config.world_size
        compute_model.bind(world_size, self.clock_seed)
        self.clock = VirtualClock()
        self.report = SimReport(compute_model=compute_model.to_dict(),
                                clock_seed=self.clock_seed,
                                world_size=world_size,
                                strategy=trainer.sync_strategy.name)
        self.total_steps = 0
        self.batches_consumed: List[int] = [0] * world_size
        self._iterators = None
        self._lm_states: Optional[List] = None
        self._primed = False
        #: Optional :class:`repro.faults.injector.FaultInjector`, installed
        #: by the trainer.  ``None`` keeps the event loop fault-free.
        self.injector = None

    # ------------------------------------------------------------------ #
    # engine protocol consumed by AsyncStrategy implementations
    # ------------------------------------------------------------------ #
    @property
    def world(self):
        return self.trainer.world

    @property
    def param_matrix(self) -> np.ndarray:
        return self.trainer.flat_world.param_matrix

    @property
    def grad_matrix(self) -> np.ndarray:
        return self.trainer.flat_world.grad_matrix

    @property
    def num_parameters(self) -> int:
        return self.trainer.num_parameters

    def flat_update(self, params: np.ndarray, grads: np.ndarray, lr: float, *,
                    velocity: np.ndarray, scratch: np.ndarray) -> None:
        """One fused optimizer step with the trainer's hyperparameters.

        Used both for local worker rows and for a parameter server's own
        ``(1, n)`` state, so server and workers share one update rule.
        """
        trainer = self.trainer
        reference = trainer.optimizers[0]
        if isinstance(reference, LARS):
            layout = trainer.flat_world.layout
            lars_flat_update(params, grads, layout.offsets[:-1], layout.sizes,
                             lr, reference.momentum, reference.weight_decay,
                             reference.trust_coefficient, reference.eps,
                             velocity=velocity, scratch=scratch)
        else:
            sgd_flat_update(params, grads, lr, reference.momentum,
                            reference.weight_decay, reference.nesterov,
                            velocity=velocity, scratch=scratch)

    def apply_local_step(self, rank: int, lr: float) -> None:
        """Local optimizer step on one rank's flat row (EASGD-style)."""
        trainer = self.trainer
        world = trainer.flat_world
        self.flat_update(world.param_matrix[rank:rank + 1],
                         world.grad_matrix[rank:rank + 1], lr,
                         velocity=trainer._velocity_matrix[rank:rank + 1],
                         scratch=trainer._step_scratch[rank:rank + 1])

    def push_dropped(self, rank: int) -> bool:
        """Whether ``rank``'s next upstream message is lost on the wire.

        Consulted by the async strategies before applying a push/elastic
        exchange; consumes one deterministic per-rank message draw.
        """
        injector = self.injector
        if injector is None or not injector.affects_messages:
            return False
        return injector.message_dropped(rank)

    # ------------------------------------------------------------------ #
    # data feeding (per-rank continuous streams)
    # ------------------------------------------------------------------ #
    def _init_data(self) -> None:
        if self._iterators is not None:
            return
        trainer = self.trainer
        world_size = trainer.config.world_size
        if trainer.spec.task == "classification":
            self._iterators = [iter(loader) for loader in trainer.loaders]
        else:
            self._iterators = [shard.batches() for shard in trainer.lm_shards]
            self._lm_states = [None] * world_size
        # Resume: fast-forward each rank's stream by replaying the batches it
        # already consumed (the loaders reshuffle deterministically per pass,
        # so skipping k batches lands the RNGs exactly where they were).
        # Carried BPTT state is not replayed — a resumed language model run
        # restarts its truncation windows, like the lockstep epoch boundary.
        skip = list(self.batches_consumed)
        self.batches_consumed = [0] * world_size
        for rank, count in enumerate(skip):
            for _ in range(count):
                self._next_batch(rank)

    def _next_batch(self, rank: int):
        trainer = self.trainer
        try:
            batch = next(self._iterators[rank])
        except StopIteration:
            if trainer.spec.task == "classification":
                self._iterators[rank] = iter(trainer.loaders[rank])
            else:
                self._iterators[rank] = trainer.lm_shards[rank].batches()
                self._lm_states[rank] = None
            batch = next(self._iterators[rank])
        self.batches_consumed[rank] += 1
        return batch

    def _compute_gradient(self, rank: int) -> float:
        """Forward/backward for one rank into its pinned flat gradient row."""
        trainer = self.trainer
        trainer.flat_world.replica_buffers[rank].zero_grads()
        replica = trainer.replicas[rank]
        inputs, targets = self._next_batch(rank)
        if trainer.spec.task == "classification":
            logits = replica(Tensor(inputs))
            loss = F.cross_entropy(logits, targets)
            loss.backward()
        else:
            logits, lm_state = replica(inputs, self._lm_states[rank])
            loss = F.cross_entropy(logits, targets.reshape(-1))
            loss.backward()
            self._lm_states[rank] = replica.detach_state(lm_state)
        return loss.item()

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #
    def _schedule_next(self, rank: int, start: float) -> None:
        compute_s, stall_s = self.compute_model.step_time(rank)
        if self.injector is not None and self.injector.affects_timing:
            stall_s += self.injector.extra_stall(rank)
        self.report.record_schedule(rank, compute_s, stall_s)
        self.clock.schedule(start + stall_s + compute_s, rank)

    # ------------------------------------------------------------------ #
    # fault layer (event dispositions; strategies never see the injector)
    # ------------------------------------------------------------------ #
    def _fault_gate(self, when: float, rank: int) -> bool:
        """Handle the fault-layer disposition of a popped event.

        Returns True when the fault layer consumed the event — a lost step
        (the rank is down) or a rejoin catch-up — so no gradient step runs.
        """
        injector = self.injector
        if injector is None:
            return False
        if injector.needs_catchup[rank]:
            self._rejoin(rank, when)
            return True
        interval = injector.down_interval(rank, when)
        if interval is None:
            return False
        _, end = interval
        membership = injector.membership
        if membership.is_alive(rank):
            membership.set_alive(rank, False)
            injector.report.record_down(rank)
        injector.report.lost_steps += 1
        if end != math.inf:
            injector.report.record_downtime(rank, end - when)
            injector.needs_catchup[rank] = True
            self.clock.schedule(max(end, self.clock.now), rank)
        # A crash-stop rank never reschedules: its silence is permanent.
        return True

    def _rejoin(self, rank: int, when: float) -> None:
        """Serve a rejoining rank its catch-up: a dense parameter re-sync
        priced through the α–β model, fresh optimizer/compressor state, and
        membership restored before its next scheduled compute."""
        injector = self.injector
        trainer = self.trainer
        strategy = trainer.sync_strategy
        n = self.num_parameters
        row = strategy.catch_up(rank)
        if row is None:
            alive = injector.membership.alive_ranks()
            source = self.param_matrix[alive] if alive \
                else self.param_matrix[rank:rank + 1]
            row = source.mean(axis=0).astype(np.float32)
        self.param_matrix[rank, :] = np.asarray(row, dtype=np.float32).reshape(-1)
        trainer._velocity_matrix[rank, :] = 0.0
        if strategy.compressors:
            strategy.compressors[rank].reset_state()
        if strategy.parameter_codec is not None:
            strategy.parameter_codec.resync_rank(rank, self.param_matrix[rank])
        resync_time = self.world.point_to_point(4.0 * n)
        injector.report.record_resync(4.0 * n)
        injector.report.record_rejoin(rank)
        injector.membership.set_alive(rank, True)
        injector.needs_catchup[rank] = False
        self.report.comm_s_per_rank[rank] += resync_time
        self._schedule_next(rank, when + resync_time)

    def run(self, state) -> None:
        trainer = self.trainer
        strategy = trainer.sync_strategy
        strategy.async_setup(self)
        self._init_data()
        world_size = trainer.config.world_size
        steps_per_epoch = world_size * trainer.iterations_per_epoch
        if not self._primed:
            for rank in range(world_size):
                self._schedule_next(rank, self.clock.now)
            self._primed = True
        start_epoch = self.total_steps // steps_per_epoch
        for epoch in range(start_epoch, trainer.config.epochs):
            state.epoch = epoch
            trainer.callbacks.on_epoch_start(state)
            epoch_losses: List[float] = []
            epoch_target = (epoch + 1) * steps_per_epoch
            while self.total_steps < epoch_target:
                if len(self.clock) == 0:
                    # Every rank crashed with no rejoin scheduled; end the
                    # run gracefully instead of popping an empty heap.
                    state.stop_requested = True
                    break
                when, rank = self.clock.pop()
                self.report.record_event(when, rank)
                if self._fault_gate(when, rank):
                    continue
                step_in_epoch = self.total_steps - epoch * steps_per_epoch
                state.epoch = epoch
                state.iteration = step_in_epoch
                state.epoch_progress = epoch + step_in_epoch / steps_per_epoch
                trainer.callbacks.on_iteration_start(state)
                wall_start = time.perf_counter()
                loss = self._compute_gradient(rank)
                compute_wall = time.perf_counter() - wall_start
                lr = max(trainer.lr_policy.lr_at(state.epoch_progress,
                                                 trainer.base_lr), 1e-12)
                step = strategy.worker_step(rank, lr)
                self.report.record_step(rank, step.comm_time_s,
                                        staleness=step.staleness,
                                        rejected=step.rejected)
                self.total_steps += 1
                # The worker resumes computing after its exchange completes.
                self._schedule_next(rank, when + step.comm_time_s)
                epoch_losses.append(loss)
                trainer._end_iteration(state, loss, lr, compute_wall,
                                       step.to_sync_report())
                if state.stop_requested:
                    break
            self.report.record_epoch_mark(self.clock.now)
            trainer._end_epoch(state, epoch, epoch_losses)
            if state.stop_requested:
                break
        if self.injector is not None:
            # Finite outages charge their downtime when discovered; an
            # infinite one (crash_stop) only ends with the run.
            self.injector.settle_permanent_downtime(self.clock.now)

    # ------------------------------------------------------------------ #
    # checkpoint support
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        pending = self.clock.pending()
        world_size = self.report.world_size
        next_times = np.array([pending.get(rank, self.clock.now)
                               for rank in range(world_size)], dtype=np.float64)
        # Which ranks actually have an in-flight event: a crashed rank has
        # none, and restoring must not resurrect it with a fabricated one.
        event_mask = np.array([1 if rank in pending else 0
                               for rank in range(world_size)], dtype=np.int64)
        return {
            "clock_now": np.array([self.clock.now], dtype=np.float64),
            "next_time": next_times,
            "event_mask": event_mask,
            "primed": np.array([int(self._primed)], dtype=np.int64),
            "total_steps": np.array([self.total_steps], dtype=np.int64),
            "steps_per_rank": np.array(self.report.steps_per_rank, dtype=np.int64),
            "batches_consumed": np.array(self.batches_consumed, dtype=np.int64),
            "draws": np.array(self.compute_model.step_counts, dtype=np.int64),
            "busy_s": np.array(self.report.busy_s_per_rank, dtype=np.float64),
            "stall_s": np.array(self.report.stall_s_per_rank, dtype=np.float64),
            "comm_s": np.array(self.report.comm_s_per_rank, dtype=np.float64),
            "epoch_marks": np.array(self.report.epoch_time_s, dtype=np.float64),
            "staleness_keys": np.array(sorted(self.report.staleness_histogram),
                                       dtype=np.int64),
            "staleness_counts": np.array(
                [self.report.staleness_histogram[k]
                 for k in sorted(self.report.staleness_histogram)],
                dtype=np.int64),
            "rejected": np.array([self.report.rejected_pushes], dtype=np.int64),
        }

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        world_size = self.report.world_size
        now = float(arrays["clock_now"][0])
        next_times = np.asarray(arrays["next_time"], dtype=np.float64)
        if "event_mask" in arrays:
            mask = [bool(int(v)) for v in arrays["event_mask"]]
        else:  # pre-fault checkpoints: every rank always had an event
            mask = [True] * world_size
        self._primed = bool(int(arrays["primed"][0]))
        if self._primed:
            self.clock.restore(now, {rank: float(next_times[rank])
                                     for rank in range(world_size)
                                     if mask[rank]})
        else:
            self.clock.restore(now, {})
        self.total_steps = int(arrays["total_steps"][0])
        self.batches_consumed = [int(c) for c in arrays["batches_consumed"]]
        self.compute_model.restore([int(c) for c in arrays["draws"]])
        self.report.steps_per_rank = [int(c) for c in arrays["steps_per_rank"]]
        self.report.busy_s_per_rank = [float(v) for v in arrays["busy_s"]]
        self.report.stall_s_per_rank = [float(v) for v in arrays["stall_s"]]
        self.report.comm_s_per_rank = [float(v) for v in arrays["comm_s"]]
        if "epoch_marks" in arrays:
            self.report.epoch_time_s = [float(v) for v in arrays["epoch_marks"]]
            self.report.staleness_histogram = {
                int(k): int(c) for k, c in zip(arrays["staleness_keys"],
                                               arrays["staleness_counts"])}
            self.report.rejected_pushes = int(arrays["rejected"][0])
        self.report.simulated_time_s = now


class LockstepSimulator:
    """Simulated-time accounting for the synchronous lockstep paths.

    Numerics are untouched: the trainer's loops run exactly as before and
    call :meth:`record_iteration` once per iteration with that iteration's
    :class:`~repro.core.timeline.SyncReport`.  The iteration's simulated
    duration is the compute barrier — every rank draws its step time from
    the compute model and the slowest gates the collective — plus the
    report's compression, communication and aggregation time.
    """

    def __init__(self, world_size: int, compute_model: ComputeTimeModel,
                 clock_seed: int):
        self.world_size = int(world_size)
        self.compute_model = compute_model
        self.clock_seed = int(clock_seed)
        compute_model.bind(self.world_size, self.clock_seed)
        self.now = 0.0
        self.iterations = 0
        #: When True, measured kernel wall time (compression_time_s) is
        #: excluded from the clock so the timeline is a pure function of
        #: the seeds.  The fault layer requires this: fault models are
        #: queried by simulated time, so micro-second perf_counter noise
        #: would otherwise make the fault schedule non-reproducible.
        self.deterministic = False
        self.report = SimReport(compute_model=compute_model.to_dict(),
                                clock_seed=self.clock_seed,
                                world_size=self.world_size,
                                strategy="lockstep")
        self._pending_draws: Optional[List] = None

    def draw_iteration(self) -> List:
        """Pre-draw every rank's ``(compute_s, stall_s)`` for the coming
        iteration without advancing the clock.

        The trainer's fault phase needs the draws *before* the iteration
        runs (a stall can mean "absent this iteration" under the
        ``intermittent_dropout`` bridge); :meth:`record_iteration` then
        consumes the cached draws instead of drawing again, so timing is
        identical whether or not the fault layer peeked.
        """
        if self._pending_draws is None:
            self._pending_draws = [self.compute_model.step_time(rank)
                                   for rank in range(self.world_size)]
        return self._pending_draws

    def record_iteration(self, sync_report, alive: Optional[List[int]] = None,
                         extra_s: float = 0.0) -> float:
        if self._pending_draws is not None:
            draws = self._pending_draws
            self._pending_draws = None
        else:
            draws = [self.compute_model.step_time(rank)
                     for rank in range(self.world_size)]
        if alive is None:
            barrier = max(compute + stall for compute, stall in draws)
        else:
            # Dead ranks are absent from the barrier: the slowest *survivor*
            # gates the collective (their draw is still consumed, keeping
            # the compute-model streams aligned with a healthy run).
            barrier = max((draws[r][0] + draws[r][1] for r in alive),
                          default=0.0)
        overhead = (sync_report.comm_time_s
                    + getattr(sync_report, "aggregation_time_s", 0.0))
        if not self.deterministic:
            overhead += sync_report.compression_time_s
        duration = barrier + overhead + float(extra_s)
        self.now += duration
        self.iterations += 1
        alive_set = None if alive is None else set(alive)
        for rank, (compute, stall) in enumerate(draws):
            if alive_set is not None and rank not in alive_set:
                continue
            self.report.record_schedule(rank, compute, stall)
            self.report.record_step(rank, overhead)
        self.report.record_event(self.now, -1)
        return duration

    def record_epoch_mark(self) -> None:
        self.report.record_epoch_mark(self.now)

    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "clock_now": np.array([self.now], dtype=np.float64),
            "iterations": np.array([self.iterations], dtype=np.int64),
            "draws": np.array(self.compute_model.step_counts, dtype=np.int64),
            "steps_per_rank": np.array(self.report.steps_per_rank, dtype=np.int64),
            "busy_s": np.array(self.report.busy_s_per_rank, dtype=np.float64),
            "stall_s": np.array(self.report.stall_s_per_rank, dtype=np.float64),
            "comm_s": np.array(self.report.comm_s_per_rank, dtype=np.float64),
            "epoch_marks": np.array(self.report.epoch_time_s, dtype=np.float64),
        }

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self.now = float(arrays["clock_now"][0])
        self.iterations = int(arrays["iterations"][0])
        self.compute_model.restore([int(c) for c in arrays["draws"]])
        self.report.steps_per_rank = [int(c) for c in arrays["steps_per_rank"]]
        self.report.busy_s_per_rank = [float(v) for v in arrays["busy_s"]]
        self.report.stall_s_per_rank = [float(v) for v in arrays["stall_s"]]
        self.report.comm_s_per_rank = [float(v) for v in arrays["comm_s"]]
        if "epoch_marks" in arrays:
            self.report.epoch_time_s = [float(v) for v in arrays["epoch_marks"]]
        self.report.simulated_time_s = self.now
