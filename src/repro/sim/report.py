"""Per-run record of what happened on the virtual clock.

A :class:`SimReport` accumulates the facts sweeps and analysis need to plot
*time*-to-accuracy instead of *iterations*-to-accuracy: the simulated
wall-clock, per-rank step counts and busy/stall/comm seconds, the staleness
histogram of an async parameter server, and the simulated time at each epoch
boundary (which lines up 1:1 with the ``TrainingMetrics`` epoch rows).

The event log — the ``(time, rank)`` sequence in pop order — is kept for the
determinism guarantees: two runs with the same ``clock_seed`` must produce
identical logs.  It is capped (``max_events``) so long simulations do not
accumulate unbounded history; the cap only truncates the log, never the
aggregate counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SimReport:
    """Aggregated outcome of a simulated (virtual-clock) training run."""

    compute_model: Dict[str, object]
    clock_seed: int
    world_size: int
    strategy: str = ""
    simulated_time_s: float = 0.0
    #: Completed worker steps per rank.
    steps_per_rank: List[int] = field(default_factory=list)
    #: Productive compute seconds per rank (scheduled, including in-flight).
    busy_s_per_rank: List[float] = field(default_factory=list)
    #: Dead time per rank (dropout downtime etc.).
    stall_s_per_rank: List[float] = field(default_factory=list)
    #: Simulated communication seconds per rank.
    comm_s_per_rank: List[float] = field(default_factory=list)
    #: Simulated time at each epoch boundary (parallel to the metrics rows).
    epoch_time_s: List[float] = field(default_factory=list)
    #: staleness value -> number of pushes that arrived with it (async PS).
    staleness_histogram: Dict[int, int] = field(default_factory=dict)
    #: Pushes dropped for exceeding the staleness bound (async PS).
    rejected_pushes: int = 0
    #: ``(time, rank)`` event log in pop order, truncated at ``max_events``.
    events: List[Tuple[float, int]] = field(default_factory=list)
    max_events: int = 100_000
    #: Optional :class:`repro.faults.report.FaultReport` attached by the
    #: trainer when a fault model (or the dropout bridge) is active.
    fault: Optional[object] = None
    #: Optional client-participation counters attached by the trainer when a
    #: federated client population is configured (the population's
    #: ``summary()`` dict: num_clients, cohort_size, unique_clients_seen...).
    participation: Optional[Dict[str, object]] = None

    def __post_init__(self):
        if not self.steps_per_rank:
            self.steps_per_rank = [0] * self.world_size
        if not self.busy_s_per_rank:
            self.busy_s_per_rank = [0.0] * self.world_size
        if not self.stall_s_per_rank:
            self.stall_s_per_rank = [0.0] * self.world_size
        if not self.comm_s_per_rank:
            self.comm_s_per_rank = [0.0] * self.world_size

    # ------------------------------------------------------------------ #
    def record_event(self, when: float, rank: int) -> None:
        self.simulated_time_s = max(self.simulated_time_s, float(when))
        if len(self.events) < self.max_events:
            self.events.append((float(when), int(rank)))

    def record_step(self, rank: int, comm_s: float,
                    staleness: Optional[int] = None,
                    rejected: bool = False) -> None:
        self.steps_per_rank[rank] += 1
        self.comm_s_per_rank[rank] += float(comm_s)
        if staleness is not None:
            key = int(staleness)
            self.staleness_histogram[key] = self.staleness_histogram.get(key, 0) + 1
        if rejected:
            self.rejected_pushes += 1

    def record_schedule(self, rank: int, compute_s: float, stall_s: float) -> None:
        self.busy_s_per_rank[rank] += float(compute_s)
        self.stall_s_per_rank[rank] += float(stall_s)

    def record_epoch_mark(self, when: float) -> None:
        self.epoch_time_s.append(float(when))

    # ------------------------------------------------------------------ #
    @property
    def total_steps(self) -> int:
        return sum(self.steps_per_rank)

    def mean_staleness(self) -> float:
        total = sum(self.staleness_histogram.values())
        if total == 0:
            return 0.0
        weighted = sum(staleness * count
                       for staleness, count in self.staleness_histogram.items())
        return weighted / total

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "compute_model": dict(self.compute_model),
            "clock_seed": self.clock_seed,
            "world_size": self.world_size,
            "strategy": self.strategy,
            "simulated_time_s": self.simulated_time_s,
            "total_steps": self.total_steps,
            "steps_per_rank": list(self.steps_per_rank),
            "busy_s_per_rank": list(self.busy_s_per_rank),
            "stall_s_per_rank": list(self.stall_s_per_rank),
            "comm_s_per_rank": list(self.comm_s_per_rank),
            "epoch_time_s": list(self.epoch_time_s),
            "staleness_histogram": {str(k): v for k, v
                                    in sorted(self.staleness_histogram.items())},
            "mean_staleness": self.mean_staleness(),
            "rejected_pushes": self.rejected_pushes,
        }
        if self.fault is not None:
            payload["fault"] = self.fault.as_dict()
        if self.participation is not None:
            payload["participation"] = dict(self.participation)
        return payload
