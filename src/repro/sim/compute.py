"""Seeded per-rank compute-time models for the virtual clock.

Each model answers one question: *how long does rank r take to produce its
next gradient?* — as a ``(compute_s, stall_s)`` pair, where ``compute_s`` is
productive forward/backward time and ``stall_s`` is dead time (e.g. a worker
that dropped out and is waiting to rejoin).  All randomness comes from
per-rank :func:`repro.utils.rng.new_rng` generators derived from the
``clock_seed``, so timelines are reproducible and independent of the data
seed.

Determinism across checkpoint/resume relies on a replay discipline: every
call to :meth:`ComputeTimeModel.step_time` consumes a fixed number of draws
for that rank (possibly zero), and :meth:`ComputeTimeModel.restore` rebuilds
the generators and replays the recorded per-rank draw counts, leaving the
streams exactly where they were at save time.

Models are registry-backed (``COMPUTE_MODELS``) so new heterogeneity
scenarios plug in without trainer changes, and appear automatically in
``repro components``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.registry import Registry, RegistryKeyError
from repro.utils.rng import new_rng

COMPUTE_MODELS = Registry("compute-time model", expose="compute-models")


class ComputeTimeModel:
    """Base class: per-rank seeded generators + draw-count replay."""

    name = "base"

    def __init__(self):
        self.world_size = 0
        self.clock_seed = 0
        self.step_counts: List[int] = []
        self._rngs: List[np.random.Generator] = []

    # ------------------------------------------------------------------ #
    def bind(self, world_size: int, clock_seed: int) -> None:
        """Attach the model to a world; resets all generators and counters."""
        if world_size < 1:
            raise ValueError("world_size must be at least 1")
        self.world_size = int(world_size)
        self.clock_seed = int(clock_seed)
        self.step_counts = [0] * self.world_size
        self._rngs = [new_rng("sim-compute", self.name, rank, seed=self.clock_seed)
                      for rank in range(self.world_size)]

    def step_time(self, rank: int) -> Tuple[float, float]:
        """Draw the next ``(compute_s, stall_s)`` for ``rank``."""
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range (bind() first?)")
        sample = self._sample(rank)
        self.step_counts[rank] += 1
        return sample

    def restore(self, step_counts: Sequence[int]) -> None:
        """Replay ``step_counts[rank]`` draws per rank after a fresh bind."""
        if len(step_counts) != self.world_size:
            raise ValueError("step_counts length must equal world_size")
        self._rngs = [new_rng("sim-compute", self.name, rank, seed=self.clock_seed)
                      for rank in range(self.world_size)]
        for rank, count in enumerate(step_counts):
            for _ in range(int(count)):
                self._sample(rank)
        self.step_counts = [int(count) for count in step_counts]

    # ------------------------------------------------------------------ #
    def _sample(self, rank: int) -> Tuple[float, float]:
        """One draw from the rank's stream; subclasses must consume a fixed
        number of generator values per call (possibly zero)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name}


def _check_positive(value: float, label: str) -> float:
    value = float(value)
    if not value > 0:
        raise ValueError(f"{label} must be > 0, got {value}")
    return value


def _check_nonnegative(value: float, label: str) -> float:
    value = float(value)
    if value < 0:
        raise ValueError(f"{label} must be >= 0, got {value}")
    return value


@COMPUTE_MODELS.register("constant",
                         description="every rank takes exactly compute_s per step")
class ConstantComputeModel(ComputeTimeModel):
    """Homogeneous cluster: the degenerate model under which asynchronous
    strategies reduce to round-robin and lockstep accounting is exact."""

    name = "constant"

    def __init__(self, compute_s: float = 0.01):
        super().__init__()
        self.compute_s = _check_positive(compute_s, "compute_s")

    def _sample(self, rank: int) -> Tuple[float, float]:
        return self.compute_s, 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "compute_s": self.compute_s}


@COMPUTE_MODELS.register("lognormal",
                         description="i.i.d. lognormal step times (mean compute_s, shape sigma)")
class LognormalComputeModel(ComputeTimeModel):
    """Mean-preserving lognormal jitter: ``compute_s · exp(σz − σ²/2)``."""

    name = "lognormal"

    def __init__(self, compute_s: float = 0.01, sigma: float = 0.25):
        super().__init__()
        self.compute_s = _check_positive(compute_s, "compute_s")
        self.sigma = _check_nonnegative(sigma, "sigma")

    def _sample(self, rank: int) -> Tuple[float, float]:
        z = float(self._rngs[rank].standard_normal())
        return self.compute_s * float(np.exp(self.sigma * z - 0.5 * self.sigma ** 2)), 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "compute_s": self.compute_s, "sigma": self.sigma}


@COMPUTE_MODELS.register("straggler",
                         description="designated ranks run slowdown× slower, optional lognormal jitter")
class StragglerComputeModel(ComputeTimeModel):
    """Heterogeneous cluster with persistent stragglers.

    ``straggler_ranks`` (default: the last rank) take ``slowdown×`` the base
    mean; ``sigma > 0`` adds mean-preserving lognormal jitter on every rank,
    giving the "lognormal straggler" scenario from the issue.  One normal
    draw per step regardless of ``sigma`` keeps replay counts uniform.
    """

    name = "straggler"

    def __init__(self, compute_s: float = 0.01, slowdown: float = 8.0,
                 straggler_ranks: Optional[Sequence[int]] = None,
                 sigma: float = 0.0):
        super().__init__()
        self.compute_s = _check_positive(compute_s, "compute_s")
        self.slowdown = _check_positive(slowdown, "slowdown")
        self.sigma = _check_nonnegative(sigma, "sigma")
        self.straggler_ranks = None if straggler_ranks is None \
            else sorted(int(r) for r in straggler_ranks)

    def bind(self, world_size: int, clock_seed: int) -> None:
        super().bind(world_size, clock_seed)
        ranks = self.straggler_ranks if self.straggler_ranks is not None \
            else [world_size - 1]
        for rank in ranks:
            if not 0 <= rank < world_size:
                raise ValueError(f"straggler rank {rank} out of range for "
                                 f"world_size {world_size}")
        self._slow = frozenset(ranks)

    def _sample(self, rank: int) -> Tuple[float, float]:
        z = float(self._rngs[rank].standard_normal())
        jitter = float(np.exp(self.sigma * z - 0.5 * self.sigma ** 2))
        scale = self.slowdown if rank in self._slow else 1.0
        return self.compute_s * scale * jitter, 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "compute_s": self.compute_s,
                "slowdown": self.slowdown, "sigma": self.sigma,
                "straggler_ranks": self.straggler_ranks}


@COMPUTE_MODELS.register("intermittent_dropout",
                         description="ranks randomly stall for downtime_s with probability drop_prob")
class IntermittentDropoutComputeModel(ComputeTimeModel):
    """Flaky workers: before each step a rank drops out with probability
    ``drop_prob`` and sits idle for ``downtime_s`` before computing."""

    name = "intermittent_dropout"

    def __init__(self, compute_s: float = 0.01, drop_prob: float = 0.05,
                 downtime_s: float = 0.25, sigma: float = 0.0):
        super().__init__()
        self.compute_s = _check_positive(compute_s, "compute_s")
        self.drop_prob = float(drop_prob)
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.downtime_s = _check_nonnegative(downtime_s, "downtime_s")
        self.sigma = _check_nonnegative(sigma, "sigma")

    def _sample(self, rank: int) -> Tuple[float, float]:
        rng = self._rngs[rank]
        u = float(rng.uniform())
        z = float(rng.standard_normal())
        compute = self.compute_s * float(np.exp(self.sigma * z - 0.5 * self.sigma ** 2))
        stall = self.downtime_s if u < self.drop_prob else 0.0
        return compute, stall

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "compute_s": self.compute_s,
                "drop_prob": self.drop_prob, "downtime_s": self.downtime_s,
                "sigma": self.sigma}


# ---------------------------------------------------------------------- #
# spec-level helpers (mirrors how sync/config resolves registry values)
# ---------------------------------------------------------------------- #
def resolve_compute_model(value) -> Optional[ComputeTimeModel]:
    """``None`` | registry name | ``{"name": ..., **kwargs}`` | instance."""
    if value is None:
        return None
    if isinstance(value, ComputeTimeModel):
        return value
    if isinstance(value, str):
        return COMPUTE_MODELS.create(value)
    if isinstance(value, dict):
        kwargs = dict(value)
        name = kwargs.pop("name", None)
        if not isinstance(name, str):
            raise ValueError("compute_model dict requires a 'name' key")
        return COMPUTE_MODELS.create(name, **kwargs)
    raise ValueError(f"compute_model must be None, a name or a dict, "
                     f"got {type(value).__name__}")


def compute_model_problems(value) -> List[str]:
    """Validation-friendly version of :func:`resolve_compute_model`."""
    if value is None:
        return []
    try:
        resolve_compute_model(value)
    except (RegistryKeyError, ValueError, TypeError) as error:
        return [f"compute_model: {error}"]
    return []
