"""Virtual-clock simulation: deterministic event-driven training time.

See :mod:`repro.sim.clock` (the priority-queue event loop),
:mod:`repro.sim.compute` (registry-backed per-rank compute-time models),
:mod:`repro.sim.engine` (the async event loop + lockstep time accounting)
and :mod:`repro.sim.report` (the per-run :class:`SimReport`).
"""

from repro.sim.clock import VirtualClock
from repro.sim.compute import (
    COMPUTE_MODELS,
    ComputeTimeModel,
    compute_model_problems,
    resolve_compute_model,
)
from repro.sim.engine import LockstepSimulator, SimulationEngine
from repro.sim.report import SimReport

__all__ = [
    "COMPUTE_MODELS",
    "ComputeTimeModel",
    "LockstepSimulator",
    "SimReport",
    "SimulationEngine",
    "VirtualClock",
    "compute_model_problems",
    "resolve_compute_model",
]
