"""Lightweight logging configuration shared by examples and benchmarks."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_CONFIGURED = False


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger.

    The first call installs a stream handler on the ``repro`` root logger;
    subsequent calls reuse it, so libraries and scripts share one format.
    """
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _CONFIGURED = True
    logger = logging.getLogger(name)
    return logger
