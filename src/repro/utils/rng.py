"""Deterministic random-number management.

All stochastic components in the library (weight initialization, synthetic
datasets, stochastic quantization, mini-batch sampling, ...) draw from
``numpy.random.Generator`` instances produced here so that experiments are
reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

_GLOBAL_SEED = 1234


def set_global_seed(seed: int) -> None:
    """Set the process-wide default seed used by :func:`new_rng`."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)


def get_global_seed() -> int:
    """Return the process-wide default seed."""
    return _GLOBAL_SEED


def derive_seed(*components: object, base: int | None = None) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable components.

    The derivation is independent of Python's per-process hash randomization:
    it hashes the ``repr`` of each component with SHA-256.

    Parameters
    ----------
    components:
        Arbitrary values identifying the consumer (e.g. ``("worker", 3)``).
    base:
        Base seed to mix in; defaults to the global seed.
    """
    base = _GLOBAL_SEED if base is None else int(base)
    digest = hashlib.sha256()
    digest.update(str(base).encode("utf-8"))
    for component in components:
        digest.update(b"\x00")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & (2**63 - 1)


def new_rng(*components: object, seed: int | None = None) -> np.random.Generator:
    """Create a new :class:`numpy.random.Generator` keyed on ``components``.

    Two calls with the same components and seed produce identical streams.
    """
    return np.random.default_rng(derive_seed(*components, base=seed))


def replica_init_seed(experiment_seed: int, rank: int) -> int:
    """The weight-initialization seed for replica ``rank``.

    Algorithm 1 line 1: every worker starts from the *same* initial model, so
    the derivation is rank-independent — but it is centralized here so the
    trainer and any out-of-process execution backend rebuilding a rank's
    replica (e.g. :mod:`repro.backends.multiprocess` workers) share one
    definition and stay bit-identical by construction.
    """
    del rank  # identical initialization on every rank, by design
    return int(experiment_seed)


class SeedSequenceFactory:
    """Hands out per-worker, per-purpose generators for a distributed run.

    A distributed experiment needs independent but reproducible randomness on
    every simulated worker (mini-batch order, dropout masks, stochastic
    quantization).  The factory derives all of them from a single experiment
    seed.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    def for_worker(self, rank: int, purpose: str = "default") -> np.random.Generator:
        """Generator unique to ``(rank, purpose)`` under this experiment seed."""
        return new_rng("worker", int(rank), purpose, seed=self.seed)

    def for_purpose(self, purpose: str) -> np.random.Generator:
        """Generator shared by all workers for a given purpose (e.g. init)."""
        return new_rng("shared", purpose, seed=self.seed)

    def spawn(self, *components: object) -> "SeedSequenceFactory":
        """Create a child factory keyed on extra components."""
        return SeedSequenceFactory(derive_seed(*components, base=self.seed))

    def worker_seeds(self, world_size: int, purpose: str = "default") -> list[int]:
        """Seeds for every rank, useful when generators cannot be shared."""
        return [derive_seed("worker", r, purpose, base=self.seed) for r in range(world_size)]

    def permutation(self, n: int, purpose: str = "perm") -> np.ndarray:
        """A reproducible permutation of ``range(n)``."""
        return self.for_purpose(purpose).permutation(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SeedSequenceFactory(seed={self.seed})"


def interleave_seeds(seeds: Iterable[int]) -> int:
    """Combine several seeds into one (order-sensitive)."""
    combined = 0
    for i, s in enumerate(seeds):
        combined = derive_seed("interleave", i, int(s), base=combined)
    return combined
