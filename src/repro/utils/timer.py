"""Timing helpers used by the cost model and the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List


class WallClock:
    """A monotonic wall clock that can be replaced by a virtual clock in tests.

    The distributed simulator advances a *virtual* clock according to the
    analytic network model; unit tests substitute a manual clock so timing
    logic can be asserted deterministically.
    """

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(WallClock):
    """A controllable clock for deterministic tests."""

    def __init__(self, start: float = 0.0):
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance clock backwards")
        self._t += float(dt)


@dataclass
class Timer:
    """Accumulates named wall-clock durations.

    Example
    -------
    >>> t = Timer()
    >>> with t.measure("compute"):
    ...     _ = sum(range(100))
    >>> t.total("compute") >= 0.0
    True
    """

    clock: WallClock = field(default_factory=WallClock)
    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = self.clock.now()
        try:
            yield
        finally:
            self.add(name, self.clock.now() - start)

    def add(self, name: str, duration: float) -> None:
        """Record ``duration`` seconds under ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + float(duration)
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self.counts.get(name, 0)

    def mean(self, name: str) -> float:
        c = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / c if c else 0.0

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)


def timed(fn: Callable, *args, repeats: int = 1, **kwargs) -> tuple:
    """Run ``fn`` ``repeats`` times and return ``(result, best_seconds)``.

    Used by the Figure 2 benchmark to time compressor kernels the same way the
    paper measured compression compute cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def median_time(fn: Callable, *args, repeats: int = 5, **kwargs) -> float:
    """Median wall-clock time of ``fn`` over ``repeats`` runs."""
    samples: List[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn(*args, **kwargs)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]
