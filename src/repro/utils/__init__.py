"""Shared utilities: RNG management, timers, logging and serialization."""

from repro.utils.rng import SeedSequenceFactory, derive_seed, new_rng, set_global_seed
from repro.utils.timer import Timer, WallClock, timed
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json, to_jsonable

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "new_rng",
    "set_global_seed",
    "Timer",
    "WallClock",
    "timed",
    "get_logger",
    "load_json",
    "save_json",
    "to_jsonable",
]
