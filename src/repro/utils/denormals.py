"""Flush-to-zero / denormals-are-zero control for x86-64.

Subnormal (denormal) floats are handled by microcode assists on x86: any
kernel whose operands *or results* touch the subnormal range runs 10-100x
slower.  Training drives exactly those values — saturated sigmoid gates
underflow, BPTT chain products decay, softmax tails exponentiate to 1e-40 —
so a long run gradually poisons its own kernels.  PyTorch enables FTZ+DAZ
process-wide by default for the same reason; NumPy exposes no control, so
this module sets the two MXCSR bits directly with a tiny executable stub
(the same technique the ``daz`` package uses).

The mode is per-thread: enabling it on the training thread covers the
autograd kernels, while BLAS worker threads keep their own (default) mode.
The explicit flush ops in :mod:`repro.tensor.tensor` remain the portable
fallback when FTZ is unavailable (non-x86, hardened mmap) or disabled via
``REPRO_KEEP_DENORMALS=1``.
"""

from __future__ import annotations

import ctypes
import mmap
import os
import platform
from typing import Dict, Tuple

#: MXCSR bit 15 (flush-to-zero) | bit 6 (denormals-are-zero).
FTZ_DAZ_MASK = 0x8040

# stmxcsr/ldmxcsr are the only way to touch MXCSR; neither libc nor NumPy
# wraps them, so each routine below is a hand-assembled x86-64 stub:
#   sub rsp, 8 ; stmxcsr [rsp] ; <op> dword [rsp], mask ; ldmxcsr [rsp]
#   add rsp, 8 ; ret
_ENABLE_CODE = bytes([
    0x48, 0x83, 0xEC, 0x08,                    # sub  rsp, 8
    0x0F, 0xAE, 0x1C, 0x24,                    # stmxcsr [rsp]
    0x81, 0x0C, 0x24, 0x40, 0x80, 0x00, 0x00,  # or   dword [rsp], 0x8040
    0x0F, 0xAE, 0x14, 0x24,                    # ldmxcsr [rsp]
    0x48, 0x83, 0xC4, 0x08,                    # add  rsp, 8
    0xC3,                                      # ret
])
_DISABLE_CODE = bytes([
    0x48, 0x83, 0xEC, 0x08,                    # sub  rsp, 8
    0x0F, 0xAE, 0x1C, 0x24,                    # stmxcsr [rsp]
    0x81, 0x24, 0x24, 0xBF, 0x7F, 0xFF, 0xFF,  # and  dword [rsp], ~0x8040
    0x0F, 0xAE, 0x14, 0x24,                    # ldmxcsr [rsp]
    0x48, 0x83, 0xC4, 0x08,                    # add  rsp, 8
    0xC3,                                      # ret
])

# Keep the mmap buffers alive for as long as their function pointers exist.
_stubs: Dict[bytes, Tuple[ctypes.CFUNCTYPE(None), mmap.mmap]] = {}


def _stub(code: bytes) -> "ctypes.CFUNCTYPE(None)":
    entry = _stubs.get(code)
    if entry is None:
        buf = mmap.mmap(-1, len(code),
                        prot=mmap.PROT_READ | mmap.PROT_WRITE | mmap.PROT_EXEC)
        buf.write(code)
        address = ctypes.addressof(ctypes.c_char.from_buffer(buf))
        entry = (ctypes.CFUNCTYPE(None)(address), buf)
        _stubs[code] = entry
    return entry[0]


def supported() -> bool:
    """True when this build can (and may) touch MXCSR."""
    if os.environ.get("REPRO_KEEP_DENORMALS") == "1":
        return False
    return platform.machine() in ("x86_64", "AMD64")


def enable_flush_to_zero() -> bool:
    """Set FTZ+DAZ for the calling thread.  Idempotent; True on success."""
    if not supported():
        return False
    try:
        _stub(_ENABLE_CODE)()
    except (OSError, ValueError, ctypes.ArgumentError):
        # Hardened kernels may refuse writable+executable mappings; the
        # explicit flush ops in the tensor layer still bound the damage.
        return False
    return True


def disable_flush_to_zero() -> bool:
    """Clear FTZ+DAZ for the calling thread.  True on success."""
    if not supported():
        return False
    try:
        _stub(_DISABLE_CODE)()
    except (OSError, ValueError, ctypes.ArgumentError):
        return False
    return True
