"""Serialization helpers for experiment results.

Results produced by the experiment runner contain NumPy scalars/arrays and
dataclasses; ``to_jsonable`` converts them into plain Python containers so
that results can be written to JSON and compared across runs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable builtins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"cannot serialize object of type {type(obj)!r}")


def save_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON previously written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
