"""Asynchronous strategies driven by the virtual clock.

Unlike the lockstep strategies, these never see "one iteration's gradients
from every rank" — the :class:`repro.sim.engine.SimulationEngine` pops one
completion event at a time and hands the strategy *one* rank's gradient via
:meth:`AsyncStrategy.worker_step`.  The strategy performs its numerics on
the shared flat ``(P, n)`` buffers, prices its traffic through the world's
α–β :meth:`~repro.comm.inprocess.InProcessWorld.point_to_point`, and returns
an :class:`AsyncStepReport` the engine folds into the timeline/SimReport.

Two classic members of the family:

* ``async_ps`` — DOWNPOUR-style asynchronous parameter server.  Workers
  pull the server parameters, compute a gradient, and push it (through the
  rank's compressor).  The push carries a *staleness* ``τ = server_version −
  pull_version`` — how many other pushes the server absorbed since this
  worker last pulled.  Pushes with ``τ`` beyond ``staleness_bound`` are
  rejected (SSP-style bounded staleness); accepted pushes are scaled by
  ``staleness_penalty ** τ`` before the server's momentum-SGD/LARS update.
* ``easgd`` — elastic averaging.  Every worker runs *local* SGD and every
  ``period`` (τ) of its own steps does an elastic exchange with a center
  variable x̃: ``x_r ← x_r − ρ(x_r − x̃)``, ``x̃ ← x̃ + ρ(x_r − x̃)``.
  Training finalizes on the center.

Both expose ``state_arrays``/``load_state_arrays`` so checkpoints capture
server/center state, staleness counters and local-step phases, making
resumed trajectories bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compress.base import ExchangeKind
from repro.core.timeline import SyncReport
from repro.sync.base import SYNC_STRATEGIES, SyncStrategy


@dataclass
class AsyncStepReport:
    """Outcome of one worker event, priced on the simulated clock."""

    comm_time_s: float = 0.0
    compression_time_s: float = 0.0
    wire_bits: float = 0.0
    exchange: str = "async"
    staleness: Optional[int] = None
    rejected: bool = False

    def to_sync_report(self) -> SyncReport:
        return SyncReport(compression_time_s=self.compression_time_s,
                          comm_time_s=self.comm_time_s,
                          wire_bits_per_worker=self.wire_bits,
                          exchange=self.exchange)


class AsyncStrategy(SyncStrategy):
    """Shared machinery for event-driven strategies."""

    is_async = True

    def __init__(self) -> None:
        super().__init__()
        self.engine = None

    # The lockstep entry points must never be reached: the trainer routes
    # async strategies through the simulation engine.
    def exchange(self, gradients: Sequence[np.ndarray]):
        raise RuntimeError(f"async strategy {self.name!r} has no lockstep "
                           f"exchange; it runs on the simulation engine "
                           f"(repro.sim.engine)")

    def exchange_batched(self, G: np.ndarray):
        raise RuntimeError(f"async strategy {self.name!r} has no lockstep "
                           f"exchange; it runs on the simulation engine "
                           f"(repro.sim.engine)")

    def _after_bind(self) -> None:
        if self.aggregator is not None and self.aggregator.collective_op is None:
            raise ValueError(
                f"async strategy {self.name!r} applies one update at a time and "
                f"never forms the (P, n) stack a robust aggregator needs; use "
                f"the 'mean' aggregator")

    # ------------------------------------------------------------------ #
    # engine protocol
    # ------------------------------------------------------------------ #
    def async_setup(self, engine) -> None:
        """Attach to a :class:`~repro.sim.engine.SimulationEngine` once.

        Idempotent across resumed ``train()`` calls: state initialized here
        must survive ``load_state_arrays`` having run first.
        """
        self.engine = engine

    def worker_step(self, rank: int, lr: float) -> AsyncStepReport:
        """Process one completion event for ``rank``.

        The rank's fresh gradient is in ``engine.grad_matrix[rank]`` and its
        live parameters in ``engine.param_matrix[rank]``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # checkpoint protocol
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Strategy state as named arrays for the checkpoint writer."""
        return {}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_arrays`."""

    # ------------------------------------------------------------------ #
    def _p2p(self, message_bytes: float) -> float:
        """Price one point-to-point message on the world's α–β model."""
        return self.world.point_to_point(message_bytes)


@SYNC_STRATEGIES.register("async_ps", aliases=("downpour", "parameter_server"),
                          description="DOWNPOUR-style async parameter server "
                                      "with bounded-staleness pushes")
class AsyncParameterServerStrategy(AsyncStrategy):
    """Asynchronous parameter server with bounded staleness.

    The server keeps the authoritative parameter vector plus its own
    momentum buffer and applies pushes with the trainer's optimizer kernel
    (SGD or LARS) — one ``(1, n)`` fused update per push.  Workers always
    leave a step holding the latest server parameters (even when their push
    was rejected for exceeding ``staleness_bound``).
    """

    name = "async_ps"

    @classmethod
    def exchanges_gradients(cls, period: int = 1) -> bool:
        return True

    def __init__(self, staleness_bound: int = 32, staleness_penalty: float = 1.0):
        super().__init__()
        if isinstance(staleness_bound, bool) or not isinstance(staleness_bound, int) \
                or staleness_bound < 0:
            raise ValueError(f"staleness_bound must be an integer >= 0, "
                             f"got {staleness_bound!r}")
        penalty = float(staleness_penalty)
        if not 0.0 < penalty <= 1.0:
            raise ValueError(f"staleness_penalty must be in (0, 1], "
                             f"got {staleness_penalty!r}")
        self.staleness_bound = staleness_bound
        self.staleness_penalty = penalty
        # Server state (created in async_setup, overwritten by checkpoints).
        self.server_params: Optional[np.ndarray] = None
        self.server_velocity: Optional[np.ndarray] = None
        self.version: int = 0
        self.pull_versions: Optional[np.ndarray] = None
        self.staleness_histogram: Dict[int, int] = {}
        self.rejected_pushes: int = 0

    def _after_bind(self) -> None:
        super()._after_bind()
        if self.compressors and self.compressors[0].exchange is not ExchangeKind.ALLREDUCE:
            raise ValueError(
                f"async_ps pushes single-rank payloads the server must be able "
                f"to reconstruct; compressor {self.algorithm!r} uses the "
                f"allgather exchange and cannot be decompressed rank-locally")

    # ------------------------------------------------------------------ #
    def async_setup(self, engine) -> None:
        super().async_setup(engine)
        if self.server_params is None:
            # All replicas start identical; adopt rank 0's vector as the server.
            self.server_params = engine.param_matrix[0].copy()
            self.server_velocity = np.zeros_like(self.server_params)
            self.pull_versions = np.zeros(self.world.world_size, dtype=np.int64)
        self._scratch = np.empty((1, self.server_params.size), dtype=np.float32)

    def worker_step(self, rank: int, lr: float) -> AsyncStepReport:
        engine = self.engine
        n = self.server_params.size
        gradient = engine.grad_matrix[rank]
        if self.corruption is not None:
            self.corruption.apply_vector(rank, gradient)

        # Push: the worker ships its compressed gradient; the server rebuilds
        # it with the rank's own decompressor (allreduce-kind payloads are
        # rank-locally reconstructible, and error feedback stays per rank).
        compressor = self.compressors[rank]
        start = time.perf_counter()
        payload, ctx = compressor.compress(gradient)
        decoded = compressor.decompress(payload, ctx)
        kernel_time = time.perf_counter() - start
        push_bits = compressor.wire_bits(n)

        # A push lost in transit (message-loss fault) never reaches the
        # server: no staleness bookkeeping, no version bump — the gradient
        # is simply gone.  The worker still pulls fresh parameters below.
        push_dropped = getattr(engine, "push_dropped", None)
        if push_dropped is not None and push_dropped(rank):
            engine.param_matrix[rank, :] = self.server_params
            self.pull_versions[rank] = self.version
            comm_time = self._p2p(push_bits / 8.0) + self._p2p(4.0 * n)
            return AsyncStepReport(comm_time_s=comm_time,
                                   compression_time_s=kernel_time,
                                   wire_bits=push_bits + 32.0 * n,
                                   exchange="ps_push_lost")

        staleness = int(self.version - int(self.pull_versions[rank]))
        self.staleness_histogram[staleness] = \
            self.staleness_histogram.get(staleness, 0) + 1
        rejected = staleness > self.staleness_bound
        if rejected:
            self.rejected_pushes += 1
        else:
            scale = self.staleness_penalty ** staleness
            update = decoded if scale == 1.0 \
                else np.asarray(decoded, dtype=np.float32) * np.float32(scale)
            engine.flat_update(self.server_params.reshape(1, n),
                               np.asarray(update, dtype=np.float32).reshape(1, n),
                               lr,
                               velocity=self.server_velocity.reshape(1, n),
                               scratch=self._scratch)
            self.version += 1

        # Pull: the worker leaves with the latest server parameters.
        engine.param_matrix[rank, :] = self.server_params
        self.pull_versions[rank] = self.version

        comm_time = self._p2p(push_bits / 8.0) + self._p2p(4.0 * n)
        return AsyncStepReport(comm_time_s=comm_time,
                               compression_time_s=kernel_time,
                               wire_bits=push_bits + 32.0 * n,
                               exchange="ps_push_pull",
                               staleness=staleness,
                               rejected=rejected)

    # ------------------------------------------------------------------ #
    def consensus_vector(self) -> Optional[np.ndarray]:
        return None if self.server_params is None else self.server_params

    def catch_up(self, rank: int) -> Optional[np.ndarray]:
        """A rejoining worker gets a fresh pull: the authoritative server
        parameters, with its pull version advanced so the first push after
        rejoin carries zero staleness."""
        if self.server_params is None:
            return super().catch_up(rank)
        self.pull_versions[rank] = self.version
        return self.server_params.copy()

    def finalize(self, parameter_vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        if self.server_params is None:
            return super().finalize(parameter_vectors)
        return [self.server_params.copy() for _ in parameter_vectors]

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        # Per worker step: one compressed push up, one dense pull down.
        return self.compressors[0].wire_bits(n) + 32.0 * n

    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        if self.server_params is None:
            return {}
        keys = np.array(sorted(self.staleness_histogram), dtype=np.int64)
        counts = np.array([self.staleness_histogram[int(k)] for k in keys],
                          dtype=np.int64)
        return {
            "server_params": self.server_params.copy(),
            "server_velocity": self.server_velocity.copy(),
            "version": np.array([self.version], dtype=np.int64),
            "pull_versions": self.pull_versions.copy(),
            "staleness_keys": keys,
            "staleness_counts": counts,
            "rejected_pushes": np.array([self.rejected_pushes], dtype=np.int64),
        }

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self.server_params = np.asarray(arrays["server_params"],
                                        dtype=np.float32).copy()
        self.server_velocity = np.asarray(arrays["server_velocity"],
                                          dtype=np.float32).copy()
        self.version = int(arrays["version"][0])
        self.pull_versions = np.asarray(arrays["pull_versions"],
                                        dtype=np.int64).copy()
        self.staleness_histogram = {
            int(k): int(c) for k, c in zip(arrays["staleness_keys"],
                                           arrays["staleness_counts"])}
        self.rejected_pushes = int(arrays["rejected_pushes"][0])
        self._scratch = np.empty((1, self.server_params.size), dtype=np.float32)


@SYNC_STRATEGIES.register("easgd", aliases=("elastic_averaging",),
                          description="elastic averaging: local SGD with "
                                      "periodic elastic pull toward a center "
                                      "variable")
class ElasticAveragingStrategy(AsyncStrategy):
    """EASGD: local steps with an elastic link to a center variable.

    ``period`` (the sync section's τ knob) is the number of *local* steps
    between elastic exchanges; ``moving_rate`` is ρ.  The center is the
    consensus model used for evaluation and finalization.
    """

    name = "easgd"
    uses_period = True

    def __init__(self, moving_rate: float = 0.5):
        super().__init__()
        rho = float(moving_rate)
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"moving_rate must be in (0, 1], got {moving_rate!r}")
        self.moving_rate = rho
        self.center: Optional[np.ndarray] = None
        self.local_steps: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def async_setup(self, engine) -> None:
        super().async_setup(engine)
        if self.center is None:
            self.center = engine.param_matrix[0].copy()
            self.local_steps = np.zeros(self.world.world_size, dtype=np.int64)

    def worker_step(self, rank: int, lr: float) -> AsyncStepReport:
        engine = self.engine
        if self.corruption is not None:
            self.corruption.apply_vector(rank, engine.grad_matrix[rank])
        engine.apply_local_step(rank, lr)
        self.local_steps[rank] += 1
        if self.local_steps[rank] % self.period != 0:
            return AsyncStepReport(exchange="local")

        # An elastic exchange whose upload is lost (message-loss fault)
        # leaves both the worker and the center untouched: the round trip
        # never completed.  The attempted upload is still priced.
        n = self.center.size
        push_dropped = getattr(engine, "push_dropped", None)
        if push_dropped is not None and push_dropped(rank):
            return AsyncStepReport(comm_time_s=self._p2p(4.0 * n),
                                   wire_bits=32.0 * n,
                                   exchange="elastic_lost")

        # Elastic exchange with the center.  A Byzantine rank lies to the
        # center (staged corrupted copy) but keeps its own row honest.
        x = engine.param_matrix[rank]
        staged = x
        if self.corruption is not None and rank in self.corruption.ranks:
            staged = self.corruption.staged([x])[0]
        rho = np.float32(self.moving_rate)
        diff = x - self.center
        center_diff = diff if staged is x else staged - self.center
        np.subtract(x, rho * diff, out=x)
        self.center += rho * center_diff
        comm_time = self._p2p(4.0 * n) + self._p2p(4.0 * n)
        return AsyncStepReport(comm_time_s=comm_time,
                               wire_bits=64.0 * n,
                               exchange="elastic")

    # ------------------------------------------------------------------ #
    def consensus_vector(self) -> Optional[np.ndarray]:
        return None if self.center is None else self.center

    def catch_up(self, rank: int) -> Optional[np.ndarray]:
        """A rejoining worker adopts the center and restarts its local-step
        phase, exactly like a worker that just joined the run."""
        if self.center is None:
            return super().catch_up(rank)
        self.local_steps[rank] = 0
        return self.center.copy()

    def finalize(self, parameter_vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        if self.center is None:
            return super().finalize(parameter_vectors)
        return [self.center.copy() for _ in parameter_vectors]

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        # One dense round trip every `period` local steps, amortized.
        return 64.0 * n / max(1, self.period)

    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        if self.center is None:
            return {}
        return {"center": self.center.copy(),
                "local_steps": self.local_steps.copy()}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self.center = np.asarray(arrays["center"], dtype=np.float32).copy()
        self.local_steps = np.asarray(arrays["local_steps"], dtype=np.int64).copy()
