"""The SyncStrategy protocol: *when and what* ranks exchange.

The paper's Algorithm 1 is one point in a large design space — synchronous
gradient allreduce with mean aggregation.  A :class:`SyncStrategy` makes
that point swappable: the trainer asks the strategy to synchronize each
iteration's gradients (:meth:`~SyncStrategy.exchange` /
:meth:`~SyncStrategy.exchange_batched`), offers it a post-optimizer-step
hook for parameter exchanges (:meth:`~SyncStrategy.post_step`), and lets it
perform the final replica consolidation (:meth:`~SyncStrategy.finalize`).
Strategies compose with an :class:`~repro.sync.aggregators.Aggregator`
(*how* payloads combine) and, for gossip, a
:class:`~repro.comm.topology.CommTopology` (*who* talks to whom).

Both trainer paths route through the same strategy instance: the fused
``(P, n)`` batched path calls ``exchange_batched`` and hands ``post_step``
the rows of the flat parameter matrix, while the seed per-rank loop calls
``exchange`` with a list of gradient vectors.  The default
``allreduce`` strategy with the ``mean`` aggregator reproduces the
pre-redesign :class:`~repro.core.synchronizer.GradientSynchronizer`
bit for bit on both paths.

Byzantine scenarios plug in through :class:`GradientCorruption`: the
corruption poisons whatever the strategy puts on the wire — gradient-phase
strategies flip (or scale) the selected ranks' local gradients before any
compression or exchange, while parameter-phase strategies (local SGD with
H > 1, gossip) corrupt the *staged parameter payload* so the poison reaches
neighbours through the aggregator, never through the rank's own local
update.  Robust aggregators bound the damage; the plain mean does not.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.inprocess import InProcessWorld
from repro.comm.topology import CommTopology
from repro.compress.base import Compressor
from repro.compress.param_delta import ParameterDeltaCodec
from repro.core.timeline import SyncReport
from repro.registry import Registry
from repro.sync.aggregators import Aggregator

#: Registry of synchronization strategies constructible by name (spec / CLI).
SYNC_STRATEGIES = Registry("sync strategy", expose="sync-strategies")

#: Corruption kinds understood by :class:`GradientCorruption`.
CORRUPTION_KINDS = ("sign_flip", "scale")


def validate_compressors(world: InProcessWorld, compressors: Sequence[Compressor]) -> None:
    """Shared rank/compressor sanity checks (same messages as the seed)."""
    if len(compressors) != world.world_size:
        raise ValueError(f"need one compressor per rank: "
                         f"{len(compressors)} given for world size {world.world_size}")
    kinds = {type(c) for c in compressors}
    if len(kinds) != 1:
        raise ValueError("all ranks must use the same compression algorithm")
    if len(set(map(id, compressors))) != len(compressors):
        raise ValueError("compressor instances must not be shared across ranks")


class GradientCorruption:
    """Byzantine corruption of selected ranks' wire contributions.

    ``sign_flip`` negates the rank's payload (a worker pushing training
    backwards); ``scale`` multiplies it by ``scale`` (a worker shouting
    ``scale`` times louder than everyone else).  Corruption happens before
    compression/exchange, so it poisons whatever the strategy puts on the
    wire — exactly the threat model robust aggregators defend against.
    Gradient-phase strategies corrupt the local gradients in place
    (:meth:`apply_list` / :meth:`apply_rows`, the seed semantics);
    parameter-phase strategies corrupt *staged copies* of the parameter
    payloads (:meth:`staged`) so a Byzantine rank's poison travels to its
    neighbours without rewriting the rank's own local state.
    """

    def __init__(self, ranks: Sequence[int], kind: str = "sign_flip",
                 scale: float = 10.0):
        if kind not in CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind {kind!r}; "
                             f"expected one of {list(CORRUPTION_KINDS)}")
        self.ranks: Tuple[int, ...] = tuple(sorted({int(r) for r in ranks}))
        if any(r < 0 for r in self.ranks):
            raise ValueError(f"corrupt_ranks must be non-negative, got {list(self.ranks)}")
        self.kind = kind
        self.scale = float(scale)

    def validate_world(self, world_size: int) -> None:
        out_of_range = [r for r in self.ranks if r >= world_size]
        if out_of_range:
            raise ValueError(f"corrupt_ranks {out_of_range} out of range for "
                             f"world size {world_size}")

    def _factor(self) -> float:
        return -1.0 if self.kind == "sign_flip" else self.scale

    def apply_rows(self, G: np.ndarray) -> np.ndarray:
        """Corrupt the selected rows of a stacked ``(P, n)`` matrix in place."""
        factor = G.dtype.type(self._factor())
        for rank in self.ranks:
            np.multiply(G[rank], factor, out=G[rank])
        return G

    def apply_vector(self, rank: int, vector: np.ndarray) -> np.ndarray:
        """Corrupt one rank's vector in place (no-op for honest ranks).

        Event-driven strategies process one rank per event, so they corrupt
        per-vector instead of per-stacked-matrix.
        """
        if rank in self.ranks:
            np.multiply(vector, vector.dtype.type(self._factor()), out=vector)
        return vector

    def apply_list(self, gradients: Sequence[np.ndarray]) -> Sequence[np.ndarray]:
        """Corrupt the selected per-rank vectors in place."""
        for rank in self.ranks:
            g = gradients[rank]
            np.multiply(g, g.dtype.type(self._factor()), out=g)
        return gradients

    def staged(self, vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Corrupted *copies* of the selected ranks' vectors, rest untouched.

        Used by the parameter phase: the returned list is what goes on the
        wire, while the caller's vectors (the ranks' live parameters) stay
        clean — a Byzantine worker lies to the network, it does not corrupt
        its own optimizer state.
        """
        staged = list(vectors)
        for rank in self.ranks:
            vector = np.asarray(staged[rank])
            staged[rank] = vector * vector.dtype.type(self._factor())
        return staged

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GradientCorruption(ranks={list(self.ranks)}, kind={self.kind!r}, "
                f"scale={self.scale})")


def merge_reports(gradient: SyncReport, parameter: Optional[SyncReport]) -> SyncReport:
    """Fold a parameter-exchange report into the iteration's gradient report."""
    if parameter is None:
        return gradient
    return SyncReport(
        compression_time_s=gradient.compression_time_s + parameter.compression_time_s,
        comm_time_s=gradient.comm_time_s + parameter.comm_time_s,
        wire_bits_per_worker=gradient.wire_bits_per_worker + parameter.wire_bits_per_worker,
        exchange=f"{gradient.exchange}+{parameter.exchange}",
        aggregation_time_s=gradient.aggregation_time_s + parameter.aggregation_time_s,
    )


class SyncStrategy:
    """Base class for synchronization strategies.

    A strategy is constructed bare (so registries can ``create`` it by name)
    and then :meth:`bind`-ed once to a world, the per-rank compressors, an
    aggregator and optional topology/period/corruption.  Subclasses override
    the exchange/post-step/finalize hooks; every hook has a sensible
    pass-through default so a minimal custom strategy only implements what
    it changes.
    """

    name: str = "base"
    #: Whether :meth:`bind` requires a communication topology.
    needs_topology: bool = False
    #: Whether the strategy can *optionally* use a topology: ``bind`` accepts
    #: one but runs fine without (fedavg prices its averaging over a
    #: hierarchical tree when given one, flat otherwise).
    optional_topology: bool = False
    #: Whether the strategy reads the local-SGD ``period`` knob.
    uses_period: bool = False
    #: Whether the strategy is event-driven: the trainer then routes training
    #: through the virtual-clock :class:`repro.sim.engine.SimulationEngine`
    #: (which calls ``worker_step`` per completion event) instead of the
    #: lockstep ``exchange`` loops.  See :mod:`repro.sync.async_strategies`.
    is_async: bool = False

    @classmethod
    def exchanges_gradients(cls, period: int = 1) -> bool:
        """Whether this strategy puts *gradients* on the wire.

        Consulted by :meth:`SyncSpec.problems` for the aggregator ×
        compressor compatibility check, so registered third-party
        strategies carry their own capability instead of validation
        hardcoding names.  The lenient default (False) means a custom
        strategy is never rejected at validate time for a combination its
        own :meth:`bind` would accept.
        """
        return False

    @classmethod
    def exchanges_parameters(cls, period: int = 1) -> bool:
        """Whether this strategy puts *parameter* payloads on the wire.

        Consulted by :meth:`SyncSpec.problems` and :meth:`bind` to decide
        whether ``parameter_compression`` applies: only parameter-phase
        strategies (local SGD with H > 1, gossip) stage parameter payloads
        a :class:`~repro.compress.param_delta.ParameterDeltaCodec` can
        compress.  Custom strategies that implement :meth:`post_step`
        opt in by overriding this.
        """
        return False

    def __init__(self) -> None:
        self.world: Optional[InProcessWorld] = None
        self.compressors: List[Compressor] = []
        self.aggregator: Optional[Aggregator] = None
        self.topology: Optional[CommTopology] = None
        self.period: int = 1
        self.corruption: Optional[GradientCorruption] = None
        #: Delta codec for the parameter phase, or None for dense float32
        #: parameter payloads (the pre-compression behaviour, bit for bit).
        self.parameter_codec: Optional[ParameterDeltaCodec] = None
        #: Number of completed gradient exchanges (one per iteration).
        self._step: int = 0

    # ------------------------------------------------------------------ #
    # binding
    # ------------------------------------------------------------------ #
    def bind(self, world: InProcessWorld, compressors: Sequence[Compressor],
             aggregator: Aggregator, *, topology: Optional[CommTopology] = None,
             period: int = 1, corruption: Optional[GradientCorruption] = None,
             parameter_compressors: Optional[Sequence[Compressor]] = None
             ) -> "SyncStrategy":
        """Attach the strategy to a world; returns ``self`` for chaining.

        ``parameter_compressors`` (one instance per rank, never shared with
        the gradient-phase ``compressors``) enables compressed parameter
        exchange: the strategy's parameter phase then ships compressed
        deltas against per-rank references instead of dense float32 vectors.
        Only parameter-phase strategies accept it.
        """
        validate_compressors(world, compressors)
        if period < 1:
            raise ValueError(f"sync period must be >= 1, got {period}")
        if self.needs_topology and topology is None:
            raise ValueError(f"sync strategy {self.name!r} requires a topology "
                             f"(e.g. ring, star, fully_connected)")
        if topology is not None:
            topology.validate(world.world_size)
        if corruption is not None:
            corruption.validate_world(world.world_size)
        if parameter_compressors is not None:
            if not type(self).exchanges_parameters(period):
                raise ValueError(
                    f"sync strategy {self.name!r} never exchanges parameters "
                    f"(with period={period}); parameter compression only applies "
                    f"to parameter-phase strategies (local_sgd with period > 1, "
                    f"gossip)")
            validate_compressors(world, parameter_compressors)
        self.world = world
        self.compressors = list(compressors)
        self.aggregator = aggregator
        self.topology = topology
        self.period = int(period)
        self.corruption = corruption
        self.parameter_codec = (ParameterDeltaCodec(parameter_compressors)
                                if parameter_compressors is not None else None)
        self._step = 0
        self._after_bind()
        return self

    def _after_bind(self) -> None:
        """Subclass hook for extra bind-time validation."""

    @property
    def algorithm(self) -> str:
        """Registry name of the bound compression algorithm."""
        return self.compressors[0].name

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        """Analytic average bits per worker per iteration under this strategy.

        The compressor's Table-2 figure only describes the *gradient*
        exchange; strategies that exchange parameters instead (local SGD,
        gossip) report their own — amortized — traffic so sweeps comparing
        synchronization setups do not show the compressor's constant.  The
        base default (0.0) matches a strategy that exchanges nothing.
        """
        return 0.0

    @property
    def syncs_parameters(self) -> bool:
        """Whether :meth:`post_step` may *ever* exchange parameters.

        Static capability metadata (delegates to the class-level
        :meth:`exchanges_parameters` with the bound period); the
        per-iteration gate the trainer consults is :meth:`post_step_pending`.
        """
        return type(self).exchanges_parameters(self.period)

    # ------------------------------------------------------------------ #
    # gradient phase (Algorithm 1 lines 3-6, or a strategy's replacement)
    # ------------------------------------------------------------------ #
    def exchange(self, gradients: Sequence[np.ndarray]
                 ) -> Tuple[List[np.ndarray], SyncReport]:
        """Synchronize one iteration's per-rank gradient vectors (seed path)."""
        raise NotImplementedError

    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        """Synchronize one iteration's stacked ``(P, n)`` matrix (fused path)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # parameter phase (after the optimizer step)
    # ------------------------------------------------------------------ #
    def post_step_pending(self) -> bool:
        """Whether the iteration just exchanged will also sync parameters.

        Queried by the trainer *after* the gradient exchange and *before*
        materializing flat parameter vectors, so strategies whose current
        iteration is a pure local step (local SGD between sync points, or
        any gradient-only strategy) cost the seed path nothing.
        """
        return False

    def post_step(self, param_rows: Sequence[np.ndarray]) -> Optional[SyncReport]:
        """Optionally exchange parameters after the optimizer step.

        ``param_rows[p]`` is rank ``p``'s flat parameter vector; the fused
        path passes live views of the ``(P, n)`` parameter matrix and the
        seed path passes copies it writes back afterwards.  Mutate the rows
        in place and return a report, or return None when this iteration
        has no parameter exchange.
        """
        return None

    # ------------------------------------------------------------------ #
    # final consolidation (Algorithm 1 lines 9-10)
    # ------------------------------------------------------------------ #
    def finalize(self, parameter_vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """One dense parameter consolidation at the end of training.

        The default — one global aggregation through the bound aggregator —
        is what every built-in strategy wants; override for a strategy with
        different end-of-training semantics.
        """
        return self._aggregate_global(list(parameter_vectors))[0]

    # ------------------------------------------------------------------ #
    # evaluation support
    # ------------------------------------------------------------------ #
    def consensus_vector(self) -> Optional[np.ndarray]:
        """The strategy's own notion of the consensus model, if it has one.

        ``None`` (the default) means "average the replicas" — the seed
        semantics.  A parameter server returns its server parameters, EASGD
        its center variable; the trainer consults this before evaluating.
        """
        return None

    # ------------------------------------------------------------------ #
    # fault tolerance
    # ------------------------------------------------------------------ #
    def _active_membership(self):
        """The world's live membership when degraded, else ``None``.

        ``None`` — no mask installed, or every rank alive — keeps the
        strategy on the exact pre-fault code path (bit-compat guarantee).
        Strategies only ever *consult* membership; the fault injector owns
        the transitions.
        """
        world = self.world
        membership = getattr(world, "membership", None) if world is not None else None
        if membership is None or membership.all_alive:
            return None
        return membership

    def catch_up(self, rank: int) -> Optional[np.ndarray]:
        """Dense state to serve a rejoining rank (rejoin catch-up).

        ``None`` (the default, via :meth:`consensus_vector`) tells the
        caller to fall back to the survivors' mean.  Strategies with their
        own consensus state override this to also refresh the rank's
        protocol state — a parameter server serves a fresh pull, EASGD
        re-centers the worker.
        """
        return self.consensus_vector()

    # ------------------------------------------------------------------ #
    # resume support
    # ------------------------------------------------------------------ #
    def restore(self, global_iteration: int) -> None:
        """Align the strategy's schedule with a restored iteration count.

        Called by :func:`repro.core.checkpoint.load_checkpoint` so periodic
        schedules (local-SGD's every-H sync) resume in phase.  The base
        implementation sets the exchange counter; strategies with extra
        schedule state override and call ``super().restore(...)``.
        """
        self._step = int(global_iteration)

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _passthrough_report(self) -> SyncReport:
        """Report for an iteration that touched no wire."""
        return SyncReport(compression_time_s=0.0, comm_time_s=0.0,
                          wire_bits_per_worker=0.0, exchange="local")

    def _validated_gradient_count(self, gradients: Sequence[np.ndarray]) -> int:
        """Validate the per-rank gradient list; returns the common length.

        Runs *before* the strategy advances its step counter: a rejected
        call must leave the step phase untouched, or every subsequent
        ``post_step_pending`` / period computation would be off by one.
        """
        if len(gradients) != self.world.world_size:
            raise ValueError("one gradient per rank is required")
        n = int(np.asarray(gradients[0]).size)
        for g in gradients:
            if np.asarray(g).size != n:
                raise ValueError("all ranks must contribute gradients of equal length")
        return n

    def _validated_gradient_matrix(self, G: np.ndarray) -> np.ndarray:
        """Validate the stacked ``(P, n)`` matrix before the step advances."""
        M = np.asarray(G)
        if M.ndim != 2 or M.shape[0] != self.world.world_size:
            raise ValueError(f"expected a ({self.world.world_size}, n) gradient matrix, "
                             f"got shape {M.shape}")
        return M

    def _staged_parameter_payloads(self, rows: Sequence[np.ndarray]
                                   ) -> List[np.ndarray]:
        """What each rank stages on the wire for a parameter exchange.

        Byzantine ranks stage corrupted *copies*: the poison reaches the
        aggregator (and through it the neighbours), while the rank's live
        parameter row — which the caller keeps — stays clean.
        """
        vectors = list(rows)
        if self.corruption is not None:
            vectors = self.corruption.staged(vectors)
        return vectors

    def _parameter_payload_bits(self, n: int) -> float:
        """Analytic bits of one rank's parameter payload (codec-aware)."""
        if self.parameter_codec is not None:
            return self.parameter_codec.wire_bits(n)
        return 32.0 * n

    def _exchange_parameters_compressed(self, param_rows: Sequence[np.ndarray]
                                        ) -> SyncReport:
        """Globally aggregate parameters through the delta codec.

        Every rank's staged payload is its compressed delta; the payloads
        are allgathered (compressed payloads are not elementwise-reducible,
        so even the ``mean`` aggregator combines off-wire), the per-rank
        estimates are rebuilt as ``ref + decompress(delta)``, combined once
        by the aggregator (the combine is rank-invariant), and every rank's
        row is set to the combined result.  References then advance to the
        estimates, keeping senders and receivers in lockstep.
        """
        codec = self.parameter_codec
        membership = self._active_membership()
        staged = self._staged_parameter_payloads(param_rows)
        start = time.perf_counter()
        if membership is None:
            payloads, estimates, wire_bits = codec.encode(staged)
            alive = None
        else:
            # Only survivors compress/transmit: dead ranks' compressor
            # residuals and references stay frozen until their rejoin
            # re-sync resets them (codec.resync_rank).
            alive = membership.alive_ranks()
            sub_payloads, estimates, wire_bits = codec.encode(
                [staged[r] for r in alive], ranks=alive)
            payloads = [None] * len(staged)
            for i, r in enumerate(alive):
                payloads[r] = sub_payloads[i]
        kernel_time = time.perf_counter() - start
        comm_before = self.world.simulated_comm_time
        self.world.allgather(payloads, logical_bytes=wire_bits / 8.0)
        comm_time = self.world.simulated_comm_time - comm_before
        start = time.perf_counter()
        combined = self.aggregator.combine(estimates)
        if alive is None:
            codec.advance(estimates)
            for row in param_rows:
                row[...] = combined
        else:
            codec.advance(estimates, ranks=alive)
            for r in alive:
                param_rows[r][...] = combined
        kernel_time += time.perf_counter() - start
        aggregation_time = self.aggregator.combine_time_s(
            estimates.shape[0], estimates.shape[1])
        return SyncReport(
            compression_time_s=float(kernel_time) / self.world.world_size,
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange="compressed_parameter_allgather",
            aggregation_time_s=float(aggregation_time))

    def _aggregate_global(self, vectors: List[np.ndarray]
                          ) -> Tuple[List[np.ndarray], SyncReport]:
        """Dense parameter aggregation across all ranks via the aggregator.

        Elementwise aggregators run as a true collective (for ``mean`` this
        is bitwise the seed's dense model average); robust aggregators
        allgather the vectors and combine them once.  Under a degraded
        membership the collectives subset to the survivors, so the mean —
        and a trimmed mean's ``floor(trim_ratio · P)`` — renormalize over
        the alive count; dead ranks get their own vector back.
        """
        membership = self._active_membership()
        if membership is not None and membership.num_alive == 0:
            # Permanent all-crash: the run ended with no survivors, so the
            # final consolidation has no participants — every rank keeps
            # its own parameters instead of deadlocking a collective.
            return list(vectors), self._passthrough_report()
        nbytes = float(np.asarray(vectors[0]).nbytes)
        comm_before = self.world.simulated_comm_time
        aggregation_time = 0.0
        op = self.aggregator.collective_op
        if op is not None:
            results = self.world.allreduce(vectors, op, logical_bytes=nbytes)
            wire_exchange = "parameter_allreduce"
        else:
            gathered = self.world.allgather(vectors, logical_bytes=nbytes)
            source = gathered[0] if membership is None \
                else gathered[membership.alive_ranks()[0]]
            stacked = np.stack(source)
            combined = self.aggregator.combine(stacked)
            aggregation_time = self.aggregator.combine_time_s(
                stacked.shape[0], stacked.shape[1])
            if membership is None:
                results = [combined.copy() for _ in range(self.world.world_size)]
            else:
                results = [combined.copy() if membership.is_alive(r) else vectors[r]
                           for r in range(self.world.world_size)]
            wire_exchange = "parameter_allgather"
        comm_time = self.world.simulated_comm_time - comm_before
        report = SyncReport(compression_time_s=0.0, comm_time_s=float(comm_time),
                            wire_bits_per_worker=8.0 * nbytes,
                            exchange=wire_exchange,
                            aggregation_time_s=float(aggregation_time))
        return results, report

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        bound = self.world is not None and f"P={self.world.world_size}" or "unbound"
        return f"{type(self).__name__}({bound})"
