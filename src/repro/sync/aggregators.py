"""Aggregators: how per-rank payloads combine into one update.

The paper's Algorithm 1 hard-wires *mean* aggregation — the collective
averages the payloads on the wire.  Byzantine-robust training (blades,
Krum/AutoGM-style systems) shows that swapping only this combine step turns
the same trainer into a different system: a trimmed mean or a (geometric)
median tolerates a bounded number of corrupted workers that would drag a
mean arbitrarily far.

An :class:`Aggregator` combines a stacked ``(P, m)`` matrix of per-rank
vectors into one ``(m,)`` vector.  The synchronization strategies apply it
to whatever travels on the wire:

* the ``allreduce`` strategy aggregates compressed *payloads* (for A2SGD
  that is the ``(µ₊, µ₋)`` pairs; for Dense the full gradients);
* ``local_sgd`` and ``gossip`` aggregate *parameter vectors*.

:attr:`Aggregator.collective_op` is the exchange-kind negotiation hook: an
aggregator that *is* an elementwise reduction advertises the matching
:class:`~repro.comm.backend.CollectiveOp` so strategies can run a true
allreduce (bit-identical to the seed trainer for ``mean``).  Robust
aggregators return ``None`` — they need every rank's payload, so strategies
fall back to an allgather before combining.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.comm.backend import CollectiveOp
from repro.registry import Registry

#: Registry of aggregators constructible by name (spec / CLI).
AGGREGATORS = Registry("aggregator", expose="aggregators")


class Aggregator:
    """Combine per-rank vectors (rows of ``X``) into one vector."""

    name: str = "base"
    #: True when the combine tolerates a minority of corrupted rows.
    robust: bool = False
    #: The elementwise reduction this aggregator is equivalent to, or None
    #: when it needs the full set of rows (forces an allgather exchange).
    collective_op: Optional[CollectiveOp] = None
    #: Modeled throughput of the off-wire combine work (elements/second),
    #: the compute-side analogue of the α–β network constants.  Shared by
    #: every aggregator so priced times differ only by algorithmic cost.
    AGGREGATION_ELEMENTS_PER_SECOND: float = 2.5e9

    def combine(self, X: np.ndarray) -> np.ndarray:
        """Reduce a ``(P, m)`` stack of per-rank vectors to one ``(m,)`` vector."""
        raise NotImplementedError

    def combine_time_s(self, world_size: int, m: float,
                       iterations: Optional[int] = None) -> float:
        """Modeled seconds for one off-wire :meth:`combine` of ``(P, m)``.

        The base cost is the one-pass reduction ``P·m / rate``; robust
        aggregators override with their sort/iteration terms.  Strategies
        charge this only when the combine actually runs off-wire — an
        elementwise aggregator riding a true allreduce is priced by the α–β
        collective model instead.
        """
        return world_size * float(m) / self.AGGREGATION_ELEMENTS_PER_SECOND

    @staticmethod
    def _as_matrix(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValueError(f"aggregators combine a (P, m) matrix of per-rank "
                             f"vectors, got shape {X.shape}")
        if X.shape[0] < 1:
            raise ValueError("cannot aggregate zero contributions")
        return X

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


@AGGREGATORS.register("mean", aliases=("average",),
                      description="elementwise mean (the paper's aggregation)")
class MeanAggregator(Aggregator):
    """Elementwise mean — Algorithm 1's aggregation, allreduce-friendly."""

    name = "mean"
    collective_op = CollectiveOp.MEAN

    def combine(self, X: np.ndarray) -> np.ndarray:
        return self._as_matrix(X).mean(axis=0)


@AGGREGATORS.register("trimmed_mean",
                      description="mean after dropping the k most extreme ranks "
                                  "per coordinate")
class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean.

    Per coordinate, the ``k = floor(trim_ratio * P)`` smallest and largest
    contributions are dropped and the rest averaged.  Tolerates up to ``k``
    arbitrarily-corrupted ranks.  ``trim_ratio`` below ``1/P`` (so ``k = 0``)
    degenerates to the plain mean.
    """

    name = "trimmed_mean"
    robust = True

    def __init__(self, trim_ratio: float = 0.25):
        if not 0.0 <= trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5): trimming half or "
                             "more of the ranks per side leaves nothing to average")
        self.trim_ratio = float(trim_ratio)

    def combine(self, X: np.ndarray) -> np.ndarray:
        X = self._as_matrix(X)
        P = X.shape[0]
        k = self.trim_count(P)
        if k == 0:
            return X.mean(axis=0)
        ordered = np.sort(X, axis=0)
        return ordered[k:P - k].mean(axis=0)

    def combine_time_s(self, world_size: int, m: float,
                       iterations: Optional[int] = None) -> float:
        """Gather pass plus the per-coordinate sort: ``P·m·(1 + log₂P) / rate``."""
        sort_factor = math.log2(max(world_size, 2))
        return (world_size * float(m) * (1.0 + sort_factor)
                / self.AGGREGATION_ELEMENTS_PER_SECOND)

    def trim_count(self, P: int) -> int:
        """``floor(trim_ratio * P)`` computed robustly.

        ``int(self.trim_ratio * P)`` truncates the *binary float* product,
        which can land one below the documented floor of the decimal ratio
        (e.g. ``0.3 * 10 == 2.999…96`` truncates to 2, not 3).  Nudging the
        product by one part in 2⁴⁰ before flooring absorbs that
        representation error; the clamp keeps ``2k < P`` even if a ratio
        epsilon-close to 0.5 rounds up.
        """
        k = int(math.floor(self.trim_ratio * P * (1.0 + 2.0 ** -40)))
        return min(k, (P - 1) // 2)


@AGGREGATORS.register("coordinate_median", aliases=("median",),
                      description="elementwise median across ranks")
class CoordinateMedianAggregator(Aggregator):
    """Coordinate-wise median — robust to just under half the ranks."""

    name = "coordinate_median"
    robust = True

    def combine(self, X: np.ndarray) -> np.ndarray:
        X = self._as_matrix(X)
        return np.median(X, axis=0).astype(X.dtype, copy=False)

    def combine_time_s(self, world_size: int, m: float,
                       iterations: Optional[int] = None) -> float:
        """Selection per coordinate, priced like the sort: ``P·m·(1 + log₂P) / rate``."""
        sort_factor = math.log2(max(world_size, 2))
        return (world_size * float(m) * (1.0 + sort_factor)
                / self.AGGREGATION_ELEMENTS_PER_SECOND)


@AGGREGATORS.register("geometric_median", aliases=("geomed",),
                      description="Weiszfeld geometric median of the rank vectors")
class GeometricMedianAggregator(Aggregator):
    """Geometric median via smoothed Weiszfeld iteration.

    The minimizer of ``Σ_p ||y − x_p||₂`` treats each rank's vector as one
    point, so a corrupted rank can move the result by at most a bounded
    amount regardless of how large its vector is — the aggregation blades'
    AutoGM builds on.  Iteration stops when the update moves less than
    ``tol`` (relative to the point scale) or after ``max_iterations``.
    """

    name = "geometric_median"
    robust = True

    def __init__(self, max_iterations: int = 100, tol: float = 1e-8, eps: float = 1e-12):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tol <= 0 or eps <= 0:
            raise ValueError("tol and eps must be positive")
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.eps = float(eps)
        #: Weiszfeld iterations executed by the most recent :meth:`combine`
        #: (None before the first call) — feeds the priced combine time.
        self.last_iterations: Optional[int] = None

    def combine(self, X: np.ndarray) -> np.ndarray:
        X = self._as_matrix(X)
        dtype = X.dtype
        points = X.astype(np.float64, copy=False)
        P = points.shape[0]
        if P == 1:
            self.last_iterations = 0
            return X[0].copy()
        y = points.mean(axis=0)
        scale = float(np.linalg.norm(y)) or 1.0
        executed = 0
        for _ in range(self.max_iterations):
            distances = np.linalg.norm(points - y, axis=1)
            # A point we currently sit on would produce an infinite weight;
            # the eps floor is the standard smoothed-Weiszfeld fix.
            weights = 1.0 / np.maximum(distances, self.eps)
            updated = (weights[:, None] * points).sum(axis=0) / weights.sum()
            shift = float(np.linalg.norm(updated - y))
            y = updated
            executed += 1
            if shift <= self.tol * max(scale, float(np.linalg.norm(y)), 1e-30):
                break
        self.last_iterations = executed
        return y.astype(dtype, copy=False)

    def combine_time_s(self, world_size: int, m: float,
                       iterations: Optional[int] = None) -> float:
        """Gather plus Weiszfeld: ``(P·m + iterations·2·P·m) / rate``.

        Each Weiszfeld iteration touches all ``P·m`` elements twice (the
        distance pass and the weighted recombination).  ``iterations``
        defaults to the count the last :meth:`combine` actually executed,
        or ``max_iterations`` before any combine has run.
        """
        if iterations is None:
            iterations = self.last_iterations \
                if self.last_iterations is not None else self.max_iterations
        total = world_size * float(m) * (1.0 + 2.0 * int(iterations))
        return total / self.AGGREGATION_ELEMENTS_PER_SECOND


def get_aggregator(name: str, **kwargs) -> Aggregator:
    """Construct a registered aggregator, e.g. ``get_aggregator("trimmed_mean")``."""
    return AGGREGATORS.create(name, **kwargs)
