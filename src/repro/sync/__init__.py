"""Pluggable synchronization: strategies × aggregators × topologies.

The paper's Algorithm 1 — synchronous allreduce of compressed gradients
with mean aggregation — is one cell of a design grid this package makes
explicit.  Three registry-backed component families compose into a
synchronization setup:

* :mod:`repro.sync.base` / :mod:`repro.sync.strategies` — the
  :class:`SyncStrategy` protocol (*when and what* ranks exchange) with
  ``allreduce`` (the seed-identical default), ``local_sgd`` (parameter
  averaging every H iterations) and ``gossip`` (neighbour averaging over a
  :class:`~repro.comm.topology.CommTopology` graph);
* :mod:`repro.sync.aggregators` — the :class:`Aggregator` protocol (*how*
  payloads combine) with ``mean`` and the Byzantine-robust
  ``trimmed_mean`` / ``coordinate_median`` / ``geometric_median``;
* :mod:`repro.sync.config` — the declarative :class:`SyncSpec` carried by
  experiment specs (JSON round-trip, ``validate()``) and built into a bound
  strategy per trainer.

``repro components`` lists all three registries; the README's
"Synchronization strategies" section has the support matrix.
"""

from repro.sync.aggregators import (
    AGGREGATORS,
    Aggregator,
    CoordinateMedianAggregator,
    GeometricMedianAggregator,
    MeanAggregator,
    TrimmedMeanAggregator,
    get_aggregator,
)
from repro.sync.base import (
    CORRUPTION_KINDS,
    SYNC_STRATEGIES,
    GradientCorruption,
    SyncStrategy,
    merge_reports,
    validate_compressors,
)
from repro.sync.strategies import (
    AllreduceStrategy,
    FedAvgStrategy,
    GossipStrategy,
    LocalSGDStrategy,
)
from repro.sync.async_strategies import (
    AsyncParameterServerStrategy,
    AsyncStepReport,
    AsyncStrategy,
    ElasticAveragingStrategy,
)
from repro.sync.config import SyncSpec

__all__ = [
    "AGGREGATORS",
    "Aggregator",
    "MeanAggregator",
    "TrimmedMeanAggregator",
    "CoordinateMedianAggregator",
    "GeometricMedianAggregator",
    "get_aggregator",
    "SYNC_STRATEGIES",
    "SyncStrategy",
    "AllreduceStrategy",
    "LocalSGDStrategy",
    "FedAvgStrategy",
    "GossipStrategy",
    "AsyncStrategy",
    "AsyncStepReport",
    "AsyncParameterServerStrategy",
    "ElasticAveragingStrategy",
    "GradientCorruption",
    "CORRUPTION_KINDS",
    "SyncSpec",
    "merge_reports",
    "validate_compressors",
]
