"""Declarative synchronization configuration: the spec's ``sync`` section.

A :class:`SyncSpec` is the serializable description of one synchronization
setup — strategy, aggregator, gossip topology, local-SGD period and the
Byzantine corruption scenario — carried by
:class:`~repro.core.spec.ExperimentSpec` under the ``sync`` key and by
:class:`~repro.core.trainer.TrainerConfig` as the resolved dataclass::

    {"sync": {"strategy": "gossip", "topology": "ring",
              "aggregator": "trimmed_mean",
              "aggregator_kwargs": {"trim_ratio": 0.25}}}

``SyncSpec()`` (all defaults) describes the seed trainer exactly:
synchronous allreduce with mean aggregation and no corruption.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.comm.inprocess import InProcessWorld
from repro.comm.topology import TOPOLOGIES
from repro.compress.base import Compressor, ExchangeKind
from repro.compress.registry import COMPRESSORS
from repro.registry import RegistryKeyError, unknown_field_problems
from repro.sync.aggregators import AGGREGATORS
from repro.sync.base import CORRUPTION_KINDS, SYNC_STRATEGIES, GradientCorruption, SyncStrategy


@dataclass
class SyncSpec:
    """One fully-described synchronization setup (JSON round-trippable)."""

    #: Registered strategy name: allreduce, local_sgd, gossip, async_ps, easgd.
    strategy: str = "allreduce"
    #: Extra kwargs for the strategy constructor (e.g. staleness_bound for
    #: async_ps, moving_rate for easgd).
    strategy_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Registered aggregator name: mean, trimmed_mean, coordinate_median,
    #: geometric_median.
    aggregator: str = "mean"
    #: Extra kwargs for the aggregator constructor (e.g. trim_ratio).
    aggregator_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Local-SGD synchronization period H (1 = synchronize every iteration).
    period: int = 1
    #: Gossip communication graph: ring, star, fully_connected.
    topology: str = "ring"
    #: Compressor for the parameter-phase payloads of local_sgd (H > 1) /
    #: gossip: any registered compressor name, applied to the per-rank
    #: parameter *delta* against the last synchronized reference.  "none"
    #: keeps the dense float32 exchange, bit for bit.
    parameter_compression: str = "none"
    #: Extra kwargs for the parameter-phase compressor constructor
    #: (e.g. {"ratio": 0.01} for topk).
    parameter_compression_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Ranks whose local gradients are Byzantine-corrupted every iteration.
    corrupt_ranks: List[int] = field(default_factory=list)
    #: Corruption kind: "sign_flip" (g -> -g) or "scale" (g -> scale * g).
    corruption: str = "sign_flip"
    #: Multiplier used by the "scale" corruption kind.
    corruption_scale: float = 10.0

    # ------------------------------------------------------------------ #
    # construction / serialization
    # ------------------------------------------------------------------ #
    @classmethod
    def resolve(cls, value: Union[None, Dict[str, object], "SyncSpec"]) -> "SyncSpec":
        """Normalize the forms a spec/config may carry: None, dict, SyncSpec."""
        if value is None:
            return cls()
        if isinstance(value, SyncSpec):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise ValueError(f"sync must be None, a dict or a SyncSpec; got {value!r}")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SyncSpec":
        """Build from a dict, rejecting unknown keys with suggestions."""
        if not isinstance(payload, dict):
            raise ValueError(f"sync must be a JSON object, got {type(payload).__name__}")
        problems = unknown_field_problems(
            payload, [f.name for f in dataclasses.fields(cls)], label="sync field")
        if problems:
            raise ValueError("\n".join(problems))
        return cls(**payload)

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def merged_with(self, overrides: Dict[str, object]) -> Dict[str, object]:
        """Overlay partial field overrides, dict form, for CLI/API merging.

        Switching a component resets the knobs owned by the old one:
        changing ``strategy`` drops ``period``/``topology``/
        ``parameter_compression`` (+ kwargs) — a gossip config's topology
        or delta compressor must not invalidate a switch to allreduce —
        and changing ``aggregator`` drops ``aggregator_kwargs`` (trimmed_mean's
        ``trim_ratio`` would make ``mean`` unconstructible).  Names are
        compared canonically so registered aliases ("localsgd", "median")
        never read as a switch.  Overrides themselves always win.
        """
        merged = self.to_dict()
        defaults = SyncSpec()

        def canonical(registry, name: object) -> str:
            try:
                return registry.canonical(str(name))
            except KeyError:
                return str(name)

        if "strategy" in overrides \
                and canonical(SYNC_STRATEGIES, overrides["strategy"]) \
                != canonical(SYNC_STRATEGIES, merged["strategy"]):
            merged["strategy_kwargs"] = dict(defaults.strategy_kwargs)
            merged["period"] = defaults.period
            merged["topology"] = defaults.topology
            # Parameter compression belongs to the parameter-phase strategy
            # being switched away from; a leftover compressor would make the
            # new strategy unconstructible (or silently misconfigured).
            merged["parameter_compression"] = defaults.parameter_compression
            merged["parameter_compression_kwargs"] = \
                dict(defaults.parameter_compression_kwargs)
        if "aggregator" in overrides \
                and canonical(AGGREGATORS, overrides["aggregator"]) \
                != canonical(AGGREGATORS, merged["aggregator"]):
            merged["aggregator_kwargs"] = dict(defaults.aggregator_kwargs)
        merged.update(overrides)
        return merged

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def problems(self, world_size: Optional[int] = None,
                 algorithm: Optional[str] = None) -> List[str]:
        """Every problem with this sync section, as actionable messages.

        ``world_size`` and ``algorithm`` enable the cross-field checks
        (corrupt-rank range, aggregator × compressor compatibility) when
        the caller knows them — :meth:`ExperimentSpec.validate` does.
        """
        problems: List[str] = []
        for registry, name in ((SYNC_STRATEGIES, self.strategy),
                               (AGGREGATORS, self.aggregator),
                               (TOPOLOGIES, self.topology)):
            try:
                registry.canonical(str(name))
            except RegistryKeyError as error:
                problems.append(str(error))

        if not isinstance(self.period, int) or isinstance(self.period, bool) \
                or self.period < 1:
            problems.append(f"sync period must be an integer >= 1, got {self.period!r}")

        # Strategy-specific fields set on a strategy that ignores them are a
        # config mistake (e.g. expecting --sync-period to affect allreduce),
        # not a silent no-op.  The strategy classes carry the capability
        # flags (uses_period / needs_topology), so registered third-party
        # strategies participate without name lists here.
        strategy_cls = self._strategy_class()
        if strategy_cls is not None:
            if not strategy_cls.uses_period and self.period != 1:
                problems.append(f"period={self.period!r} is only used by "
                                f"period-based strategies (local_sgd); strategy "
                                f"{self.strategy!r} synchronizes on its own schedule")
            if not strategy_cls.needs_topology \
                    and not strategy_cls.optional_topology \
                    and self.topology != "ring":
                problems.append(f"topology={self.topology!r} is only used by "
                                f"graph-based strategies (gossip); strategy "
                                f"{self.strategy!r} does not exchange over a graph")
            if strategy_cls.optional_topology:
                problems.extend(self._optional_topology_problems())
        if not isinstance(self.strategy_kwargs, dict):
            problems.append(f"strategy_kwargs must be a dict, "
                            f"got {type(self.strategy_kwargs).__name__}")
        elif self.strategy in SYNC_STRATEGIES:
            try:
                SYNC_STRATEGIES.create(self.strategy, **self.strategy_kwargs)
            except Exception as error:
                problems.append(f"sync strategy {self.strategy!r} cannot be "
                                f"constructed with {self.strategy_kwargs!r}: {error}")
        if not isinstance(self.aggregator_kwargs, dict):
            problems.append(f"aggregator_kwargs must be a dict, "
                            f"got {type(self.aggregator_kwargs).__name__}")
        elif self.aggregator in AGGREGATORS:
            try:
                AGGREGATORS.create(self.aggregator, **self.aggregator_kwargs)
            except Exception as error:
                problems.append(f"aggregator {self.aggregator!r} cannot be constructed "
                                f"with {self.aggregator_kwargs!r}: {error}")

        problems.extend(self._parameter_compression_problems(strategy_cls))

        if self.corruption not in CORRUPTION_KINDS:
            problems.append(f"unknown corruption {self.corruption!r}; "
                            f"expected one of {list(CORRUPTION_KINDS)}")
        if not isinstance(self.corruption_scale, (int, float)) \
                or isinstance(self.corruption_scale, bool):
            problems.append(f"corruption_scale must be a number, "
                            f"got {self.corruption_scale!r}")
        if not isinstance(self.corrupt_ranks, (list, tuple)) \
                or any(not isinstance(r, int) or isinstance(r, bool) or r < 0
                       for r in self.corrupt_ranks):
            problems.append(f"corrupt_ranks must be a list of non-negative rank "
                            f"indices, got {self.corrupt_ranks!r}")
        elif world_size is not None:
            out_of_range = sorted(r for r in self.corrupt_ranks if r >= world_size)
            if out_of_range:
                problems.append(f"corrupt_ranks {out_of_range} out of range for "
                                f"world_size {world_size}")

        # Aggregator x compressor compatibility: robust aggregators need
        # per-rank payloads, which allgather-kind compressors cannot provide
        # on the gradient exchange (their reconstruction bakes in the mean).
        # Not gated on the other problems — validate() reports everything
        # at once.
        if (algorithm is not None
                and self.aggregator in AGGREGATORS
                and AGGREGATORS.get(self.aggregator).collective_op is None
                and self._gradient_exchange_active()):
            try:
                compressor_cls = COMPRESSORS.get(algorithm)
            except RegistryKeyError:
                compressor_cls = None  # reported by the algorithm check
            if compressor_cls is not None \
                    and compressor_cls.exchange is not ExchangeKind.ALLREDUCE:
                problems.append(
                    f"aggregator {self.aggregator!r} needs per-rank payloads, but "
                    f"compressor {algorithm!r} uses an allgather exchange; robust "
                    f"aggregators support allreduce-kind compressors only "
                    f"(dense, a2sgd) — or use strategy local_sgd with period > 1 / "
                    f"gossip, which aggregate parameters instead")

        # Async strategies apply one rank's update at a time on the simulated
        # event loop, so robust aggregators (which combine a lockstep stack of
        # per-rank rows) do not apply, and allgather-kind compressors (whose
        # reconstruction assumes every rank's payload) cannot decode a single
        # push.
        if strategy_cls is not None and getattr(strategy_cls, "is_async", False):
            if self.aggregator in AGGREGATORS \
                    and AGGREGATORS.get(self.aggregator).collective_op is None:
                problems.append(
                    f"async strategy {self.strategy!r} applies one rank's update "
                    f"at a time and cannot run a robust aggregator "
                    f"({self.aggregator!r}); use the 'mean' aggregator")
            if algorithm is not None \
                    and strategy_cls.exchanges_gradients(
                        self.period if isinstance(self.period, int) else 1):
                try:
                    compressor_cls = COMPRESSORS.get(algorithm)
                except RegistryKeyError:
                    compressor_cls = None  # reported by the algorithm check
                if compressor_cls is not None \
                        and compressor_cls.exchange is not ExchangeKind.ALLREDUCE:
                    problems.append(
                        f"async strategy {self.strategy!r} pushes single-rank "
                        f"payloads, but compressor {algorithm!r} uses an "
                        f"allgather exchange that cannot be decompressed "
                        f"rank-locally; use an allreduce-kind compressor "
                        f"(dense, a2sgd)")
        return problems

    def _parameter_compression_problems(self, strategy_cls: Optional[type]
                                        ) -> List[str]:
        """Validation of the ``parameter_compression`` (+ kwargs) fields."""
        problems: List[str] = []
        kwargs_ok = isinstance(self.parameter_compression_kwargs, dict)
        if not kwargs_ok:
            problems.append(
                f"parameter_compression_kwargs must be a dict, "
                f"got {type(self.parameter_compression_kwargs).__name__}")
        if not self.compresses_parameters:
            if kwargs_ok and self.parameter_compression_kwargs:
                problems.append(
                    f"parameter_compression_kwargs "
                    f"{self.parameter_compression_kwargs!r} given but "
                    f"parameter_compression is {self.parameter_compression!r}")
            return problems
        try:
            COMPRESSORS.canonical(str(self.parameter_compression))
        except RegistryKeyError as error:
            problems.append(f"parameter_compression: {error}")
            return problems
        if kwargs_ok:
            try:
                COMPRESSORS.create(self.parameter_compression,
                                   **self.parameter_compression_kwargs)
            except Exception as error:
                problems.append(
                    f"parameter compressor {self.parameter_compression!r} cannot "
                    f"be constructed with {self.parameter_compression_kwargs!r}: "
                    f"{error}")
        if strategy_cls is not None:
            period = self.period if isinstance(self.period, int) else 1
            if not strategy_cls.exchanges_parameters(period):
                problems.append(
                    f"parameter_compression={self.parameter_compression!r} only "
                    f"applies to parameter-phase strategies (local_sgd with "
                    f"period > 1, gossip); strategy {self.strategy!r} with "
                    f"period={period} never exchanges parameters")
        return problems

    def _optional_topology_problems(self) -> List[str]:
        """Checks for strategies where a topology is optional (fedavg).

        The default ``"ring"`` means "no tree — flat server aggregation"
        (the field's default is never a user intent to gossip); the only
        other accepted graph is the two-level ``hierarchical`` tree, and
        its count-weighted partial sums need an elementwise aggregator.
        Mirrors the strategy's own bind-time checks so a bad combination
        fails at validate time with the same story.
        """
        problems: List[str] = []
        try:
            topology = TOPOLOGIES.canonical(str(self.topology))
        except RegistryKeyError:
            return problems  # reported by the registry check above
        if topology == "ring":
            return problems
        if topology != "hierarchical":
            problems.append(
                f"sync strategy {self.strategy!r} accepts the two-level "
                f"'hierarchical' topology only (got {self.topology!r}); "
                f"omit the topology for flat server aggregation")
        elif self.aggregator in AGGREGATORS \
                and AGGREGATORS.get(self.aggregator).collective_op is None:
            problems.append(
                f"hierarchical fedavg count-weights partial sums through "
                f"edge aggregators and supports elementwise aggregators "
                f"only, not {self.aggregator!r}; use flat fedavg "
                f"(no topology) for robust aggregation")
        return problems

    def notes(self) -> List[str]:
        """Advisory notes: configurations that run but deserve a warning.

        Unlike :meth:`problems` these never fail :meth:`validate` — a
        non-contractive parameter compressor still trains (the end-to-end
        tests exercise QSGD's defaults) but its error-feedback residual has
        no drain guarantee, so the mistake is surfaced rather than enforced.
        ``repro validate`` prints these and :meth:`build` raises them as
        ``RuntimeWarning``.
        """
        notes: List[str] = []
        if self.compresses_parameters \
                and isinstance(self.parameter_compression_kwargs, dict):
            try:
                compressor = COMPRESSORS.create(
                    self.parameter_compression,
                    **self.parameter_compression_kwargs)
            except Exception:
                return notes                   # reported by problems()
            issue = compressor.contraction_problem()
            if issue:
                notes.append(f"parameter_compression: {issue}")
        return notes

    @property
    def compresses_parameters(self) -> bool:
        """Whether a parameter-phase compressor is configured (not "none")."""
        name = str(self.parameter_compression).strip().lower()
        return name not in ("none", "")

    def _strategy_class(self) -> Optional[type]:
        """The registered strategy class, or None when unregistered."""
        try:
            return SYNC_STRATEGIES.get(str(self.strategy))
        except RegistryKeyError:
            return None

    def _gradient_exchange_active(self) -> bool:
        """Whether the configured strategy puts gradients on the wire.

        Delegates to the strategy class's ``exchanges_gradients`` so custom
        registered strategies carry their own capability.
        """
        strategy_cls = self._strategy_class()
        if strategy_cls is None:
            return False
        period = self.period if isinstance(self.period, int) else 1
        return bool(strategy_cls.exchanges_gradients(period))

    def validate(self, world_size: Optional[int] = None,
                 algorithm: Optional[str] = None) -> "SyncSpec":
        """Raise ``ValueError`` listing every problem; returns self when clean."""
        problems = self.problems(world_size=world_size, algorithm=algorithm)
        if problems:
            raise ValueError("invalid sync spec:\n" +
                             "\n".join(f"  - {p}" for p in problems))
        return self

    # ------------------------------------------------------------------ #
    # strategy construction
    # ------------------------------------------------------------------ #
    def build(self, world: InProcessWorld,
              compressors: Sequence[Compressor]) -> SyncStrategy:
        """Instantiate and bind the described strategy to a world."""
        aggregator = AGGREGATORS.create(self.aggregator, **dict(self.aggregator_kwargs))
        strategy: SyncStrategy = SYNC_STRATEGIES.create(
            self.strategy, **dict(self.strategy_kwargs))
        topology = None
        if strategy.needs_topology:
            topology = TOPOLOGIES.create(self.topology)
        elif strategy.optional_topology \
                and TOPOLOGIES.canonical(str(self.topology)) != "ring":
            # For optional-topology strategies (fedavg) the field default
            # "ring" means "flat" — only an explicit non-default graph binds.
            topology = TOPOLOGIES.create(self.topology)
        corruption = None
        if self.corrupt_ranks:
            corruption = GradientCorruption(self.corrupt_ranks, kind=self.corruption,
                                            scale=self.corruption_scale)
        parameter_compressors = None
        if self.compresses_parameters:
            # One instance per rank: the delta codec's error-feedback
            # residuals are per worker, exactly like the gradient phase's.
            parameter_compressors = [
                COMPRESSORS.create(self.parameter_compression,
                                   **dict(self.parameter_compression_kwargs))
                for _ in range(world.world_size)]
            issue = parameter_compressors[0].contraction_problem()
            if issue:
                warnings.warn(issue, RuntimeWarning, stacklevel=2)
        return strategy.bind(world, compressors, aggregator, topology=topology,
                             period=self.period, corruption=corruption,
                             parameter_compressors=parameter_compressors)

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        parts = [f"strategy={self.strategy}", f"aggregator={self.aggregator}"]
        if self.strategy_kwargs:
            parts.append(f"strategy_kwargs={dict(self.strategy_kwargs)}")
        strategy_cls = self._strategy_class()
        if strategy_cls is not None and strategy_cls.uses_period:
            parts.append(f"period={self.period}")
        if strategy_cls is not None and (
                strategy_cls.needs_topology
                or (strategy_cls.optional_topology and self.topology != "ring")):
            parts.append(f"topology={self.topology}")
        if self.compresses_parameters:
            parts.append(f"param_compression={self.parameter_compression}")
        if self.corrupt_ranks:
            parts.append(f"corrupt_ranks={list(self.corrupt_ranks)} "
                         f"({self.corruption})")
        return " ".join(parts)
