"""The built-in synchronization strategies: allreduce, local SGD, gossip.

``allreduce`` is the paper's Algorithm 1 — every iteration, every rank's
gradient is compressed, exchanged with the collective its compressor
requests, aggregated, and reconstructed.  With the ``mean`` aggregator it
is bit-identical to the pre-redesign trainer; with a robust aggregator the
payloads are allgathered and combined off-wire instead (the exchange-kind
negotiation that used to live in ``GradientSynchronizer`` now lives here).

``local_sgd`` trades synchronization frequency for traffic: ranks apply
their raw local gradients and only every ``H``-th iteration exchange
*parameters* through the aggregator (dist-keras builds its DOWNPOUR/EASGD
family from exactly this schedule knob).  ``H = 1`` leaves no local-only
progress to average — every iteration is a synchronization point — so the
strategy degenerates to ``allreduce``, bit for bit, compressor semantics
(error feedback and all) included.

``gossip`` removes the global collective entirely: every iteration each
rank averages its parameters with its neighbours on a
:class:`~repro.comm.topology.CommTopology` graph, and the graph's degree —
not the world size — prices the exchange.  On a fully-connected graph the
closed neighbourhood is the whole world, so gossip with the ``mean``
aggregator matches global mean-allreduce training to float32 tolerance.

Both parameter-phase strategies optionally compress their parameter
payloads: with ``parameter_compression`` set, each rank ships a compressed
*delta* against the last synchronized reference through a
:class:`~repro.compress.param_delta.ParameterDeltaCodec` (quantized
gossip), extending the paper's compression story beyond the gradient
phase.  ``none`` keeps the dense float32 exchange, bit for bit.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.topology import HierarchicalTopology
from repro.compress.base import ExchangeKind
from repro.core.timeline import SyncReport
from repro.sync.base import SYNC_STRATEGIES, SyncStrategy


@SYNC_STRATEGIES.register("allreduce", aliases=("sync", "synchronous"),
                          description="Algorithm 1: compress + collective "
                                      "exchange + aggregate every iteration")
class AllreduceStrategy(SyncStrategy):
    """Synchronous gradient exchange — the seed trainer's semantics.

    The aggregator negotiates the exchange kind: aggregators that are
    elementwise reductions (``mean``) run as a true collective op on the
    wire for ALLREDUCE-kind compressors, exactly as the seed did; robust
    aggregators need every rank's payload, so the payloads are allgathered
    and combined once (the combine is rank-invariant), then reconstructed
    per rank.  ALLGATHER-kind compressors bake the mean into their
    ``decompress_gathered``, so robust aggregation is rejected for them at
    bind time — see the support matrix in the README.
    """

    name = "allreduce"

    @classmethod
    def exchanges_gradients(cls, period: int = 1) -> bool:
        return True

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        return self.compressors[0].wire_bits(n, world_size)

    def _after_bind(self) -> None:
        aggregator = self.aggregator
        if self._gradient_exchange_active() and aggregator.collective_op is None \
                and self.compressors[0].exchange is not ExchangeKind.ALLREDUCE:
            raise ValueError(
                f"aggregator {aggregator.name!r} needs per-rank payloads, but "
                f"compressor {self.algorithm!r} uses an allgather exchange whose "
                f"reconstruction bakes in the mean; robust aggregators support "
                f"allreduce-kind compressors only (dense, a2sgd)")

    def _gradient_exchange_active(self) -> bool:
        """Whether this strategy ever runs the compressed gradient exchange."""
        return type(self).exchanges_gradients(self.period)

    # ------------------------------------------------------------------ #
    def exchange(self, gradients: Sequence[np.ndarray]
                 ) -> Tuple[List[np.ndarray], SyncReport]:
        """Synchronize one iteration's gradients (per-rank loop path)."""
        n = self._validated_gradient_count(gradients)
        self._step += 1
        if self.corruption is not None:
            self.corruption.apply_list(gradients)
        membership = self._active_membership()
        if membership is not None:
            return self._exchange_degraded(gradients, n, membership)

        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, self.world.world_size)
        logical_bytes = wire_bits / 8.0

        # ---- compression (lines 3-4 of Algorithm 1) ---------------------- #
        payloads: List[np.ndarray] = []
        contexts: List[Dict] = []
        compression_times: List[float] = []
        for compressor, gradient in zip(self.compressors, gradients):
            start = time.perf_counter()
            payload, ctx = compressor.compress(np.asarray(gradient, dtype=np.float32))
            compression_times.append(time.perf_counter() - start)
            payloads.append(payload)
            contexts.append(ctx)

        # ---- global exchange + aggregation (line 5) ---------------------- #
        exchanged, comm_time, wire_exchange, aggregation_time = self._combine(
            payloads, exchange_kind, logical_bytes)

        # ---- reconstruction (line 6) ------------------------------------- #
        new_gradients: List[np.ndarray] = []
        for rank, (compressor, ctx) in enumerate(zip(self.compressors, contexts)):
            start = time.perf_counter()
            if exchange_kind is ExchangeKind.ALLREDUCE:
                rebuilt = compressor.decompress(exchanged[rank], ctx)
            else:
                rebuilt = compressor.decompress_gathered(exchanged[rank], ctx)
            compression_times[rank] += time.perf_counter() - start
            new_gradients.append(np.asarray(rebuilt, dtype=np.float32))

        report = SyncReport(
            compression_time_s=float(max(compression_times)),
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=wire_exchange,
            aggregation_time_s=float(aggregation_time),
        )
        return new_gradients, report

    def _exchange_degraded(self, gradients: Sequence[np.ndarray], n: int,
                           membership) -> Tuple[List[np.ndarray], SyncReport]:
        """Per-rank gradient exchange over the surviving ranks only.

        Dead ranks contribute nothing — their compressors (and error-feedback
        residuals) stay frozen, and their gradient rows pass through
        untouched (the trainer never applies them).  The wire collective runs
        over the alive subset, so a MEAN reduction renormalizes over the
        survivors automatically.
        """
        alive = membership.alive_ranks()
        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, len(alive))
        logical_bytes = wire_bits / 8.0

        payloads: List[Optional[np.ndarray]] = [None] * self.world.world_size
        contexts: Dict[int, Dict] = {}
        compression_times: List[float] = []
        for rank in alive:
            start = time.perf_counter()
            payload, ctx = self.compressors[rank].compress(
                np.asarray(gradients[rank], dtype=np.float32))
            compression_times.append(time.perf_counter() - start)
            payloads[rank] = payload
            contexts[rank] = ctx

        exchanged, comm_time, wire_exchange, aggregation_time = self._combine(
            payloads, exchange_kind, logical_bytes)

        new_gradients = [np.asarray(g, dtype=np.float32) for g in gradients]
        for i, rank in enumerate(alive):
            compressor = self.compressors[rank]
            start = time.perf_counter()
            if exchange_kind is ExchangeKind.ALLREDUCE:
                rebuilt = compressor.decompress(exchanged[rank], contexts[rank])
            else:
                rebuilt = compressor.decompress_gathered(exchanged[rank], contexts[rank])
            compression_times[i] += time.perf_counter() - start
            new_gradients[rank] = np.asarray(rebuilt, dtype=np.float32)

        report = SyncReport(
            compression_time_s=float(max(compression_times)),
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=wire_exchange,
            aggregation_time_s=float(aggregation_time),
        )
        return new_gradients, report

    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        """Synchronize one iteration from the stacked ``(P, n)`` matrix.

        The batched twin of :meth:`exchange`: compression and reconstruction
        run through the compressor's ``compress_batch``/``decompress_batch``
        kernels (bit-identical to the per-rank loop, which remains the
        fallback for compressors without batched kernels).  The measured
        kernel time is divided by the world size: the simulation executes
        all ranks' compression in one call on one host, while the modelled
        deployment runs the per-worker kernels in parallel.
        """
        G = np.asarray(self._validated_gradient_matrix(G), dtype=np.float32)
        self._step += 1
        if self.corruption is not None:
            self.corruption.apply_rows(G)
        membership = self._active_membership()
        if membership is not None:
            return self._exchange_batched_degraded(G, membership)
        n = G.shape[1]
        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, self.world.world_size)
        logical_bytes = wire_bits / 8.0
        batch = type(reference)

        start = time.perf_counter()
        payloads, contexts = batch.compress_batch(self.compressors, G)
        kernel_time = time.perf_counter() - start

        exchanged, comm_time, wire_exchange, aggregation_time = self._combine(
            payloads, exchange_kind, logical_bytes)

        start = time.perf_counter()
        new_matrix = batch.decompress_batch(self.compressors, exchanged, contexts)
        kernel_time += time.perf_counter() - start

        report = SyncReport(
            compression_time_s=float(kernel_time) / self.world.world_size,
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=wire_exchange,
            aggregation_time_s=float(aggregation_time),
        )
        return new_matrix, report

    def _exchange_batched_degraded(self, G: np.ndarray, membership
                                   ) -> Tuple[np.ndarray, SyncReport]:
        """Batched twin of :meth:`_exchange_degraded` (alive subset only)."""
        alive = membership.alive_ranks()
        n = G.shape[1]
        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, len(alive))
        logical_bytes = wire_bits / 8.0
        batch = type(reference)
        sub_compressors = [self.compressors[r] for r in alive]

        start = time.perf_counter()
        sub_payloads, sub_contexts = batch.compress_batch(sub_compressors, G[alive])
        kernel_time = time.perf_counter() - start

        payloads: List[Optional[np.ndarray]] = [None] * self.world.world_size
        for i, rank in enumerate(alive):
            payloads[rank] = sub_payloads[i]

        exchanged, comm_time, wire_exchange, aggregation_time = self._combine(
            payloads, exchange_kind, logical_bytes)

        start = time.perf_counter()
        sub_exchanged = [exchanged[r] for r in alive]
        new_sub = batch.decompress_batch(sub_compressors, sub_exchanged, sub_contexts)
        kernel_time += time.perf_counter() - start

        new_matrix = G.copy()
        new_matrix[alive] = np.asarray(new_sub, dtype=np.float32)

        report = SyncReport(
            compression_time_s=float(kernel_time) / len(alive),
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=wire_exchange,
            aggregation_time_s=float(aggregation_time),
        )
        return new_matrix, report

    def _combine(self, payloads: List[np.ndarray], exchange_kind: ExchangeKind,
                 logical_bytes: float) -> Tuple[Sequence, float, str, float]:
        """Exchange + aggregate the payloads; returns per-rank results.

        The aggregator decides the wire pattern: an elementwise-reduction
        aggregator runs the compressor's native collective (bitwise the
        seed behaviour for ``mean``); a robust aggregator allgathers the
        payloads and combines them once off-wire — that combine's modeled
        cost (the O(P·m) gather pass, sort/Weiszfeld work) is returned as
        the fourth element so the iteration report prices it.
        """
        comm_before = self.world.simulated_comm_time
        aggregation_time = 0.0
        op = self.aggregator.collective_op
        if exchange_kind is ExchangeKind.ALLREDUCE:
            if op is not None:
                exchanged: Sequence = self.world.allreduce(
                    payloads, op, logical_bytes=logical_bytes)
                wire_exchange = exchange_kind.value
            else:
                gathered = self.world.allgather(payloads, logical_bytes=logical_bytes)
                # The combine is rank-invariant: compute once, share the
                # result.  Under a degraded membership a dead rank gathers
                # nothing — read from the first rank that received payloads.
                source = next(g for g in gathered if g)
                stacked = np.stack(source)
                combined = self.aggregator.combine(stacked)
                aggregation_time = self.aggregator.combine_time_s(
                    stacked.shape[0], stacked.shape[1])
                exchanged = [combined] * self.world.world_size
                wire_exchange = ExchangeKind.ALLGATHER.value
        else:
            exchanged = self.world.allgather(payloads, logical_bytes=logical_bytes)
            wire_exchange = exchange_kind.value
        comm_time = self.world.simulated_comm_time - comm_before
        return exchanged, comm_time, wire_exchange, aggregation_time

@SYNC_STRATEGIES.register("local_sgd", aliases=("localsgd", "periodic"),
                          description="apply local gradients; aggregate "
                                      "parameters every H iterations")
class LocalSGDStrategy(AllreduceStrategy):
    """Periodic parameter averaging (Local SGD / FedAvg-style schedule).

    With period ``H > 1``, iterations apply the raw local gradient with zero
    communication; every ``H``-th iteration the ranks aggregate their
    *parameter* vectors through the aggregator after the optimizer step.
    The compressor never runs — there is no gradient wire traffic to
    compress — so error-feedback state stays untouched.

    With ``H = 1`` every iteration is a synchronization point and no
    local-only progress ever exists to average away, so the strategy
    degenerates to :class:`AllreduceStrategy` (gradient exchange through
    the compressor), bit-identically — and with strictly less traffic than
    averaging full parameter vectors for compressors like A2SGD.
    """

    name = "local_sgd"
    uses_period = True

    @classmethod
    def exchanges_gradients(cls, period: int = 1) -> bool:
        # With H > 1 gradients never touch the wire, so any aggregator works
        # with any compressor (the aggregator only combines parameters).
        return period == 1

    @classmethod
    def exchanges_parameters(cls, period: int = 1) -> bool:
        return period > 1

    def post_step_pending(self) -> bool:
        # _step > 0: no iteration has been exchanged yet before training.
        return self.period > 1 and self._step > 0 and self._step % self.period == 0

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        """Amortized: one parameter-payload exchange every H steps.

        Dense float32 vectors cost 32n bits; with ``parameter_compression``
        the configured compressor's actual payload bits are charged instead.
        """
        if self.period == 1:
            return super().wire_bits_per_iteration(n, world_size)
        return self._parameter_payload_bits(n) / self.period

    def exchange(self, gradients: Sequence[np.ndarray]
                 ) -> Tuple[List[np.ndarray], SyncReport]:
        if self.period == 1:
            return super().exchange(gradients)
        # Local-only iteration: nothing gradient-shaped ever reaches the
        # wire, so Byzantine corruption does NOT touch the local gradients —
        # it poisons the parameter payload staged in post_step instead.
        self._validated_gradient_count(gradients)
        self._step += 1
        return list(gradients), self._passthrough_report()

    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        if self.period == 1:
            return super().exchange_batched(G)
        self._validated_gradient_matrix(G)
        self._step += 1
        return G, self._passthrough_report()

    def post_step(self, param_rows: Sequence[np.ndarray]) -> Optional[SyncReport]:
        if self.period == 1 or self._step % self.period != 0:
            return None
        if self.parameter_codec is not None:
            return self._exchange_parameters_compressed(param_rows)
        vectors = self._staged_parameter_payloads(param_rows)
        results, report = self._aggregate_global(vectors)
        membership = self._active_membership()
        for rank, (row, result) in enumerate(zip(param_rows, results)):
            # Dead ranks keep their stale parameters (their "result" is just
            # their own — possibly corruption-poisoned — staged copy anyway);
            # they catch up through a dense re-sync at rejoin.
            if membership is not None and not membership.is_alive(rank):
                continue
            row[...] = result
        return report


@SYNC_STRATEGIES.register("fedavg", aliases=("federated_averaging", "fed_avg"),
                          description="sampled-cohort periodic parameter "
                                      "averaging (FedAvg), optionally priced "
                                      "over a hierarchical topology")
class FedAvgStrategy(LocalSGDStrategy):
    """Federated averaging: local SGD numerics over a sampled cohort.

    Numerically this *is* :class:`LocalSGDStrategy` — the materialized
    replica slots run ``H`` local steps and average parameters at every
    sync point — which pins ``fedavg`` with the ``full`` sampler and
    ``N = K = P`` bit-identical to ``local_sgd`` on both trainer paths.
    What changes is who occupies the slots (the trainer's
    :class:`~repro.federated.population.ClientPopulation` swaps sampled
    cohort clients in and out at round boundaries) and, optionally, what
    the averaging costs on the wire: bound to a two-level
    :class:`~repro.comm.topology.HierarchicalTopology`, the dense
    parameter exchange is priced as cohort→edge uplinks, count-weighted
    edge→server partial sums, and the same tree walked back down for the
    broadcast — only the active cohort's edges, never the population.

    The edge aggregators forward *count-weighted partial sums*, so the
    two-level combine equals the flat cohort mean mathematically (to
    float32 summation order); elementwise aggregators only (``mean``) —
    robust combines do not decompose over a tree.  The compressed
    parameter path (``parameter_compression``) keeps the flat allgather
    pricing: compressed payloads are not partial-summable at the edges.
    """

    name = "fedavg"
    uses_period = True
    optional_topology = True

    def _after_bind(self) -> None:
        super()._after_bind()
        if self.topology is not None:
            if not isinstance(self.topology, HierarchicalTopology):
                raise ValueError(
                    f"sync strategy 'fedavg' accepts the two-level "
                    f"'hierarchical' topology only (got {self.topology.name!r}); "
                    f"omit the topology for flat server aggregation")
            if self.aggregator.collective_op is None:
                raise ValueError(
                    f"hierarchical fedavg count-weights partial sums through "
                    f"edge aggregators and supports elementwise aggregators "
                    f"only, not {self.aggregator.name!r}; use flat fedavg "
                    f"(no topology) for robust aggregation")

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        """Amortized per-worker traffic; tree-priced when hierarchical.

        The busiest node of the tree is an edge aggregator: it receives its
        group's uplink payloads and forwards one partial sum (then the same
        links carry the broadcast back), so ``max_group_size + 1`` payloads
        per sync point gate the exchange.
        """
        if self.period == 1 or self.topology is None:
            return super().wire_bits_per_iteration(n, world_size)
        payload_bits = self._parameter_payload_bits(n)
        busiest = self.topology.max_group_size(world_size) + 1
        return busiest * payload_bits / self.period

    def _aggregate_global(self, vectors):
        # Degraded membership falls back to the flat survivors' collective —
        # re-routing a two-level tree around dead edge aggregators is the
        # fault injector's job, not the pricing model's.
        if self.topology is None or self._active_membership() is not None:
            return super()._aggregate_global(vectors)
        return self._aggregate_hierarchical(vectors)

    def _aggregate_hierarchical(self, vectors):
        """Cohort mean priced over the clients → edges → server tree.

        Wire accounting charges only the active cohort's edges: ``K``
        client→edge uplinks, one count-weighted partial sum per edge to the
        server, and the mirror-image broadcast — ``2·(K + E)`` α–β messages
        total, independent of the logical population size.
        """
        world, topology = self.world, self.topology
        cohort = world.world_size
        stacked = np.stack([np.asarray(v, dtype=np.float32) for v in vectors])
        nbytes = float(stacked[0].nbytes)
        groups = topology.edge_groups(cohort)
        comm_before = world.simulated_comm_time
        for _ in range(2 * (cohort + len(groups))):
            world.point_to_point(nbytes)
        comm_time = world.simulated_comm_time - comm_before
        start = time.perf_counter()
        partials = [stacked[list(group)].sum(axis=0, dtype=np.float64)
                    for group in groups]
        combined = (np.sum(partials, axis=0) / cohort).astype(np.float32)
        results = [combined.copy() for _ in range(cohort)]
        kernel_time = time.perf_counter() - start
        aggregation_time = self.aggregator.combine_time_s(cohort,
                                                          stacked.shape[1])
        report = SyncReport(
            compression_time_s=float(kernel_time) / cohort,
            comm_time_s=float(comm_time),
            wire_bits_per_worker=(topology.max_group_size(cohort) + 1)
            * 8.0 * nbytes,
            exchange="hierarchical_parameter_exchange",
            aggregation_time_s=float(aggregation_time))
        return results, report


@SYNC_STRATEGIES.register("gossip", aliases=("neighbor", "decentralized"),
                          description="average parameters with topology "
                                      "neighbours every iteration")
class GossipStrategy(SyncStrategy):
    """Decentralized neighbour averaging over a communication graph.

    Every iteration each rank applies its raw local gradient, then replaces
    its parameters with the aggregator's combine of its *closed
    neighbourhood* (itself + graph neighbours).  With the ``mean``
    aggregator this is classic gossip averaging: information diffuses at
    the graph's spectral rate, and the α–β cost of a step is set by the
    maximum degree (a ring costs two messages for any ``P >= 3``).  On a
    fully-connected graph the neighbourhood is the whole world and training
    matches global mean-allreduce to float32 tolerance.
    """

    name = "gossip"
    needs_topology = True

    @classmethod
    def exchanges_parameters(cls, period: int = 1) -> bool:
        return True

    def post_step_pending(self) -> bool:
        return True

    def wire_bits_per_iteration(self, n: int, world_size: int) -> float:
        """One parameter payload to each neighbour of the *busiest* rank.

        Priced by the graph's **maximum** degree — the same critical path
        the α–β network model charges for the exchange (a star's hub sends
        P − 1 payloads while the leaves send one; the hub gates the step).
        Per-payload bits are 32n for dense float32 vectors, or the
        configured ``parameter_compression`` compressor's actual bits.
        The *average* per-rank traffic is ``topology.mean_degree(P)``
        payloads instead.
        """
        if self.topology is None:
            return 0.0
        return self.topology.max_degree(world_size) * self._parameter_payload_bits(n)

    def exchange(self, gradients: Sequence[np.ndarray]
                 ) -> Tuple[List[np.ndarray], SyncReport]:
        # Gradients never reach the wire under gossip; Byzantine corruption
        # poisons the parameter payload staged in post_step instead.
        self._validated_gradient_count(gradients)
        self._step += 1
        return list(gradients), self._passthrough_report()

    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        self._validated_gradient_matrix(G)
        self._step += 1
        return G, self._passthrough_report()

    def post_step(self, param_rows: Sequence[np.ndarray]) -> Optional[SyncReport]:
        world, topology = self.world, self.topology
        membership = self._active_membership()
        if membership is None:
            max_degree = topology.max_degree(world.world_size)
        else:
            # The re-routed graph's busiest survivor gates the degraded step.
            max_degree = topology.alive_max_degree(world.world_size,
                                                   membership.alive)
        if self.parameter_codec is not None:
            return self._gossip_compressed(param_rows, max_degree)
        staged_rows = self._staged_parameter_payloads(param_rows)
        nbytes = float(np.asarray(staged_rows[0]).nbytes)
        comm_before = world.simulated_comm_time
        gathered = world.neighbor_exchange(staged_rows, topology)
        comm_time = world.simulated_comm_time - comm_before
        # All neighbourhood payloads are staged read-only copies, so the
        # in-place writes below cannot corrupt a neighbour's input.
        n = int(np.asarray(param_rows[0]).size)
        for rank, neighborhood in enumerate(gathered):
            if not neighborhood:  # dead rank: excluded from the exchange
                continue
            param_rows[rank][...] = self.aggregator.combine(np.stack(neighborhood))
        # Per-rank combines run in parallel in the modeled deployment; the
        # busiest rank (max closed neighbourhood) gates the step.
        aggregation_time = self.aggregator.combine_time_s(max_degree + 1, n)
        return SyncReport(compression_time_s=0.0, comm_time_s=float(comm_time),
                          wire_bits_per_worker=max_degree * 8.0 * nbytes,
                          exchange="neighbor_exchange",
                          aggregation_time_s=float(aggregation_time))

    def _gossip_compressed(self, param_rows: Sequence[np.ndarray],
                           max_degree: int) -> SyncReport:
        """One gossip step over compressed parameter deltas.

        Each rank ships its compressed delta to its neighbours; receivers
        rebuild the sender's estimate as ``ref + decompress(delta)`` and
        aggregate their closed neighbourhood's *estimates* (including their
        own — sender and receivers must agree on what rank ``p``'s
        parameters look like).  References advance to the estimates, so the
        next deltas stay small and the compressors' error feedback carries
        the loss forward.
        """
        world, topology = self.world, self.topology
        codec = self.parameter_codec
        membership = self._active_membership()
        staged_rows = self._staged_parameter_payloads(param_rows)
        if membership is None:
            alive = list(range(world.world_size))
            start = time.perf_counter()
            payloads, estimates, wire_bits = codec.encode(staged_rows)
            kernel_time = time.perf_counter() - start
        else:
            # Only survivors encode: dead ranks' compressor residuals and
            # references stay frozen, and their (stale) parameter rows never
            # enter a neighbourhood — the re-routed graph excludes them.
            alive = membership.alive_ranks()
            start = time.perf_counter()
            sub_payloads, estimates, wire_bits = codec.encode(
                [staged_rows[r] for r in alive], ranks=alive)
            kernel_time = time.perf_counter() - start
            payloads = [None] * world.world_size
            for i, rank in enumerate(alive):
                payloads[rank] = sub_payloads[i]
        # The exchange moves the compressed payloads (the estimates are
        # recomputed locally by every receiver); the α–β model prices the
        # compressed payload size, not the dense vectors it stands for.
        comm_before = world.simulated_comm_time
        world.neighbor_exchange(payloads, topology, logical_bytes=wire_bits / 8.0)
        comm_time = world.simulated_comm_time - comm_before
        start = time.perf_counter()
        position = {rank: i for i, rank in enumerate(alive)}
        for rank in alive:
            if membership is None:
                neighborhood = list(topology.closed_neighborhood(
                    rank, world.world_size))
            else:
                neighborhood = [position[q] for q in topology.alive_closed_neighborhood(
                    rank, world.world_size, membership.alive)]
            param_rows[rank][...] = self.aggregator.combine(estimates[neighborhood])
        codec.advance(estimates, ranks=None if membership is None else alive)
        kernel_time += time.perf_counter() - start
        n = int(np.asarray(param_rows[0]).size)
        aggregation_time = self.aggregator.combine_time_s(max_degree + 1, n)
        return SyncReport(
            compression_time_s=float(kernel_time) / len(alive),
            comm_time_s=float(comm_time),
            wire_bits_per_worker=max_degree * float(wire_bits),
            exchange="compressed_neighbor_exchange",
            aggregation_time_s=float(aggregation_time))
