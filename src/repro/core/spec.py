"""Declarative experiment specification.

An :class:`ExperimentSpec` is the single serializable description of one
cell of the paper's evaluation grid (model × compressor × world-size ×
network).  It *derives* the trainer's :class:`~repro.core.trainer.TrainerConfig`
field-by-field from ``dataclasses.fields`` instead of hand-mirroring it, so
adding a trainer knob automatically makes it spec- and JSON-addressable.

The spec round-trips through JSON::

    spec = ExperimentSpec(model="fnn3", algorithm="a2sgd", world_size=8)
    spec.to_file("spec.json")
    same = ExperimentSpec.from_file("spec.json")
    assert same.to_trainer_config() == spec.to_trainer_config()

and powers ``repro run --config spec.json`` / ``repro validate`` as well as
:func:`repro.core.experiment.run_experiment` and the sweeps in
:mod:`repro.analysis.sweeps`.

Non-scalar fields serialize declaratively:

* ``network`` — ``None``, a registered fabric name (``"ethernet_10gbps"``),
  or ``{"latency_s": ..., "bandwidth_Bps": ..., "name": ...}``;
* ``callbacks`` — registered names (``"progress"``) or
  ``{"name": "early_stopping", "patience": 2}`` dicts, resolved through the
  ``CALLBACKS`` registry when the trainer is built;
* ``sync`` — ``None`` (the paper's allreduce + mean), a
  :class:`repro.sync.SyncSpec`, or its dict form
  (``{"strategy": "gossip", "topology": "ring", "aggregator": "mean"}``),
  validated against the strategy/aggregator/topology registries.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.backends import backend_spec_problems
from repro.comm.network_model import NETWORKS, NetworkModel
from repro.compress.registry import COMPRESSORS
from repro.core.callbacks import CALLBACKS, Callback
from repro.core.trainer import TrainerConfig
from repro.faults import FaultSpec
from repro.federated import ClientSpec
from repro.models.registry import MODELS, list_models, list_presets
from repro.registry import RegistryKeyError, unknown_field_problems
from repro.sim.compute import compute_model_problems
from repro.sync import SYNC_STRATEGIES, SyncSpec
from repro.utils.serialization import to_jsonable


class SpecError(ValueError):
    """An invalid or unparseable experiment spec, with actionable messages."""

    def __init__(self, problems: Union[str, List[str]]):
        self.problems = [problems] if isinstance(problems, str) else list(problems)
        super().__init__("invalid experiment spec:\n" +
                         "\n".join(f"  - {p}" for p in self.problems))


@dataclass
class ExperimentSpec:
    """One fully-described experiment, serializable and trainer-derivable."""

    model: str = "fnn3"
    preset: str = "tiny"
    algorithm: str = "a2sgd"
    world_size: int = 4
    epochs: int = 3
    seed: int = 0
    #: Per-worker batch size; None defers to Table 1's global batch / P.
    batch_size: Optional[int] = None
    #: Override the base learning rate (None defers to Table 1).
    base_lr: Optional[float] = None
    momentum: float = 0.9
    weight_decay: float = 0.0
    #: Cap on iterations per epoch; None runs full epochs.
    max_iterations_per_epoch: Optional[int] = 20
    seq_len: int = 12
    num_train: Optional[int] = None
    num_test: Optional[int] = None
    #: Extra kwargs forwarded to the compressor constructor.
    compressor_kwargs: Dict[str, object] = field(default_factory=dict)
    #: None, a registered fabric name, a NetworkModel, or its dict form.
    network: Union[None, str, dict, NetworkModel] = None
    eval_every: int = 1
    fused_pipeline: bool = True
    #: Record-once/replay execution on the fused path (see repro.tensor.tape).
    taped: bool = True
    #: Callback specs: registered names or {"name": ..., **kwargs} dicts
    #: (ready Callback instances are accepted but not JSON-serializable).
    callbacks: List[object] = field(default_factory=list)
    #: Synchronization section: None (allreduce + mean, the paper's
    #: Algorithm 1), a SyncSpec, or its dict form.
    sync: Union[None, dict, SyncSpec] = None
    #: Compute-time model for the simulated clock: None, a registered name
    #: ("constant", "lognormal", "straggler", "intermittent_dropout") or a
    #: {"name": ..., **kwargs} dict.  Async sync strategies default to
    #: "constant" when None.
    compute_model: Union[None, str, dict] = None
    #: Seed for the per-rank compute-time draws (independent of ``seed``).
    clock_seed: int = 0
    #: Fault-injection section: None or ``{"model": "none"}`` (the default —
    #: bit-identical to the pre-fault code paths), a registered fault-model
    #: name ("crash_stop", "transient_blackout", "message_loss",
    #: "slow_node"), a :class:`repro.faults.FaultSpec`, or its dict form
    #: (``{"model": ..., "model_kwargs": {...}, "barrier_timeout_s": ...}``).
    faults: Union[None, str, dict, "FaultSpec"] = None
    #: Seed for the fault timeline draws (independent of ``seed`` and
    #: ``clock_seed`` so injected faults never perturb training numerics
    #: or healthy-run timing).
    fault_seed: int = 0
    #: Execution backend: ``"inprocess"`` (the default single-process
    #: executors) or ``"multiprocessing"`` (worker processes over
    #: shared-memory flat buffers, bit-identical numerics).  Validated
    #: against the ``EXECUTION_BACKENDS`` registry.
    backend: str = "inprocess"
    #: Extra kwargs forwarded to the backend constructor, e.g.
    #: ``{"num_workers": 4}``.
    backend_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Client-population section: None (every rank is a client — the
    #: pre-federated behaviour), an int (``num_clients`` with full
    #: participation), a :class:`repro.federated.ClientSpec`, or its dict
    #: form (``{"num_clients": 64, "cohort_size": 8,
    #: "sampler": "uniform_without_replacement", "data_skew": "dirichlet",
    #: "data_skew_kwargs": {"alpha": 0.3}}``).
    clients: Union[None, int, dict, "ClientSpec"] = None

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def resolved_network(self) -> Optional[NetworkModel]:
        """The spec's network as a :class:`NetworkModel` (or None)."""
        if self.network is None or isinstance(self.network, NetworkModel):
            return self.network
        if isinstance(self.network, str):
            return NETWORKS.create(self.network)
        if isinstance(self.network, dict):
            return NetworkModel(**self.network)
        raise SpecError(f"network must be None, a name, a dict or a NetworkModel; "
                        f"got {self.network!r}")

    def resolved_sync(self) -> SyncSpec:
        """The spec's sync section as a :class:`SyncSpec` (defaults when None)."""
        try:
            return SyncSpec.resolve(self.sync)
        except ValueError as error:
            raise SpecError(str(error).splitlines()) from None

    def to_trainer_config(self) -> TrainerConfig:
        """Derive the trainer's config from this spec.

        Every ``TrainerConfig`` field is copied from the identically-named
        spec field — no hand-maintained mirror — with the declarative forms
        (network name/dict) resolved and mutable values deep-copied so one
        trainer run cannot leak state into the spec or a sibling run.
        """
        kwargs = {f.name: getattr(self, f.name)
                  for f in dataclasses.fields(TrainerConfig)}
        kwargs["compressor_kwargs"] = copy.deepcopy(dict(self.compressor_kwargs))
        kwargs["backend_kwargs"] = copy.deepcopy(dict(self.backend_kwargs))
        kwargs["network"] = self.resolved_network()
        # Deep-copied so one trainer run cannot leak sync state into the spec
        # (or a sibling run produced by replace()).
        kwargs["sync"] = copy.deepcopy(self.resolved_sync())
        kwargs["compute_model"] = copy.deepcopy(self.compute_model)
        kwargs["faults"] = copy.deepcopy(self.resolved_faults())
        kwargs["clients"] = copy.deepcopy(self.resolved_clients())
        return TrainerConfig(**kwargs)

    def resolved_faults(self) -> FaultSpec:
        """The spec's faults section as a :class:`FaultSpec` (defaults when
        None)."""
        try:
            return FaultSpec.resolve(self.faults)
        except ValueError as error:
            raise SpecError(str(error).splitlines()) from None

    def resolved_clients(self) -> ClientSpec:
        """The spec's clients section as a :class:`ClientSpec` (defaults
        when None)."""
        try:
            return ClientSpec.resolve(self.clients)
        except ValueError as error:
            raise SpecError(str(error).splitlines()) from None

    def replace(self, **overrides) -> "ExperimentSpec":
        """A copy with ``overrides`` applied and mutable fields deep-copied.

        Unlike a shallow ``dataclasses.replace``, sibling specs produced by
        ``replace`` never share ``compressor_kwargs`` / ``callbacks`` /
        ``network`` objects, so sweeps cannot leak state across cells.
        """
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise SpecError([_unknown_field_message(name, self) for name in sorted(unknown)])
        fresh = copy.deepcopy(self)
        for name, value in overrides.items():
            setattr(fresh, name, value)
        return fresh

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict form (raises on non-serializable callback objects)."""
        payload = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        try:
            return to_jsonable(payload)
        except TypeError as error:
            raise SpecError(f"spec is not serializable: {error}; use registered "
                            f"callback names or {{'name': ...}} dicts instead of "
                            f"instances") from None

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentSpec":
        """Build a spec from a dict, rejecting unknown keys with suggestions."""
        if not isinstance(payload, dict):
            raise SpecError(f"expected a JSON object, got {type(payload).__name__}")
        problems = unknown_field_problems(payload,
                                          [f.name for f in dataclasses.fields(cls)])
        if problems:
            raise SpecError(problems)
        return cls(**payload)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise SpecError(f"spec file {str(path)!r} does not exist") from None
        except json.JSONDecodeError as error:
            raise SpecError(f"spec file {str(path)!r} is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    def to_file(self, path: Union[str, Path], indent: int = 2) -> Path:
        """Write the spec as JSON; round-trips through :meth:`from_file`."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n")
        return path

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ExperimentSpec":
        """Check every field, raising :class:`SpecError` listing all problems."""
        problems: List[str] = []

        # Same normalized lookup the runtime uses, so validate() never rejects
        # a spec that get_model_spec() would accept (e.g. "lstm-ptb").
        if f"{self.model}/{self.preset}" not in MODELS:
            problems.append(f"unknown model/preset {self.model!r}/{self.preset!r}; "
                            f"models: {list_models()}, presets for a model via "
                            f"list_presets(); e.g. fnn3 has {list_presets('fnn3')}")
        try:
            COMPRESSORS.canonical(str(self.algorithm))
        except RegistryKeyError as error:
            problems.append(str(error))

        for name, minimum in (("world_size", 1), ("epochs", 1), ("eval_every", 1),
                              ("seq_len", 2)):
            value = getattr(self, name)
            if not isinstance(value, int) or value < minimum:
                problems.append(f"{name} must be an integer >= {minimum}, got {value!r}")
        for name in ("batch_size", "max_iterations_per_epoch", "num_train", "num_test"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                problems.append(f"{name} must be None or an integer >= 1, got {value!r}")

        if not isinstance(self.compressor_kwargs, dict):
            problems.append(f"compressor_kwargs must be a dict, "
                            f"got {type(self.compressor_kwargs).__name__}")
        if not isinstance(self.fused_pipeline, bool):
            problems.append(f"fused_pipeline must be true/false, got {self.fused_pipeline!r}")
        if not isinstance(self.taped, bool):
            problems.append(f"taped must be true/false, got {self.taped!r}")

        if isinstance(self.network, str) and self.network not in NETWORKS:
            problems.append(f"unknown network {self.network!r}; "
                            f"available: {NETWORKS.list()} (or a latency/bandwidth dict)")
        elif isinstance(self.network, dict):
            missing = {"latency_s", "bandwidth_Bps"} - set(self.network)
            extra = set(self.network) - {"latency_s", "bandwidth_Bps", "name"}
            if missing or extra:
                detail = (f"missing {sorted(missing)}" if missing else "") + \
                         (" and " if missing and extra else "") + \
                         (f"has unexpected keys {sorted(extra)}" if extra else "")
                problems.append(f"network dict {detail}; expected "
                                f"{{'latency_s': <s>, 'bandwidth_Bps': <B/s>, 'name': ...}}")
        elif self.network is not None and not isinstance(self.network, NetworkModel):
            problems.append(f"network must be None, a name, a dict or a NetworkModel, "
                            f"got {type(self.network).__name__}")

        if isinstance(self.sync, (dict, SyncSpec)) or self.sync is None:
            try:
                sync = SyncSpec.resolve(self.sync)
            except ValueError as error:
                problems.extend(str(error).splitlines())
            else:
                world_size = self.world_size if isinstance(self.world_size, int) else None
                problems.extend(sync.problems(world_size=world_size,
                                              algorithm=str(self.algorithm)))
        else:
            problems.append(f"sync must be None, a dict or a SyncSpec, "
                            f"got {type(self.sync).__name__}")

        problems.extend(compute_model_problems(self.compute_model))
        if not isinstance(self.clock_seed, int) or isinstance(self.clock_seed, bool):
            problems.append(f"clock_seed must be an integer, got {self.clock_seed!r}")

        if isinstance(self.faults, (str, dict, FaultSpec)) or self.faults is None:
            try:
                faults = FaultSpec.resolve(self.faults)
            except ValueError as error:
                problems.extend(str(error).splitlines())
            else:
                world_size = self.world_size if isinstance(self.world_size, int) else None
                problems.extend(faults.problems(world_size=world_size))
        else:
            problems.append(f"faults must be None, a model name, a dict or a "
                            f"FaultSpec, got {type(self.faults).__name__}")
        if not isinstance(self.fault_seed, int) or isinstance(self.fault_seed, bool):
            problems.append(f"fault_seed must be an integer, got {self.fault_seed!r}")

        # Backend name, kwargs and feature compatibility — the exact pinned
        # messages the trainer raises at bind time, so a bad combination
        # fails identically from `repro validate` and `repro run`.
        task = MODELS.get(f"{self.model}/{self.preset}").task \
            if f"{self.model}/{self.preset}" in MODELS else None
        sync_strategy, is_async = None, False
        try:
            sync_strategy = SyncSpec.resolve(self.sync).strategy
            if sync_strategy in SYNC_STRATEGIES:
                is_async = bool(getattr(SYNC_STRATEGIES.get(sync_strategy),
                                        "is_async", False))
        except (TypeError, ValueError):
            pass                       # already reported by the sync block
        try:
            faults_active = FaultSpec.resolve(self.faults).active
        except (TypeError, ValueError):
            faults_active = False      # already reported by the faults block
        problems.extend(backend_spec_problems(
            self.backend, self.backend_kwargs,
            world_size=self.world_size if isinstance(self.world_size, int) else None,
            task=task, sync_strategy=sync_strategy, is_async=is_async,
            faults_active=faults_active,
            fused_pipeline=self.fused_pipeline
            if isinstance(self.fused_pipeline, bool) else True))

        # Client-population section — the same pinned messages the trainer
        # raises at construction, so `repro validate` and `repro run` fail
        # identically on a bad combination.
        if isinstance(self.clients, (int, dict, ClientSpec)) \
                and not isinstance(self.clients, bool) or self.clients is None:
            try:
                clients = ClientSpec.resolve(self.clients)
            except ValueError as error:
                problems.extend(str(error).splitlines())
            else:
                try:
                    sync_period = SyncSpec.resolve(self.sync).period
                except (TypeError, ValueError):
                    sync_period = None  # already reported by the sync block
                problems.extend(clients.problems(
                    world_size=self.world_size
                    if isinstance(self.world_size, int) else None,
                    task=task, sync_strategy=sync_strategy,
                    sync_period=sync_period, faults_active=faults_active,
                    fused_pipeline=self.fused_pipeline
                    if isinstance(self.fused_pipeline, bool) else True))
        else:
            problems.append(f"clients must be None, an int, a dict or a "
                            f"ClientSpec, got {type(self.clients).__name__}")

        for entry in self.callbacks:
            if isinstance(entry, Callback):
                continue
            name = entry.get("name") if isinstance(entry, dict) else entry
            if not isinstance(name, str) or name not in CALLBACKS:
                problems.append(f"unknown callback {entry!r}; registered callbacks: "
                                f"{CALLBACKS.list()}")
                continue
            # Constructibility: a name whose class needs kwargs (e.g.
            # "checkpoint" without a path) must fail here, not mid-run.
            kwargs = {k: v for k, v in entry.items() if k != "name"} \
                if isinstance(entry, dict) else {}
            try:
                CALLBACKS.create(name, **kwargs)
            except Exception as error:
                problems.append(f"callback {entry!r} cannot be constructed: {error}")

        if problems:
            raise SpecError(problems)
        return self

    def describe(self) -> str:
        """One human-readable line per field (used by ``repro validate``)."""
        lines = [f"{f.name:26s} = {getattr(self, f.name)!r}"
                 for f in dataclasses.fields(self)]
        return "\n".join(lines)


def _unknown_field_message(name: str, spec: ExperimentSpec) -> str:
    return unknown_field_problems([name],
                                  [f.name for f in dataclasses.fields(spec)])[0]
