"""Literal implementation of Algorithm 1 on a convex test objective.

The trainer in :mod:`repro.core.trainer` runs Algorithm 1 on neural networks;
this module runs the *same* update rule on a distributed least-squares
problem where the optimum ``w*`` is known in closed form.  That gives the
test-suite and the convergence-analysis benchmarks a setting where Theorem 1
("A2SGD converges to w* almost surely") can be checked quantitatively:
``‖w_T − w*‖`` must shrink and end close to dense SGD's.

The objective on worker ``p`` is ``f_p(w) = ½‖A_p w − b_p‖²`` with
``b_p = A_p w* + noise``; the global objective is their average, satisfying
the paper's Assumption 1, and stochastic gradients are computed on random
row mini-batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.comm.backend import CollectiveOp
from repro.comm.inprocess import InProcessWorld
from repro.compress.a2sgd import A2SGDCompressor
from repro.utils.rng import SeedSequenceFactory


@dataclass
class QuadraticProblem:
    """A distributed least-squares instance with a known optimum."""

    dimension: int = 50
    rows_per_worker: int = 200
    world_size: int = 4
    noise_std: float = 0.01
    seed: int = 0
    design: List[np.ndarray] = field(default_factory=list)
    targets: List[np.ndarray] = field(default_factory=list)
    optimum: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        seeds = SeedSequenceFactory(self.seed)
        rng = seeds.for_purpose("problem")
        self.optimum = rng.standard_normal(self.dimension)
        self.design = []
        self.targets = []
        for rank in range(self.world_size):
            worker_rng = seeds.for_worker(rank, "design")
            a = worker_rng.standard_normal((self.rows_per_worker, self.dimension))
            noise = worker_rng.normal(0.0, self.noise_std, size=self.rows_per_worker)
            self.design.append(a)
            self.targets.append(a @ self.optimum + noise)

    def gradient(self, rank: int, w: np.ndarray, batch_rows: np.ndarray) -> np.ndarray:
        """Stochastic gradient of worker ``rank`` on the given row subset."""
        a = self.design[rank][batch_rows]
        b = self.targets[rank][batch_rows]
        residual = a @ w - b
        return (a.T @ residual) / len(batch_rows)

    def distance_to_optimum(self, w: np.ndarray) -> float:
        return float(np.linalg.norm(w - self.optimum))


@dataclass
class DescentTrace:
    """History of one optimization run."""

    distances: List[float] = field(default_factory=list)
    final_weights: Optional[np.ndarray] = None

    @property
    def final_distance(self) -> float:
        return self.distances[-1] if self.distances else float("inf")


def _learning_rate(base_lr: float, t: int) -> float:
    """A step size satisfying Assumption 2: Ση=∞, Ση²<∞."""
    return base_lr / (1.0 + 0.01 * t)


def a2sgd_quadratic_descent(problem: QuadraticProblem, iterations: int = 300,
                            base_lr: float = 0.05, batch_size: int = 16,
                            error_feedback: bool = True,
                            two_means: bool = True,
                            seed: int = 0) -> DescentTrace:
    """Run Algorithm 1 on the quadratic problem and record ‖w_t − w*‖.

    All workers start from the same ``w_0 = 0``; each keeps its own weight
    vector (they diverge through the local error terms) and the run ends with
    the final dense synchronization of lines 9–10.
    """
    seeds = SeedSequenceFactory(seed)
    world = InProcessWorld(problem.world_size)
    compressors = [A2SGDCompressor(error_feedback=error_feedback, two_means=two_means)
                   for _ in range(problem.world_size)]
    weights = [np.zeros(problem.dimension) for _ in range(problem.world_size)]
    trace = DescentTrace()

    for t in range(iterations):
        lr = _learning_rate(base_lr, t)
        payloads = []
        contexts = []
        for rank in range(problem.world_size):
            rows = seeds.for_worker(rank, f"batch{t}").integers(
                0, problem.rows_per_worker, size=batch_size)
            gradient = problem.gradient(rank, weights[rank], rows).astype(np.float32)
            payload, ctx = compressors[rank].compress(gradient)
            payloads.append(payload)
            contexts.append(ctx)
        global_means = world.allreduce(payloads, CollectiveOp.MEAN, logical_bytes=8.0)
        for rank in range(problem.world_size):
            rebuilt = compressors[rank].decompress(global_means[rank], contexts[rank])
            weights[rank] = weights[rank] - lr * rebuilt.astype(np.float64)
        consensus = np.mean(np.stack(weights), axis=0)
        trace.distances.append(problem.distance_to_optimum(consensus))

    # Final dense synchronization (lines 9-10).
    synced = world.allreduce(weights, CollectiveOp.MEAN)
    trace.final_weights = synced[0]
    trace.distances.append(problem.distance_to_optimum(synced[0]))
    return trace


def dense_quadratic_descent(problem: QuadraticProblem, iterations: int = 300,
                            base_lr: float = 0.05, batch_size: int = 16,
                            seed: int = 0) -> DescentTrace:
    """Baseline: default distributed SGD (full gradient Allreduce) on the same problem."""
    seeds = SeedSequenceFactory(seed)
    world = InProcessWorld(problem.world_size)
    weight = np.zeros(problem.dimension)
    trace = DescentTrace()

    for t in range(iterations):
        lr = _learning_rate(base_lr, t)
        gradients = []
        for rank in range(problem.world_size):
            rows = seeds.for_worker(rank, f"batch{t}").integers(
                0, problem.rows_per_worker, size=batch_size)
            gradients.append(problem.gradient(rank, weight, rows))
        averaged = world.allreduce(gradients, CollectiveOp.MEAN)[0]
        weight = weight - lr * averaged
        trace.distances.append(problem.distance_to_optimum(weight))

    trace.final_weights = weight
    return trace
