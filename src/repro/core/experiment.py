"""High-level experiment runner used by examples and the benchmark harness.

An :class:`ExperimentConfig` describes one cell of the paper's evaluation
grid (model × algorithm × worker count); :func:`run_experiment` trains it and
returns an :class:`ExperimentResult` with the convergence curve, timing
breakdown and traffic accounting, ready to be rendered into the paper's
figures and tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.comm.network_model import NetworkModel
from repro.core.metrics import TrainingMetrics
from repro.core.timeline import IterationTimeline
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.utils.serialization import to_jsonable


@dataclass
class ExperimentConfig:
    """One (model, algorithm, world size) experiment."""

    model: str = "fnn3"
    preset: str = "tiny"
    algorithm: str = "a2sgd"
    world_size: int = 4
    epochs: int = 3
    seed: int = 0
    max_iterations_per_epoch: Optional[int] = 20
    batch_size: Optional[int] = None
    base_lr: Optional[float] = None
    num_train: Optional[int] = None
    num_test: Optional[int] = None
    seq_len: int = 12
    compressor_kwargs: Dict[str, object] = field(default_factory=dict)
    network: Optional[NetworkModel] = None

    def trainer_config(self) -> TrainerConfig:
        """Translate into the trainer's configuration object."""
        return TrainerConfig(
            model=self.model,
            preset=self.preset,
            algorithm=self.algorithm,
            world_size=self.world_size,
            epochs=self.epochs,
            seed=self.seed,
            batch_size=self.batch_size,
            base_lr=self.base_lr,
            max_iterations_per_epoch=self.max_iterations_per_epoch,
            seq_len=self.seq_len,
            num_train=self.num_train,
            num_test=self.num_test,
            compressor_kwargs=dict(self.compressor_kwargs),
            network=self.network,
        )


@dataclass
class ExperimentResult:
    """Everything a figure/table needs about one finished experiment."""

    config: ExperimentConfig
    metrics: TrainingMetrics
    timeline: IterationTimeline
    num_parameters: int
    wire_bits_per_iteration: float
    wall_time_s: float

    @property
    def final_metric(self) -> float:
        return self.metrics.final_metric

    @property
    def metric_name(self) -> str:
        return self.metrics.metric_name

    def as_dict(self) -> Dict[str, object]:
        return to_jsonable({
            "config": self.config,
            "metrics": self.metrics.as_dict(),
            "timeline": self.timeline.as_dict(),
            "num_parameters": self.num_parameters,
            "wire_bits_per_iteration": self.wire_bits_per_iteration,
            "wall_time_s": self.wall_time_s,
        })


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Train one configuration end to end and collect its results."""
    start = time.perf_counter()
    trainer = DistributedTrainer(config.trainer_config())
    metrics = trainer.train()
    wall = time.perf_counter() - start
    return ExperimentResult(
        config=config,
        metrics=metrics,
        timeline=trainer.timeline,
        num_parameters=trainer.num_parameters,
        wire_bits_per_iteration=trainer.wire_bits_per_iteration,
        wall_time_s=wall,
    )


def run_algorithm_sweep(base: ExperimentConfig,
                        algorithms: List[str]) -> Dict[str, ExperimentResult]:
    """Run the same experiment for several algorithms (one Figure 3 panel)."""
    results: Dict[str, ExperimentResult] = {}
    for algorithm in algorithms:
        config = ExperimentConfig(**{**base.__dict__, "algorithm": algorithm})
        results[algorithm] = run_experiment(config)
    return results
