"""High-level experiment runner used by examples and the benchmark harness.

An :class:`~repro.core.spec.ExperimentSpec` describes one cell of the
paper's evaluation grid (model × algorithm × world size × network);
:func:`run_experiment` trains it and returns an :class:`ExperimentResult`
with the convergence curve, timing breakdown and traffic accounting, ready
to be rendered into the paper's figures and tables.

:class:`ExperimentConfig` is the pre-spec name of the same object, kept as a
constructor-kwarg-compatible deprecation shim: it *is* an ``ExperimentSpec``
(every old keyword still works) and its ``trainer_config()`` method forwards
to :meth:`ExperimentSpec.to_trainer_config`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.metrics import TrainingMetrics
from repro.core.spec import ExperimentSpec
from repro.core.timeline import IterationTimeline
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.utils.serialization import to_jsonable


class ExperimentConfig(ExperimentSpec):
    """Deprecated alias of :class:`~repro.core.spec.ExperimentSpec`.

    Kept so code written against the old constructor-kwarg API keeps
    working unchanged; new code should import ``ExperimentSpec``.
    """

    def trainer_config(self) -> TrainerConfig:
        """Translate into the trainer's configuration object (old name)."""
        return self.to_trainer_config()


@dataclass
class ExperimentResult:
    """Everything a figure/table needs about one finished experiment."""

    config: ExperimentSpec
    metrics: TrainingMetrics
    timeline: IterationTimeline
    num_parameters: int
    wire_bits_per_iteration: float
    wall_time_s: float
    #: Virtual-clock summary (``SimReport.as_dict()`` minus the raw event
    #: log) when the run tracked simulated time; None otherwise.
    sim: Optional[Dict[str, object]] = None
    #: Client-participation summary (the population's ``summary()`` dict)
    #: when the spec configured a federated client population; None
    #: otherwise.
    clients: Optional[Dict[str, object]] = None

    @property
    def final_metric(self) -> float:
        return self.metrics.final_metric

    @property
    def metric_name(self) -> str:
        return self.metrics.metric_name

    def as_dict(self) -> Dict[str, object]:
        return to_jsonable({
            "config": self.config,
            "metrics": self.metrics.as_dict(),
            "timeline": self.timeline.as_dict(),
            "num_parameters": self.num_parameters,
            "wire_bits_per_iteration": self.wire_bits_per_iteration,
            "wall_time_s": self.wall_time_s,
            "sim": self.sim,
            "clients": self.clients,
        })


def run_experiment(config: ExperimentSpec,
                   callbacks: Optional[Iterable] = None) -> ExperimentResult:
    """Train one spec end to end and collect its results.

    ``callbacks`` (instances, registered names, or ``{"name": ...}`` dicts)
    run in addition to any callbacks declared on the spec itself.
    """
    start = time.perf_counter()
    all_callbacks = [*config.callbacks, *(callbacks or [])]
    trainer = DistributedTrainer(config.to_trainer_config(), callbacks=all_callbacks)
    try:
        metrics = trainer.train()
    finally:
        # Backends with external resources (worker processes, shared-memory
        # segments) must release them even when training raises.
        trainer.close()
    wall = time.perf_counter() - start
    sim = None
    if trainer.sim_report is not None:
        sim = trainer.sim_report.as_dict()
        sim.pop("events", None)  # the raw event log is checkpoint-scale data
    return ExperimentResult(
        config=config,
        metrics=metrics,
        timeline=trainer.timeline,
        num_parameters=trainer.num_parameters,
        wire_bits_per_iteration=trainer.wire_bits_per_iteration,
        wall_time_s=wall,
        sim=sim,
        clients=trainer.population.summary()
        if trainer.population is not None else None,
    )


def run_algorithm_sweep(base: ExperimentSpec,
                        algorithms: List[str]) -> Dict[str, ExperimentResult]:
    """Run the same experiment for several algorithms (one Figure 3 panel).

    Each cell gets an independent deep copy of ``base`` via
    :meth:`ExperimentSpec.replace`, so mutable fields (``compressor_kwargs``,
    ``network``) are never shared between runs.
    """
    results: Dict[str, ExperimentResult] = {}
    for algorithm in algorithms:
        results[algorithm] = run_experiment(base.replace(algorithm=algorithm))
    return results
