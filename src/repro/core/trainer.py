"""Data-parallel distributed SGD trainer over simulated workers.

The trainer maintains one model replica, data shard, optimizer and compressor
per simulated worker and runs them in lockstep, exactly mirroring Algorithm 1
of the paper:

* each worker computes a local gradient on its fraction of the global
  mini-batch (line 2);
* the configured :class:`~repro.sync.SyncStrategy` synchronizes the
  gradients — the default ``allreduce`` strategy performs the compression +
  collective exchange + reconstruction (lines 3–6) exactly as the paper
  prescribes, while ``local_sgd`` / ``gossip`` defer or decentralize the
  exchange (see :mod:`repro.sync`);
* each worker applies its gradient with SGD/LARS and the Table-1
  learning-rate policy (line 7), after which the strategy may exchange
  *parameters* (local-SGD periodic averaging, gossip neighbour averaging);
* after the last iteration the replicas are consolidated with one dense
  exchange (lines 9–10), routed through the strategy's aggregator.

Note that with A2SGD the replicas genuinely diverge during training (each
worker adds back its own error vector), so the trainer really does keep
``world_size`` models — this is essential to reproducing the algorithm's
behaviour rather than an implementation convenience.

Cross-cutting concerns — metrics collection, timeline recording, evaluation
cadence, checkpointing, progress logging — live in
:mod:`repro.core.callbacks`, not here: the trainer drives the
``Callback`` lifecycle hooks and new per-iteration behaviours plug in as
callbacks without touching this file.  The fused and seed paths fire the
same hooks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.backends import EXECUTION_BACKENDS, backend_spec_problems
from repro.comm.inprocess import InProcessWorld
from repro.comm.network_model import NetworkModel
from repro.compress.registry import get_compressor
from repro.core.batched_replicas import BatchedLanguageModelExecutor
from repro.core.callbacks import (
    Callback,
    CallbackList,
    EvaluationCallback,
    MetricsCallback,
    TimelineCallback,
    TrainState,
    resolve_callbacks,
)
from repro.core.flat_buffer import WorldFlatBuffers
from repro.core.flatten import (
    average_parameters,
    flatten_gradients,
    flatten_parameters,
    unflatten_into_gradients,
    unflatten_into_parameters,
)
from repro.core.metrics import TrainingMetrics, evaluate_classifier, evaluate_language_model
from repro.core.synchronizer import GradientSynchronizer
from repro.core.timeline import IterationTimeline
from repro.data.dataloader import DataLoader, shard_dataset
from repro.data.partition import partition_clients
from repro.data.registry import get_dataset
from repro.faults import FaultSpec
from repro.federated import ClientPopulation, ClientSpec
from repro.data.synthetic_text import LanguageModelBatcher
from repro.models.registry import ModelSpec, get_model_spec
from repro.nn.module import Module
from repro.optim.lars import LARS, lars_flat_update
from repro.optim.lr_schedule import build_lr_policy
from repro.optim.registry import OPTIMIZERS
from repro.optim.sgd import SGD, sgd_flat_update
from repro.sim.compute import resolve_compute_model
from repro.sim.engine import LockstepSimulator, SimulationEngine
from repro.sync import SyncSpec, merge_reports
from repro.tensor import Tensor, functional as F
from repro.utils.rng import SeedSequenceFactory, replica_init_seed


@dataclass
class TrainerConfig:
    """Configuration of one distributed training run."""

    model: str = "fnn3"
    preset: str = "tiny"
    algorithm: str = "a2sgd"
    world_size: int = 4
    epochs: int = 3
    seed: int = 0
    #: Per-worker batch size; defaults to Table 1's global batch divided by P.
    batch_size: Optional[int] = None
    #: Override the base learning rate (defaults to Table 1).
    base_lr: Optional[float] = None
    momentum: float = 0.9
    weight_decay: float = 0.0
    #: Cap on iterations per epoch (keeps CI runs fast); None = full epoch.
    max_iterations_per_epoch: Optional[int] = None
    #: Truncated-BPTT window for language models.
    seq_len: int = 12
    #: Dataset size overrides (None = dataset defaults).
    num_train: Optional[int] = None
    num_test: Optional[int] = None
    #: Extra kwargs forwarded to the compressor constructor.
    compressor_kwargs: dict = field(default_factory=dict)
    #: Network model; defaults to the paper's 100 Gbps InfiniBand.
    network: Optional[NetworkModel] = None
    #: Evaluate every k epochs (always evaluates on the last epoch).
    eval_every: int = 1
    #: Use the zero-copy fused pipeline: flat (P, n) gradient/parameter
    #: buffers, batched compressor kernels and whole-buffer optimizer steps,
    #: plus a batched replica executor (hand-derived for MLPs, stacked-graph
    #: autograd for conv/recurrent models).  False runs the seed's per-rank
    #: loops — kept for A/B benchmarking and as the reference semantics the
    #: fused path is tested against.
    fused_pipeline: bool = True
    #: Record the batched executor's graph once per input signature and replay
    #: it on later iterations (bit-identical; see repro.tensor.tape).  Only
    #: affects the fused pipeline; models that record unreplayable ops (e.g.
    #: active dropout) fall back to eager batched execution automatically.
    taped: bool = True
    #: Synchronization setup: None (the default allreduce + mean, i.e. the
    #: paper's Algorithm 1), a :class:`repro.sync.SyncSpec`, or its dict form
    #: (``{"strategy": "gossip", "topology": "ring",
    #: "parameter_compression": "topk", ...}``).
    sync: Optional[object] = None
    #: Compute-time model for the simulated clock: None, a registered name
    #: ("constant", "lognormal", "straggler", "intermittent_dropout"), a
    #: ``{"name": ..., **kwargs}`` dict, or a
    #: :class:`repro.sim.compute.ComputeTimeModel` instance.  Async
    #: strategies always run on the virtual clock (defaulting to
    #: "constant"); with a synchronous strategy a non-None model attaches a
    #: :class:`repro.sim.engine.LockstepSimulator` that prices each
    #: iteration without touching the numerics.
    compute_model: Optional[object] = None
    #: Seed for the per-rank compute-time draws (independent of ``seed`` so
    #: timing noise never perturbs the training numerics).
    clock_seed: int = 0
    #: Fault-injection setup: None (the default — no faults, bit-identical
    #: to the pre-fault code paths), a registered fault-model name
    #: ("crash_stop", "transient_blackout", "message_loss", "slow_node"),
    #: a :class:`repro.faults.FaultSpec`, or its dict form (the experiment
    #: spec's ``faults`` section).
    faults: Optional[object] = None
    #: Seed for the fault schedule draws (``--seed-faults``); independent of
    #: ``seed`` and ``clock_seed`` so the same fault timeline can replay
    #: against different training/timing randomness.
    fault_seed: int = 0
    #: Execution backend: where forward/backward passes run.  ``"inprocess"``
    #: (the default) is the single-process batched/taped executor;
    #: ``"multiprocessing"`` fans rank shards out to worker processes over
    #: shared-memory flat buffers, bit-identical to inprocess.  See
    #: :mod:`repro.backends`.
    backend: str = "inprocess"
    #: Extra kwargs forwarded to the backend constructor (e.g.
    #: ``{"num_workers": 4}`` for multiprocessing).
    backend_kwargs: dict = field(default_factory=dict)
    #: Client-population setup: None (every rank is a client — the
    #: pre-federated behaviour), an int (``num_clients``), a
    #: :class:`repro.federated.ClientSpec`, or its dict form (the experiment
    #: spec's ``clients`` section).
    clients: Optional[object] = None


class DistributedTrainer:
    """Simulated data-parallel training of one model with one algorithm.

    ``callbacks`` accepts :class:`~repro.core.callbacks.Callback` instances,
    registered callback names, or ``{"name": ..., **kwargs}`` dicts; they run
    after the built-in timeline/evaluation/metrics callbacks, in order.
    """

    def __init__(self, config: TrainerConfig, callbacks: Optional[Iterable] = None):
        if config.world_size < 1:
            raise ValueError("world_size must be at least 1")
        if config.epochs < 1:
            raise ValueError("epochs must be at least 1")
        self.config = config
        self.spec: ModelSpec = get_model_spec(config.model, config.preset)
        self.seeds = SeedSequenceFactory(config.seed)
        self.world = InProcessWorld(config.world_size, network=config.network)

        # Replicas: identical initialization on every worker (Algorithm 1
        # line 1).  The seed derivation is centralized in replica_init_seed so
        # out-of-process backends rebuilding a rank's replica stay
        # bit-identical by construction.
        self.replicas: List[Module] = [
            self.spec.build(seed=replica_init_seed(config.seed, rank))
            for rank in range(config.world_size)]
        self.num_parameters = self.replicas[0].num_parameters()

        # Compressors: independent instances so error feedback stays local.
        self.compressors = [get_compressor(config.algorithm, **config.compressor_kwargs)
                            for _ in range(config.world_size)]
        # Synchronization strategy (when/what ranks exchange) composed with an
        # aggregator (how payloads combine); the default SyncSpec() is the
        # paper's Algorithm 1 and reproduces the seed trainer bit for bit.
        self.sync_spec = SyncSpec.resolve(config.sync)
        self.sync_strategy = self.sync_spec.build(self.world, self.compressors)
        #: Whether the bound strategy trains on the virtual-clock event loop.
        self.is_async = bool(getattr(self.sync_strategy, "is_async", False))

        # Execution backend: where the forward/backward passes run.  Resolved
        # early (faults too, which the compatibility check needs) and checked
        # with the same pinned messages ExperimentSpec.validate() emits, so a
        # bad combination fails identically from either entry point.
        self.fault_spec = FaultSpec.resolve(config.faults)
        backend_problems = backend_spec_problems(
            config.backend, config.backend_kwargs,
            world_size=config.world_size, task=self.spec.task,
            sync_strategy=self.sync_spec.strategy, is_async=self.is_async,
            faults_active=self.fault_spec.active,
            fused_pipeline=config.fused_pipeline)
        if backend_problems:
            raise ValueError("; ".join(backend_problems))
        self.backend = EXECUTION_BACKENDS.create(
            EXECUTION_BACKENDS.canonical(config.backend),
            **config.backend_kwargs)
        # Client-population layer: a logical population of N clients mapped
        # lazily onto the P replica slots, checked with the same pinned
        # messages ExperimentSpec.validate() emits.
        self.clients_spec = ClientSpec.resolve(config.clients)
        client_problems = self.clients_spec.problems(
            world_size=config.world_size, task=self.spec.task,
            sync_strategy=self.sync_spec.strategy,
            sync_period=self.sync_spec.period,
            faults_active=self.fault_spec.active,
            fused_pipeline=config.fused_pipeline)
        if client_problems:
            raise ValueError("; ".join(client_problems))
        self.population: Optional[ClientPopulation] = \
            ClientPopulation(self.clients_spec, config.world_size) \
            if self.clients_spec.enabled else None
        # Deprecated alias kept for callbacks/benchmarks written against the
        # pre-strategy API; delegates to an allreduce+mean strategy.
        self.synchronizer = GradientSynchronizer(self.world, self.compressors)

        # Learning-rate policy and optimizers (LARS when Table 1 says so).
        self.base_lr = config.base_lr if config.base_lr is not None else self.spec.base_lr
        self.lr_policy, use_lars = build_lr_policy(self.spec.lr_policy,
                                                   world_size=config.world_size,
                                                   total_epochs=config.epochs)
        optimizer_cls = OPTIMIZERS.get("lars" if use_lars else "sgd")
        self.optimizers = [optimizer_cls(replica.parameters(), lr=self.base_lr,
                                         momentum=config.momentum,
                                         weight_decay=config.weight_decay)
                           for replica in self.replicas]

        # Fused pipeline: adopt every replica into one (P, n) flat world so
        # gradients flow backward pass → compressor → optimizer with no
        # flatten/unflatten copies and one batched kernel call per stage.
        self.flat_world: Optional[WorldFlatBuffers] = None
        self.executor = None
        if config.fused_pipeline or self.is_async:
            # Async strategies operate directly on the flat (P, n) rows (one
            # rank's gradient/update per event), so they require the flat
            # world even when the lockstep fused pipeline is off.
            self.flat_world = self.backend.create_world(self.replicas)
            self._velocity_matrix = np.zeros_like(self.flat_world.param_matrix)
            self._step_scratch = np.empty_like(self.flat_world.param_matrix)
            for rank, optimizer in enumerate(self.optimizers):
                optimizer.bind_flat(self.flat_world.replica_buffers[rank],
                                    velocity_store=self._velocity_matrix[rank])
            if not self.is_async:
                # The batched executor stacks all ranks into one graph — the
                # event loop computes one rank at a time, eagerly.
                self.executor = self.backend.create_executor(self)

        self._setup_data()
        # The stacked LM executor needs every rank to contribute equally-shaped
        # windows; uneven shards (batch not divisible by P) use the loop.
        if (isinstance(self.executor, BatchedLanguageModelExecutor)
                and len({shard.batch_size for shard in self.lm_shards}) != 1):
            self.executor = None
        self.metrics = TrainingMetrics(metric_name=self.spec.metric)
        self.timeline = IterationTimeline()
        self._global_iteration = 0
        #: Live worker rows snapshotted just before finalize() collapsed them
        #: (async runs only) — lets checkpoints resume per-rank trajectories.
        self._async_worker_rows: Optional[np.ndarray] = None

        # Simulated time.  Async strategies always train on the virtual-clock
        # event engine (constant compute model unless configured otherwise);
        # synchronous strategies keep their lockstep numerics and optionally
        # attach a LockstepSimulator that prices each iteration.
        self.sim_engine: Optional[SimulationEngine] = None
        self.lockstep_sim: Optional[LockstepSimulator] = None
        compute_model = resolve_compute_model(config.compute_model)
        if self.is_async:
            if compute_model is None:
                compute_model = resolve_compute_model("constant")
            self.sim_engine = SimulationEngine(self, compute_model,
                                               config.clock_seed)
        else:
            if compute_model is None and self.fault_spec.active:
                # Fault schedules and recovery penalties live on the
                # simulated clock; injecting faults implies pricing time.
                compute_model = resolve_compute_model("constant")
            if compute_model is not None:
                self.lockstep_sim = LockstepSimulator(config.world_size,
                                                      compute_model,
                                                      config.clock_seed)

        # Fault layer: membership mask + injector.  ``intermittent_dropout``
        # compute stalls are bridged to membership absences on the lockstep
        # paths (a dropped rank is *absent*, not slow; the timing-only
        # behaviour lives on as the ``slow_node`` fault model).
        bridge = (self.lockstep_sim is not None
                  and compute_model is not None
                  and compute_model.name == "intermittent_dropout")
        self.fault_injector = self.fault_spec.build(
            config.world_size, seed=config.fault_seed,
            bridge_compute_stalls=bridge)
        self._last_losses: Optional[np.ndarray] = None
        if self.fault_injector is not None:
            self.world.membership = self.fault_injector.membership
            if self.sim_engine is not None:
                self.sim_engine.injector = self.fault_injector
                self.sim_engine.report.fault = self.fault_injector.report
            elif self.lockstep_sim is not None:
                self.lockstep_sim.report.fault = self.fault_injector.report
                # Fault schedules are queried by simulated time: measured
                # kernel wall time must not leak into the clock or the
                # fault timeline would not be reproducible.
                self.lockstep_sim.deterministic = True

        # Lifecycle plugins.  The built-ins reproduce the seed trainer's
        # behaviour (timeline first so metrics sees fresh compute totals,
        # evaluation before metrics so the epoch row has its metric value);
        # user callbacks run after them in the order given.
        self.state = TrainState(trainer=self)
        self.callbacks = CallbackList([TimelineCallback(), EvaluationCallback(),
                                       MetricsCallback(), *resolve_callbacks(callbacks)])

    # ------------------------------------------------------------------ #
    # data pipelines
    # ------------------------------------------------------------------ #
    def _setup_data(self) -> None:
        config = self.config
        if self.spec.task == "classification":
            train, test = get_dataset(self.spec.dataset, seed=config.seed,
                                      num_train=config.num_train, num_test=config.num_test)
            self.test_dataset = test
            per_worker_batch = config.batch_size or max(1, self.spec.batch_size // config.world_size)
            if self.population is not None:
                self._setup_federated_data(train, per_worker_batch)
            else:
                self.loaders = []
                for rank in range(config.world_size):
                    shard = shard_dataset(train, rank, config.world_size, shuffle_seed=config.seed)
                    loader = DataLoader(shard, batch_size=per_worker_batch, shuffle=True,
                                        drop_last=True, rng=self.seeds.for_worker(rank, "batching"))
                    self.loaders.append(loader)
                self.iterations_per_epoch = min(len(loader) for loader in self.loaders)
        elif self.spec.task == "language_model":
            train_tokens, test_tokens, vocab = get_dataset(self.spec.dataset, seed=config.seed,
                                                           num_train=config.num_train,
                                                           num_test=config.num_test)
            global_batch = config.batch_size * config.world_size if config.batch_size \
                else self.spec.batch_size
            global_batch = max(config.world_size, min(global_batch, 64))
            batcher = LanguageModelBatcher(train_tokens, global_batch, config.seq_len)
            self.lm_shards = [batcher.shard(rank, config.world_size)
                              for rank in range(config.world_size)]
            self.test_batcher = LanguageModelBatcher(test_tokens,
                                                     batch_size=min(16, global_batch),
                                                     seq_len=config.seq_len)
            self.iterations_per_epoch = min(len(shard) for shard in self.lm_shards)
        else:  # pragma: no cover - registry only contains the two tasks
            raise ValueError(f"unknown task {self.spec.task!r}")
        if config.max_iterations_per_epoch is not None:
            self.iterations_per_epoch = min(self.iterations_per_epoch,
                                            config.max_iterations_per_epoch)
        if self.iterations_per_epoch < 1:
            raise ValueError("dataset too small for the requested batch size / world size")

    def _setup_federated_data(self, train, per_worker_batch: int) -> None:
        """Partition the training set across the logical client population.

        Identity mode (``full`` sampler, N == P) keeps the trainer's
        stateful per-rank DataLoaders over the per-client shards — with the
        default iid policy those shards are bit-identical to
        :func:`shard_dataset`, preserving the fedavg ≡ local_sgd
        equivalence.  Sampled-cohort mode binds the N shards to the
        population instead and draws batches statelessly per
        ``(client, iteration)``, so only the cohort's data is ever touched
        and checkpoint resume needs no shuffle replay.
        """
        config = self.config
        population = self.population
        shards = partition_clients(train, population.num_clients,
                                   policy=self.clients_spec.data_skew,
                                   seed=config.seed,
                                   **self.clients_spec.data_skew_kwargs)
        if population.identity_assignment:
            self.loaders = []
            for client in range(config.world_size):
                loader = DataLoader(shards[client], batch_size=per_worker_batch,
                                    shuffle=True, drop_last=True,
                                    rng=self.seeds.for_worker(client, "batching"))
                self.loaders.append(loader)
            self.iterations_per_epoch = min(len(loader) for loader in self.loaders)
        else:
            population.bind_data(shards, per_worker_batch, seed=config.seed)
            self.loaders = []
            self.iterations_per_epoch = max(
                1, len(train) // (population.cohort_size * per_worker_batch))

    # ------------------------------------------------------------------ #
    # single-iteration step
    # ------------------------------------------------------------------ #
    def _classification_gradients(self, batches: Sequence) -> tuple[List[np.ndarray], float]:
        """Forward/backward on every replica; returns flat gradients and mean loss."""
        gradients: List[np.ndarray] = []
        losses: List[float] = []
        for replica, (inputs, targets) in zip(self.replicas, batches):
            replica.zero_grad()
            logits = replica(Tensor(inputs))
            loss = F.cross_entropy(logits, targets)
            loss.backward()
            gradients.append(flatten_gradients(replica))
            losses.append(loss.item())
        self._last_losses = np.asarray(losses, dtype=np.float64)
        return gradients, float(np.mean(losses))

    def _language_model_gradients(self, batches: Sequence, states: List
                                  ) -> tuple[List[np.ndarray], float, List]:
        gradients: List[np.ndarray] = []
        losses: List[float] = []
        new_states: List = []
        for rank, (replica, (inputs, targets)) in enumerate(zip(self.replicas, batches)):
            replica.zero_grad()
            logits, state = replica(inputs, states[rank])
            loss = F.cross_entropy(logits, targets.reshape(-1))
            loss.backward()
            gradients.append(flatten_gradients(replica))
            losses.append(loss.item())
            new_states.append(replica.detach_state(state))
        self._last_losses = np.asarray(losses, dtype=np.float64)
        return gradients, float(np.mean(losses)), new_states

    def _apply_gradients(self, gradients: Sequence[np.ndarray], epoch_progress: float) -> float:
        lr = self.lr_policy.lr_at(epoch_progress, self.base_lr)
        dead = self._dead_ranks()
        for rank, (replica, optimizer, gradient) in enumerate(
                zip(self.replicas, self.optimizers, gradients)):
            if dead is not None and rank in dead:
                continue  # a down rank takes no optimizer step
            unflatten_into_gradients(replica, gradient)
            optimizer.set_lr(max(lr, 1e-12))
            optimizer.step()
        return max(lr, 1e-12)

    # ------------------------------------------------------------------ #
    # fused (zero-copy) iteration path
    # ------------------------------------------------------------------ #
    def _classification_gradients_fused(self, batches: Sequence) -> tuple[np.ndarray, float]:
        """Gradients for all replicas directly in the flat (P, n) matrix."""
        world = self.flat_world
        if self.executor is not None:
            # The batched executor writes every parameter's gradient, so no
            # zeroing pass is needed.
            inputs = np.stack([batch[0] for batch in batches])
            targets = np.stack([batch[1] for batch in batches])
            losses = self.executor.forward_backward(inputs, targets)
            self._last_losses = np.asarray(losses, dtype=np.float64)
            return world.grad_matrix, float(np.mean(losses))
        else:
            world.zero_grads()
            losses = []
            for replica, (inputs, targets) in zip(self.replicas, batches):
                logits = replica(Tensor(inputs))
                loss = F.cross_entropy(logits, targets)
                loss.backward()                       # accumulates into the matrix
                losses.append(loss.item())
        self._last_losses = np.asarray(losses, dtype=np.float64)
        return world.grad_matrix, float(np.mean(losses))

    def _language_model_gradients_fused(self, batches: Sequence, states
                                        ) -> tuple[np.ndarray, float, object]:
        world = self.flat_world
        if self.executor is not None:
            # Batched BPTT: one graph for all replicas, stacked carried state.
            tokens = np.stack([batch[0] for batch in batches])
            targets = np.stack([batch[1] for batch in batches])
            losses, new_state = self.executor.forward_backward(tokens, targets, states)
            self._last_losses = np.asarray(losses, dtype=np.float64)
            return world.grad_matrix, float(np.mean(losses)), new_state
        world.zero_grads()
        losses: List[float] = []
        new_states: List = []
        for rank, (replica, (inputs, targets)) in enumerate(zip(self.replicas, batches)):
            logits, state = replica(inputs, states[rank])
            loss = F.cross_entropy(logits, targets.reshape(-1))
            loss.backward()
            losses.append(loss.item())
            new_states.append(replica.detach_state(state))
        self._last_losses = np.asarray(losses, dtype=np.float64)
        return world.grad_matrix, float(np.mean(losses)), new_states

    def _apply_gradients_fused(self, new_matrix: np.ndarray, epoch_progress: float) -> float:
        """One whole-world optimizer step on the stacked (P, n) matrices.

        All per-rank optimizers share identical hyperparameters and their
        momentum rows alias ``self._velocity_matrix``, so a single fused
        kernel call updates every replica; ``state_dict``/checkpointing still
        observe per-rank state through the row views.
        """
        lr = max(self.lr_policy.lr_at(epoch_progress, self.base_lr), 1e-12)
        for optimizer in self.optimizers:
            optimizer.set_lr(lr)
        reference = self.optimizers[0]
        world = self.flat_world
        # The fused kernel updates every row; a down rank must not advance,
        # so its parameter/velocity rows are snapshotted and put back.
        dead = self._dead_ranks()
        if dead:
            saved_params = world.param_matrix[dead].copy()
            saved_velocity = self._velocity_matrix[dead].copy()
        if isinstance(reference, LARS):
            lars_flat_update(world.param_matrix, new_matrix,
                             world.layout.offsets[:-1], world.layout.sizes, lr,
                             reference.momentum, reference.weight_decay,
                             reference.trust_coefficient, reference.eps,
                             velocity=self._velocity_matrix, scratch=self._step_scratch)
        else:
            sgd_flat_update(world.param_matrix, new_matrix, lr,
                            reference.momentum, reference.weight_decay,
                            reference.nesterov,
                            velocity=self._velocity_matrix, scratch=self._step_scratch)
        if dead:
            world.param_matrix[dead] = saved_params
            self._velocity_matrix[dead] = saved_velocity
        return lr

    # ------------------------------------------------------------------ #
    # post-step parameter phase (local-SGD averaging, gossip)
    # ------------------------------------------------------------------ #
    def _parameter_phase(self, report, fused: bool):
        """Let the strategy exchange parameters after the optimizer step.

        ``post_step_pending`` gates the whole phase: gradient-only
        strategies — and local-SGD iterations between sync points — cost one
        method call, so the seed path never flattens parameters it will not
        exchange.  The fused path hands over live views of the ``(P, n)``
        parameter matrix (zero copies).  Any parameter-exchange report is
        folded into the iteration's gradient report so the timeline prices
        it.
        """
        if not self.sync_strategy.post_step_pending():
            return report
        if fused:
            rows = [self.flat_world.param_matrix[p]
                    for p in range(self.config.world_size)]
            param_report = self.sync_strategy.post_step(rows)
        else:
            vectors = [flatten_parameters(m) for m in self.replicas]
            param_report = self.sync_strategy.post_step(vectors)
            if param_report is not None:
                for replica, vector in zip(self.replicas, vectors):
                    unflatten_into_parameters(replica, vector)
        return merge_reports(report, param_report)

    # ------------------------------------------------------------------ #
    # fault layer (lockstep paths; the async engine has its own gate)
    # ------------------------------------------------------------------ #
    def _dead_ranks(self) -> Optional[List[int]]:
        """Ranks currently out of membership, or ``None`` for a healthy world
        (the fast path — zero overhead without a fault layer)."""
        injector = self.fault_injector
        if injector is None or injector.membership.all_alive:
            return None
        return injector.membership.dead_ranks()

    def _fault_phase(self, state: TrainState) -> tuple:
        """Advance the fault layer at a lockstep iteration boundary.

        Rejoins run first (a rank whose outage ended catches up through a
        priced dense re-sync before the iteration), then new outages flip
        membership — model-driven schedules plus ``intermittent_dropout``
        compute stalls bridged to absences — each charging the barrier's
        timeout + bounded-backoff discovery penalty.  Message-loss models
        price reliable retransmission of the survivors' lockstep sends.

        Returns ``(alive_ranks_or_None, extra_simulated_seconds)``; with no
        injector this is ``(None, 0.0)`` and nothing else runs.
        """
        injector = self.fault_injector
        if injector is None:
            return None, 0.0
        membership = injector.membership
        now = self.lockstep_sim.now
        extra_s = 0.0
        world_size = self.config.world_size
        for rank in range(world_size):
            if membership.is_alive(rank):
                continue
            if injector.down_interval(rank, now) is not None:
                continue  # still inside its outage (or crashed for good)
            extra_s += self._rejoin_rank(rank)
        bridged = set()
        if injector.bridge_compute_stalls:
            draws = self.lockstep_sim.draw_iteration()
            bridged = {rank for rank, (_, stall) in enumerate(draws)
                       if stall > 0.0}
        for rank in range(world_size):
            if not membership.is_alive(rank):
                injector.report.lost_steps += 1
                continue
            if injector.down_interval(rank, now) is not None or rank in bridged:
                membership.set_alive(rank, False)
                injector.report.record_down(rank)
                injector.report.lost_steps += 1
                extra_s += injector.discovery_penalty_s()
        if membership.num_alive == 0:
            # The whole world is down at once.  Bridged compute dropouts
            # last a single iteration, so those ranks return immediately;
            # otherwise the world idles until the first scheduled outage
            # ends, and only a permanent all-crash (no finite end anywhere)
            # stops the run instead of deadlocking a collective over zero
            # participants.
            if all(injector.down_interval(rank, now) is not None
                   for rank in range(world_size)):
                ends = []
                for rank in range(world_size):
                    interval = injector.down_interval(rank, now)
                    if math.isfinite(interval[1]):
                        ends.append(interval[1])
                if not ends:
                    state.stop_requested = True
                    return [], extra_s
                horizon = min(ends)
                extra_s += horizon - now
                now = horizon
            for rank in range(world_size):
                if injector.down_interval(rank, now) is None:
                    extra_s += self._rejoin_rank(rank)
        if injector.affects_timing:
            # slow_node keeps the legacy timing-only reading: per-rank
            # stalls run in parallel and the slowest gates the barrier.
            stalls = [injector.extra_stall(rank)
                      for rank in membership.alive_ranks()]
            extra_s += max(stalls, default=0.0)
        if injector.affects_messages:
            # Per-rank retransmit ladders run in parallel; the unluckiest
            # survivor's backoff gates the barrier.
            penalties = [injector.retransmit_penalty_s(rank)
                         for rank in membership.alive_ranks()]
            extra_s += max(penalties, default=0.0)
        alive = None if membership.all_alive else membership.alive_ranks()
        return alive, extra_s

    def _rejoin_rank(self, rank: int) -> float:
        """Serve one rejoining rank its catch-up; returns the simulated cost.

        The rank adopts the strategy's consensus (or the survivors' mean),
        zeroes its momentum, resets its compressor/codec state, and the
        dense re-sync is charged through the α–β model and the FaultReport.
        """
        injector = self.fault_injector
        membership = injector.membership
        strategy = self.sync_strategy
        n = self.num_parameters
        row = strategy.catch_up(rank)
        if row is None:
            alive = membership.alive_ranks()
            if self.flat_world is not None:
                source = self.flat_world.param_matrix[alive] if alive \
                    else self.flat_world.param_matrix[rank:rank + 1]
                row = source.mean(axis=0)
            else:
                vectors = [flatten_parameters(self.replicas[r])
                           for r in (alive or [rank])]
                row = np.mean(np.stack(vectors), axis=0)
        row = np.asarray(row, dtype=np.float32).reshape(-1)
        if self.flat_world is not None:
            self.flat_world.param_matrix[rank, :] = row
            self._velocity_matrix[rank, :] = 0.0
        else:
            unflatten_into_parameters(self.replicas[rank], row)
            for buffer in getattr(self.optimizers[rank], "_velocity", {}).values():
                buffer.fill(0.0)
        if strategy.compressors:
            strategy.compressors[rank].reset_state()
        if strategy.parameter_codec is not None:
            strategy.parameter_codec.resync_rank(rank, row)
        resync_time = self.world.point_to_point(4.0 * n)
        injector.report.record_resync(4.0 * n)
        injector.report.record_rejoin(rank)
        membership.set_alive(rank, True)
        return resync_time

    def _degraded_loss(self, loss: float, alive: Optional[List[int]]) -> float:
        """Mean training loss over the surviving ranks only."""
        if alive is None or self._last_losses is None:
            return loss
        return float(np.mean(self._last_losses[alive]))

    # ------------------------------------------------------------------ #
    # training loops
    # ------------------------------------------------------------------ #
    def train(self) -> TrainingMetrics:
        """Run the full training schedule and return the per-epoch metrics."""
        state = self.state
        self._async_worker_rows = None
        self.callbacks.on_train_start(state)
        if self.sim_engine is not None:
            self.sim_engine.run(state)
        elif self.spec.task == "classification":
            self._train_classification(state)
        else:
            self._train_language_model(state)
        if self.is_async and self.flat_world is not None:
            # finalize() collapses every worker row onto the consensus
            # (server/center) for the final model; keep the live rows so a
            # checkpoint written after train() can resume the per-rank
            # trajectories bit for bit.
            self._async_worker_rows = self.flat_world.param_matrix.copy()
        # Algorithm 1 lines 9-10: final dense consolidation of the replicas,
        # combined by the strategy's aggregator (mean reproduces the seed).
        averaged = self.sync_strategy.finalize(
            [flatten_parameters(m) for m in self.replicas])
        for replica, flat in zip(self.replicas, averaged):
            unflatten_into_parameters(replica, flat)
        if self.population is not None and self.sim_report is not None:
            self.sim_report.participation = self.population.summary()
        self.callbacks.on_train_end(state)
        return self.metrics

    def close(self) -> None:
        """Release execution-backend resources (idempotent).

        The in-process backend has none; the multiprocessing backend shuts
        its worker processes down and unlinks the shared-memory segments.
        Training results (metrics, replicas, checkpoints) remain usable
        after closing.
        """
        backend = getattr(self, "backend", None)
        if backend is not None:
            backend.close()

    def __enter__(self) -> "DistributedTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _begin_iteration(self, state: TrainState, epoch: int, iteration: int) -> float:
        state.epoch = epoch
        state.iteration = iteration
        state.epoch_progress = epoch + iteration / max(1, self.iterations_per_epoch)
        self.callbacks.on_iteration_start(state)
        return state.epoch_progress

    def _end_iteration(self, state: TrainState, loss: float, lr: float,
                       compute_time: float, report,
                       alive: Optional[List[int]] = None,
                       extra_s: float = 0.0) -> None:
        self._global_iteration += 1
        state.global_iteration = self._global_iteration
        state.loss = loss
        state.lr = lr
        state.compute_time_s = compute_time
        state.report = report
        if self.lockstep_sim is not None and report is not None:
            # Price the lockstep iteration before callbacks run so metrics
            # rows see the advanced simulated clock.
            duration = self.lockstep_sim.record_iteration(report, alive=alive,
                                                          extra_s=extra_s)
            if alive is not None and self.fault_injector is not None:
                for rank in self.fault_injector.membership.dead_ranks():
                    self.fault_injector.report.record_downtime(rank, duration)
        self.callbacks.on_iteration_end(state)

    def _end_epoch(self, state: TrainState, epoch: int, epoch_losses: List[float]) -> None:
        state.epoch = epoch
        state.epoch_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
        if self.lockstep_sim is not None:
            self.lockstep_sim.record_epoch_mark()
        self.callbacks.on_epoch_end(state)

    def _resume_epoch(self) -> int:
        """Completed epochs of a checkpoint-restored run (0 when fresh).

        The loaders reshuffle from a stateful RNG each epoch, so the skipped
        epochs' permutations are replayed to line the shuffle stream up with
        the uninterrupted run's.
        """
        if not self._global_iteration or not self.iterations_per_epoch:
            return 0
        completed = self._global_iteration // self.iterations_per_epoch
        if completed >= self.config.epochs:
            # A finished run: train() runs the whole schedule again (the
            # long-standing retrain semantics); only an *interrupted* run
            # continues where it stopped.
            return 0
        for _ in range(completed):
            for loader in getattr(self, "loaders", []):
                if loader.shuffle:
                    loader.rng.permutation(len(loader.dataset))
                loader._epoch += 1
        return completed

    def _next_batches(self, iterators: List) -> List:
        """One slot-ordered batch list for the iteration.

        Sampled-cohort mode draws the active clients' batches statelessly
        from the population's shards; otherwise the per-rank loader streams
        advance exactly as in the seed trainer.
        """
        population = self.population
        if population is not None and population.shards is not None:
            return population.draw_batches(self._global_iteration)
        return [next(it) for it in iterators]

    def _train_classification(self, state: TrainState) -> None:
        fused = self.flat_world is not None
        for epoch in range(self._resume_epoch(), self.config.epochs):
            state.epoch = epoch
            self.callbacks.on_epoch_start(state)
            iterators = [iter(loader) for loader in self.loaders]
            epoch_losses: List[float] = []
            for iteration in range(self.iterations_per_epoch):
                progress = self._begin_iteration(state, epoch, iteration)
                if self.population is not None:
                    # Round boundaries sit right after the previous round's
                    # parameter averaging; the cohort (and its slot state)
                    # must be in place before the gradients are computed.
                    self.population.begin_round(self)
                alive, extra_s = self._fault_phase(state)
                if state.stop_requested:
                    break
                batches = self._next_batches(iterators)
                start = time.perf_counter()
                if fused:
                    G, loss = self._classification_gradients_fused(batches)
                    compute_time = time.perf_counter() - start
                    new_matrix, report = self.sync_strategy.exchange_batched(G)
                    lr = self._apply_gradients_fused(new_matrix, progress)
                else:
                    gradients, loss = self._classification_gradients(batches)
                    compute_time = time.perf_counter() - start
                    new_gradients, report = self.sync_strategy.exchange(gradients)
                    lr = self._apply_gradients(new_gradients, progress)
                report = self._parameter_phase(report, fused)
                loss = self._degraded_loss(loss, alive)
                epoch_losses.append(loss)
                self._end_iteration(state, loss, lr, compute_time, report,
                                    alive=alive, extra_s=extra_s)
                if state.stop_requested:
                    break
            self._end_epoch(state, epoch, epoch_losses)
            if state.stop_requested:
                break

    def _train_language_model(self, state: TrainState) -> None:
        fused = self.flat_world is not None
        for epoch in range(self._resume_epoch(), self.config.epochs):
            state.epoch = epoch
            self.callbacks.on_epoch_start(state)
            iterators = [shard.batches() for shard in self.lm_shards]
            # The batched executor threads one stacked state; the per-replica
            # paths thread one state per rank.
            states = None if self.executor is not None \
                else [None] * self.config.world_size
            epoch_losses: List[float] = []
            for iteration in range(self.iterations_per_epoch):
                progress = self._begin_iteration(state, epoch, iteration)
                alive, extra_s = self._fault_phase(state)
                if state.stop_requested:
                    break
                batches = [next(it) for it in iterators]
                start = time.perf_counter()
                if fused:
                    G, loss, states = self._language_model_gradients_fused(batches, states)
                    compute_time = time.perf_counter() - start
                    new_matrix, report = self.sync_strategy.exchange_batched(G)
                    lr = self._apply_gradients_fused(new_matrix, progress)
                else:
                    gradients, loss, states = self._language_model_gradients(batches, states)
                    compute_time = time.perf_counter() - start
                    new_gradients, report = self.sync_strategy.exchange(gradients)
                    lr = self._apply_gradients(new_gradients, progress)
                report = self._parameter_phase(report, fused)
                loss = self._degraded_loss(loss, alive)
                epoch_losses.append(loss)
                self._end_iteration(state, loss, lr, compute_time, report,
                                    alive=alive, extra_s=extra_s)
                if state.stop_requested:
                    break
            self._end_epoch(state, epoch, epoch_losses)
            if state.stop_requested:
                break

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self) -> float:
        """Evaluate the consensus model.

        The strategy may provide its own consensus vector (async_ps's server
        parameters, EASGD's center); otherwise the consensus is the mean of
        the replicas, as in the seed trainer.
        """
        consensus_fn = getattr(self.sync_strategy, "consensus_vector", None)
        consensus = consensus_fn() if consensus_fn is not None else None
        if consensus is None:
            snapshot = [flatten_parameters(m) for m in self.replicas]
            dead = self._dead_ranks()
            if dead:
                # A down rank's stale replica must not pull the consensus.
                survivors = [v for r, v in enumerate(snapshot) if r not in dead]
                snapshot = survivors or snapshot
            consensus = np.mean(np.stack(snapshot), axis=0)
        probe = self.replicas[0]
        original = flatten_parameters(probe)
        unflatten_into_parameters(probe, consensus)
        try:
            if self.spec.task == "classification":
                value = evaluate_classifier(probe, self.test_dataset)
            else:
                value = evaluate_language_model(probe, self.test_batcher, max_batches=20)
        finally:
            unflatten_into_parameters(probe, original)
        return value

    # ------------------------------------------------------------------ #
    # accounting helpers used by the benchmarks
    # ------------------------------------------------------------------ #
    @property
    def wire_bits_per_iteration(self) -> float:
        """Analytic peak per-worker traffic of the configured synchronization.

        Strategy-aware: the default allreduce reports the compressor's
        Table-2 figure; local SGD reports its amortized parameter exchange
        (one payload every H iterations) and gossip the busiest rank's
        per-step neighbour payloads (max degree — the same critical path
        the α–β model prices).  With ``sync.parameter_compression`` the
        payload is the configured compressor's actual bits, not the dense
        32n, so sweeps over sync setups compare real traffic.
        """
        return self.sync_strategy.wire_bits_per_iteration(
            self.num_parameters, self.config.world_size)

    @property
    def sim_report(self):
        """The run's :class:`~repro.sim.report.SimReport`, or None.

        Present whenever simulated time is being tracked: always for async
        strategies, and for synchronous strategies configured with a
        ``compute_model``.
        """
        if self.sim_engine is not None:
            return self.sim_engine.report
        if self.lockstep_sim is not None:
            return self.lockstep_sim.report
        return None

    @property
    def simulated_time_s(self) -> float:
        """Simulated wall-clock of the run so far (seconds).

        The virtual clock when one is attached; otherwise the measured-model
        timeline total (compute + compression + communication +
        aggregation), which is what the seed trainer always reported.
        """
        if self.sim_engine is not None:
            return self.sim_engine.clock.now
        if self.lockstep_sim is not None:
            return self.lockstep_sim.now
        return self.timeline.total_s

    def mean_iteration_time(self) -> float:
        return self.timeline.mean_iteration_time()
