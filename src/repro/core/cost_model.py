"""Analytic cost model for iteration time, scaling efficiency and traffic.

Figures 4/5 and the scaling column of Table 2 evaluate the paper's full-size
models (up to 66 M parameters) on a 16-node V100 cluster.  Training those
models end-to-end in NumPy is not feasible, so the reproduction rebuilds the
figures from a per-iteration cost breakdown:

``iteration_time = compute + compression + communication``

* **compute** — the forward/backward time of the model on its share of the
  global batch.  Modelled as ``flops / effective_flops`` with the paper's
  parameter counts; the default ``effective_flops`` approximates one V100.
  This term is identical across algorithms, exactly as in the paper, so it
  only sets the baseline each algorithm's overhead is added to.
* **compression** — an analytic model of each algorithm's gradient-processing
  cost *on the paper's hardware*: the GPU-implemented algorithms (A2SGD,
  Top-K, Gaussian-K) are charged a few memory passes over the gradient at GPU
  memory bandwidth (plus a selection term for Top-K), while QSGD is charged
  the throughput of the CPU/NumPy reference implementation the paper
  benchmarks (§4.1/[42]).  The constants are documented on
  :class:`AnalyticCompressionModel`.  (The *measured* kernel times of this
  repository's own implementations are still available through
  :class:`CompressionTimingEstimator`; the Figure 2 benchmark uses those
  directly because Figure 2 is precisely a measurement of compression
  kernels.)
* **communication** — the α–β model of the collective the algorithm uses,
  with the analytic wire size from Table 2 (32n, 32k, 2.8n+32 or 64 bits).

Absolute numbers therefore differ from the paper's testbed, but the ordering,
ratios and crossovers — which algorithm wins for which model size and worker
count — are determined by the same structural quantities the paper analyses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.comm.network_model import CollectiveTimeModel, NetworkModel, infiniband_100gbps
from repro.compress.base import ExchangeKind, sparsity_k
from repro.compress.registry import get_compressor
from repro.models.registry import PAPER_HYPERPARAMETERS, PAPER_PARAMETER_COUNTS
from repro.utils.rng import new_rng
from repro.utils.timer import median_time


@dataclass
class IterationCostBreakdown:
    """Per-iteration time components for one (model, algorithm, P) point."""

    model: str
    algorithm: str
    world_size: int
    compute_s: float
    compression_s: float
    communication_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.compression_s + self.communication_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute_s": self.compute_s,
            "compression_s": self.compression_s,
            "communication_s": self.communication_s,
            "total_s": self.total_s,
        }


class CompressionTimingEstimator:
    """Measure compressor kernels on a sample vector and extrapolate to size n.

    Measuring at the full 66 M parameters for every algorithm would dominate
    benchmark runtime, so kernels are timed at ``sample_size`` coordinates and
    scaled by the algorithm's complexity model:

    * linear algorithms (A2SGD, Gaussian-K, TernGrad, SignSGD): time ∝ n;
    * Top-K: time ∝ n + k·log n  (argpartition + selection);
    * QSGD reference implementation: time ∝ n² (per the paper's Table 2 the
      benchmarked implementation quantizes coordinates in a Python loop), with
      the quadratic term damped by ``qsgd_python_overhead`` to keep the
      extrapolation within the order of magnitude Figure 2 reports;
    * Dense: zero (nothing to compute).
    """

    #: Exponent model per algorithm: time(n) = measured * (n / sample)^exponent.
    COMPLEXITY_EXPONENT: Dict[str, float] = {
        "dense": 0.0,
        "a2sgd": 1.0,
        "gaussiank": 1.0,
        "terngrad": 1.0,
        "signsgd": 1.0,
        "randk": 1.0,
        "topk": 1.05,
        "qsgd": 1.25,
    }

    def __init__(self, sample_size: int = 1_000_000, repeats: int = 3,
                 seed: int = 0):
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.sample_size = int(sample_size)
        self.repeats = int(repeats)
        self.seed = int(seed)
        self._cache: Dict[str, float] = {}

    def _measure(self, algorithm: str) -> float:
        """Seconds to compress one ``sample_size`` gradient with ``algorithm``."""
        if algorithm in self._cache:
            return self._cache[algorithm]
        if algorithm == "dense":
            self._cache[algorithm] = 0.0
            return 0.0
        gradient = new_rng("cost_model_sample", seed=self.seed).standard_normal(
            self.sample_size).astype(np.float32)
        compressor = get_compressor(algorithm)
        measured = median_time(lambda: compressor.compress(gradient), repeats=self.repeats)
        self._cache[algorithm] = float(measured)
        return self._cache[algorithm]

    def compression_time(self, algorithm: str, n: int) -> float:
        """Estimated compression time for an ``n``-parameter gradient."""
        algorithm = algorithm.lower()
        if algorithm == "dense":
            return 0.0
        measured = self._measure(algorithm)
        exponent = self.COMPLEXITY_EXPONENT.get(algorithm, 1.0)
        scale = (max(1, n) / self.sample_size) ** exponent
        return measured * scale


@dataclass
class AnalyticCompressionModel:
    """Compression time on the paper's testbed, from first principles.

    The paper implements A2SGD, Top-K and Gaussian-K with PyTorch GPU tensor
    ops and QSGD with the NumPy reference implementation ([42]); §4.3 and
    Figure 2 discuss the resulting computation costs.  This model charges:

    * GPU algorithms: ``passes × 4n bytes / gpu_bandwidth`` — they are
      memory-bandwidth bound elementwise/reduction kernels (A2SGD: two means
      + error vector ≈ 3 passes; Gaussian-K: mean/std/threshold/mask ≈ 5
      passes; Rand-K and the quantizers ≈ 3 passes);
    * Top-K: the same passes plus an explicit k-selection term at
      ``topk_selection_rate`` elements/second — GPU top-k selection is far
      slower than a streaming pass (the paper cites [48, 49] on this);
    * QSGD: ``n / qsgd_cpu_rate`` — the throughput of the Python/NumPy loop
      the paper actually benchmarks, which is why QSGD's computation
      dominates its iteration time (and why Table 2 lists it as O(n²)).

    Parameters are exposed so ablation benches can ask "what if Top-K
    selection were free" or "what if QSGD were GPU-accelerated".
    """

    gpu_bandwidth_Bps: float = 700e9          # sustained V100 HBM2 bandwidth
    topk_selection_rate: float = 1.0e9        # elements/s for GPU k-selection
    qsgd_cpu_rate: float = 1.0e8              # elements/s for the NumPy reference
    kernel_launch_overhead_s: float = 50e-6   # fixed per-kernel launch cost

    #: Memory passes over the gradient for each GPU-implemented algorithm.
    GPU_PASSES: Dict[str, float] = field(default_factory=lambda: {
        "a2sgd": 3.0,
        "gaussiank": 5.0,
        "topk": 2.0,
        "randk": 2.0,
        "terngrad": 3.0,
        "signsgd": 3.0,
    })

    def compression_time(self, algorithm: str, n: int) -> float:
        """Seconds to compress an ``n``-parameter gradient with ``algorithm``."""
        algorithm = algorithm.lower()
        if algorithm == "dense":
            return 0.0
        if algorithm == "qsgd":
            return self.kernel_launch_overhead_s + n / self.qsgd_cpu_rate
        passes = self.GPU_PASSES.get(algorithm, 3.0)
        time_s = self.kernel_launch_overhead_s + passes * 4.0 * n / self.gpu_bandwidth_Bps
        if algorithm == "topk":
            time_s += n / self.topk_selection_rate
        return time_s


@dataclass
class CostModel:
    """End-to-end iteration / training-time model for the paper's evaluation.

    Parameters
    ----------
    network:
        Fabric model (defaults to the paper's 100 Gbps InfiniBand).
    effective_flops:
        Sustained FLOP/s assumed for one worker's forward/backward pass.
    flops_per_parameter_per_example:
        FLOPs charged per parameter per training example (≈6: two for the
        forward pass, four for backward).
    framework_overhead_s:
        Fixed per-iteration framework/kernel-launch overhead.  It dominates
        the small models (FNN-3, ResNet-20), which is why the paper observes
        "immaterial differences" between algorithms there.
    per_example_overhead_s:
        Host-side cost per training example (data loading, host-to-device
        copy).  It shrinks with the per-worker batch, which is what makes
        even the small models speed up with more workers in Figure 5.
    lstm_sequence_length:
        Unrolled timesteps for the LSTM model (its parameters are reused at
        every timestep, multiplying the compute cost).
    sparsity_ratio:
        The paper's Top-K / Gaussian-K density (0.001 of n).
    compression:
        Analytic model of compression time on the paper's hardware.
    timing:
        Measured-kernel estimator (kept for "measured" mode / Figure 2).
    """

    network: NetworkModel = field(default_factory=infiniband_100gbps)
    effective_flops: float = 7.0e12
    flops_per_parameter_per_example: float = 6.0
    framework_overhead_s: float = 2e-3
    per_example_overhead_s: float = 40e-6
    lstm_sequence_length: int = 35
    sparsity_ratio: float = 0.001
    qsgd_levels: int = 4
    compression: Optional[AnalyticCompressionModel] = None
    timing: Optional[CompressionTimingEstimator] = None
    use_measured_compression: bool = False

    #: How many times each parameter is applied per example: convolution
    #: kernels are reused across spatial positions and LSTM weights across
    #: timesteps, so FLOPs are (reuse × 6 × n) per example.  Values are the
    #: ratio of per-example MACs to parameter count for the CIFAR-sized
    #: models (VGG-16 ≈ 313 M MACs / 14.7 M params, ResNet-20 ≈ 41 M MACs /
    #: 0.27 M params) and the 35-step PTB unroll.
    COMPUTE_REUSE_FACTOR: Dict[str, float] = field(default_factory=lambda: {
        "fnn3": 1.0,
        "vgg16": 21.0,
        "resnet20": 152.0,
        "lstm_ptb": 35.0,
    })

    def __post_init__(self) -> None:
        if self.compression is None:
            self.compression = AnalyticCompressionModel()
        if self.timing is None and self.use_measured_compression:
            self.timing = CompressionTimingEstimator()
        self.time_model = CollectiveTimeModel(self.network)

    # ------------------------------------------------------------------ #
    # Table 2, columns 2-3: analytic complexity and traffic
    # ------------------------------------------------------------------ #
    def communication_bits(self, algorithm: str, n: int) -> float:
        """Bits per worker per iteration (Table 2, column 3)."""
        return get_compressor(algorithm).wire_bits(n)

    def computation_complexity(self, algorithm: str, n: int) -> str:
        """Asymptotic compression complexity (Table 2, column 2)."""
        return get_compressor(algorithm).computation_complexity(n)

    # ------------------------------------------------------------------ #
    # per-iteration breakdown (Figure 4)
    # ------------------------------------------------------------------ #
    def model_parameters(self, model: str) -> int:
        """Parameter count ``n`` from Table 1."""
        key = model.lower()
        if key not in PAPER_PARAMETER_COUNTS:
            raise KeyError(f"unknown model {model!r}; known: {sorted(PAPER_PARAMETER_COUNTS)}")
        return PAPER_PARAMETER_COUNTS[key]

    def compute_time(self, model: str, world_size: int) -> float:
        """Forward/backward seconds for one worker's share of the global batch.

        Includes the fixed per-iteration framework overhead, which is why
        small models show little difference between algorithms (paper §4.4).
        """
        key = model.lower()
        n = self.model_parameters(key)
        batch = int(PAPER_HYPERPARAMETERS[key]["batch_size"])
        per_worker = max(1, batch // max(1, world_size))
        reuse = self.COMPUTE_REUSE_FACTOR.get(key, 1.0)
        flops = self.flops_per_parameter_per_example * n * per_worker * reuse
        return (self.framework_overhead_s
                + self.per_example_overhead_s * per_worker
                + flops / self.effective_flops)

    def communication_time(self, algorithm: str, model: str, world_size: int) -> float:
        """Collective time for one synchronization under the α–β model."""
        algorithm = algorithm.lower()
        n = self.model_parameters(model)
        compressor = get_compressor(algorithm)
        message_bytes = compressor.wire_bits(n, world_size) / 8.0
        if compressor.exchange is ExchangeKind.ALLREDUCE:
            return self.time_model.allreduce(message_bytes, world_size)
        return self.time_model.allgather(message_bytes, world_size)

    def compression_time(self, algorithm: str, model: str) -> float:
        """Compression + reconstruction time for one iteration.

        Uses the analytic (paper-hardware) model by default; switches to the
        measured-kernel estimator when ``use_measured_compression`` is set.
        """
        n = self.model_parameters(model)
        if self.use_measured_compression and self.timing is not None:
            return self.timing.compression_time(algorithm.lower(), n)
        return self.compression.compression_time(algorithm.lower(), n)

    def iteration_breakdown(self, model: str, algorithm: str,
                            world_size: int) -> IterationCostBreakdown:
        """Full per-iteration breakdown for Figure 4."""
        return IterationCostBreakdown(
            model=model.lower(),
            algorithm=algorithm.lower(),
            world_size=int(world_size),
            compute_s=self.compute_time(model, world_size),
            compression_s=self.compression_time(algorithm, model),
            communication_s=self.communication_time(algorithm, model, world_size),
        )

    def iteration_time(self, model: str, algorithm: str, world_size: int) -> float:
        """Average iteration time (the quantity Figure 4 plots)."""
        return self.iteration_breakdown(model, algorithm, world_size).total_s

    # ------------------------------------------------------------------ #
    # total training time (Figure 5)
    # ------------------------------------------------------------------ #
    def iterations_per_epoch(self, model: str, dataset_examples: Optional[int] = None) -> int:
        """Number of global-batch iterations per epoch.

        Dataset sizes follow the standard corpora the paper trains on:
        60 k (MNIST), 50 k (CIFAR-10) and ≈930 k tokens / (batch·35) windows
        for PTB.
        """
        key = model.lower()
        batch = int(PAPER_HYPERPARAMETERS[key]["batch_size"])
        if dataset_examples is None:
            dataset_examples = {
                "fnn3": 60_000,
                "vgg16": 50_000,
                "resnet20": 50_000,
                "lstm_ptb": 929_000 // self.lstm_sequence_length,
            }[key]
        return max(1, dataset_examples // batch)

    def total_training_time(self, model: str, algorithm: str, world_size: int,
                            epochs: Optional[int] = None) -> float:
        """Total training time for Figure 5 (iteration time × iterations).

        In data-parallel training the global batch is fixed, so the number of
        iterations per epoch is independent of P; more workers help because
        each worker's compute shrinks while the (per-iteration) synchronization
        cost grows only mildly.
        """
        key = model.lower()
        if epochs is None:
            epochs = int(PAPER_HYPERPARAMETERS[key]["epochs"])
        iterations = self.iterations_per_epoch(key) * epochs
        return self.iteration_time(key, algorithm, world_size) * iterations

    # ------------------------------------------------------------------ #
    # throughput / scaling efficiency (Table 2, last column)
    # ------------------------------------------------------------------ #
    def throughput(self, model: str, algorithm: str, world_size: int) -> float:
        """Examples processed per second across the whole job."""
        key = model.lower()
        batch = int(PAPER_HYPERPARAMETERS[key]["batch_size"])
        return batch / self.iteration_time(key, algorithm, world_size)

    def scaling_efficiency(self, model: str, algorithm: str, world_size: int = 8,
                           reference_world_size: int = 2) -> float:
        """Throughput at ``world_size`` normalized to dense SGD at 2 workers.

        This is exactly the paper's definition: ``t_P / t^D_2`` where ``t`` is
        throughput, the reference being dense SGD with two workers.
        """
        reference = self.throughput(model, "dense", reference_world_size)
        return self.throughput(model, algorithm, world_size) / reference
