"""Checkpointing for distributed training runs.

Long sweeps (the paper's 150-epoch VGG runs) need to survive interruption.
A checkpoint captures, for every simulated worker: the replica parameters,
the optimizer state (momentum buffers), and the compressor's error-feedback
residual — plus the trainer's progress counters, metric history and the
synchronization strategy's resume state (the step phase of periodic
schedules, and the parameter-delta codec's references + residuals when
``parameter_compression`` is configured).  Loading restores bit-identical
training state so a resumed run continues exactly where it stopped.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.compress.base import compressor_state_arrays, restore_compressor_state
from repro.core.flatten import flatten_parameters, unflatten_into_parameters
from repro.core.trainer import DistributedTrainer


def save_checkpoint(trainer: DistributedTrainer, path: str | Path) -> Path:
    """Write the trainer's full state to an ``.npz`` checkpoint."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    for rank, replica in enumerate(trainer.replicas):
        arrays[f"params_{rank}"] = flatten_parameters(replica)
        optimizer_state = trainer.optimizers[rank].state_dict() if hasattr(
            trainer.optimizers[rank], "state_dict") else {"lr": trainer.optimizers[rank].lr,
                                                          "velocity": {}}
        arrays[f"opt_lr_{rank}"] = np.array([optimizer_state["lr"]], dtype=np.float64)
        for index, buffer in optimizer_state.get("velocity", {}).items():
            arrays[f"opt_velocity_{rank}_{index}"] = buffer
        for key, value in compressor_state_arrays(trainer.compressors[rank]).items():
            arrays[f"compressor_{key}_{rank}"] = value

    codec = getattr(trainer.sync_strategy, "parameter_codec", None)
    if codec is not None:
        for key, value in codec.state_arrays().items():
            arrays[f"sync_param_{key}"] = value

    # Virtual-clock state: the event clock + compute-model RNG positions of
    # the async engine, or the lockstep simulator's accumulated clock.
    sim = trainer.sim_engine if trainer.sim_engine is not None else trainer.lockstep_sim
    if sim is not None:
        for key, value in sim.state_arrays().items():
            arrays[f"sim_{key}"] = value
    # Async strategy server/center state (server params + velocity, staleness
    # bookkeeping, EASGD center + local-step phases).
    if trainer.is_async:
        for key, value in trainer.sync_strategy.state_arrays().items():
            arrays[f"sync_async_{key}"] = value
        # The per-rank worker rows: after train() the replicas hold the
        # finalized consensus, but resuming needs each rank's live vector
        # (its last pull / local state).  Mid-run saves read the live
        # matrix; post-train saves read the pre-finalize snapshot.
        if trainer.flat_world is not None:
            rows = trainer._async_worker_rows
            arrays["async_worker_rows"] = (
                trainer.flat_world.param_matrix.copy() if rows is None else rows)

    # Fault-injection state: membership mask, fault-report counters and the
    # per-rank draw counters, so a run interrupted mid-blackout resumes with
    # the same ranks down and the same fault timeline ahead of it.
    if trainer.fault_injector is not None:
        for key, value in trainer.fault_injector.state_arrays().items():
            arrays[f"fault_{key}"] = value

    # Client-population state: round counters, the current slot assignment,
    # the seen-clients mask and every swapped-out client's parked slot state
    # (velocity, compressor residuals, codec reference).  The sampler itself
    # is stateless per round, so the counters fully determine future cohorts.
    if trainer.population is not None:
        for key, value in trainer.population.state_arrays().items():
            arrays[f"clients_{key}"] = value

    arrays["progress"] = np.array([trainer._global_iteration, len(trainer.metrics.epochs)],
                                  dtype=np.int64)
    arrays["metric_history"] = np.array(trainer.metrics.metric, dtype=np.float64)
    arrays["loss_history"] = np.array(trainer.metrics.train_loss, dtype=np.float64)
    arrays["epoch_history"] = np.array(trainer.metrics.epochs, dtype=np.int64)
    arrays["metrics_sim_time"] = np.array(trainer.metrics.simulated_time_s,
                                          dtype=np.float64)
    arrays["metrics_rejected"] = np.array(trainer.metrics.rejected_pushes,
                                          dtype=np.int64)
    arrays["metrics_staleness"] = np.array(trainer.metrics.mean_staleness,
                                           dtype=np.float64)
    arrays["metrics_active_clients"] = np.array(trainer.metrics.active_clients,
                                                dtype=np.int64)
    arrays["metrics_cohort_fraction"] = np.array(trainer.metrics.cohort_fraction,
                                                 dtype=np.float64)
    arrays["metrics_unique_clients"] = np.array(trainer.metrics.unique_clients_seen,
                                                dtype=np.int64)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(trainer: DistributedTrainer, path: str | Path) -> DistributedTrainer:
    """Restore a trainer's state from :func:`save_checkpoint` output.

    The trainer must have been constructed with the same configuration
    (model, preset, world size); shape mismatches raise.
    """
    data = np.load(Path(path), allow_pickle=False)

    for rank, replica in enumerate(trainer.replicas):
        key = f"params_{rank}"
        if key not in data:
            raise KeyError(f"checkpoint is missing {key!r}; was it saved with "
                           f"world_size={len(trainer.replicas)}?")
        unflatten_into_parameters(replica, data[key])

        optimizer = trainer.optimizers[rank]
        optimizer.set_lr(float(data[f"opt_lr_{rank}"][0]))
        if hasattr(optimizer, "load_state_dict"):
            velocity = {}
            prefix = f"opt_velocity_{rank}_"
            for name in data.files:
                if name.startswith(prefix):
                    velocity[int(name[len(prefix):])] = data[name]
            optimizer.load_state_dict({"lr": optimizer.lr, "momentum": optimizer.momentum,
                                       "velocity": velocity})

        state = {}
        for kind in ("residual", "velocity"):
            key = f"compressor_{kind}_{rank}"
            if key in data:
                state[kind] = data[key]
        restore_compressor_state(trainer.compressors[rank], state)

    codec = getattr(trainer.sync_strategy, "parameter_codec", None)
    if codec is not None:
        prefix = "sync_param_"
        codec.load_state_arrays({name[len(prefix):]: data[name]
                                 for name in data.files if name.startswith(prefix)})

    sim = trainer.sim_engine if trainer.sim_engine is not None else trainer.lockstep_sim
    sim_state = {name[len("sim_"):]: data[name]
                 for name in data.files if name.startswith("sim_")}
    if sim is not None and "clock_now" in sim_state:
        sim.load_state_arrays(sim_state)
    if trainer.is_async:
        async_state = {name[len("sync_async_"):]: data[name]
                       for name in data.files if name.startswith("sync_async_")}
        if async_state:
            trainer.sync_strategy.load_state_arrays(async_state)
        if "async_worker_rows" in data and trainer.flat_world is not None:
            # Overwrite the finalized consensus written by the params_{rank}
            # restore above with each rank's live working vector.
            trainer.flat_world.param_matrix[:] = data["async_worker_rows"]

    fault_state = {name[len("fault_"):]: data[name]
                   for name in data.files if name.startswith("fault_")}
    if fault_state and trainer.fault_injector is not None:
        trainer.fault_injector.load_state_arrays(fault_state)

    clients_state = {name[len("clients_"):]: data[name]
                     for name in data.files if name.startswith("clients_")}
    if clients_state and trainer.population is not None:
        trainer.population.load_state_arrays(clients_state)

    progress = data["progress"]
    trainer._global_iteration = int(progress[0])
    # Keep the sync strategy's period phase (local-SGD's every-H schedule)
    # aligned with the restored iteration count.
    trainer.sync_strategy.restore(int(progress[0]))
    trainer.metrics.epochs = [int(v) for v in data["epoch_history"]]
    trainer.metrics.metric = [float(v) for v in data["metric_history"]]
    trainer.metrics.train_loss = [float(v) for v in data["loss_history"]]
    if "metrics_sim_time" in data:
        trainer.metrics.simulated_time_s = [float(v) for v in data["metrics_sim_time"]]
    if "metrics_rejected" in data:
        trainer.metrics.rejected_pushes = [int(v) for v in data["metrics_rejected"]]
        trainer.metrics.mean_staleness = [float(v) for v in data["metrics_staleness"]]
    if "metrics_active_clients" in data:
        trainer.metrics.active_clients = [int(v) for v in data["metrics_active_clients"]]
        trainer.metrics.cohort_fraction = [float(v)
                                           for v in data["metrics_cohort_fraction"]]
        trainer.metrics.unique_clients_seen = [int(v)
                                               for v in data["metrics_unique_clients"]]
    return trainer
