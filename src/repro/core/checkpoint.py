"""Checkpointing for distributed training runs.

Long sweeps (the paper's 150-epoch VGG runs) need to survive interruption.
A checkpoint captures, for every simulated worker: the replica parameters,
the optimizer state (momentum buffers), and the compressor's error-feedback
residual — plus the trainer's progress counters and metric history.  Loading
restores bit-identical training state so a resumed run continues exactly
where it stopped.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.flatten import flatten_parameters, unflatten_into_parameters
from repro.core.trainer import DistributedTrainer


def _compressor_state(compressor) -> Dict[str, np.ndarray]:
    state: Dict[str, np.ndarray] = {}
    residual = getattr(compressor, "_residual", None)
    if residual is not None:
        state["residual"] = residual
    velocity = getattr(compressor, "_velocity", None)
    if velocity is not None:
        state["velocity"] = velocity
    return state


def _restore_compressor_state(compressor, state: Dict[str, np.ndarray]) -> None:
    for kind in ("residual", "velocity"):
        if kind not in state:
            continue
        attr = f"_{kind}"
        current = getattr(compressor, attr, None)
        value = state[kind]
        if (isinstance(current, np.ndarray) and current.shape == value.shape
                and current.dtype == value.dtype):
            # Write in place so state that aliases a shared (P, n) matrix
            # (rows written by the batched kernels) keeps its zero-copy home.
            current[...] = value
        else:
            setattr(compressor, attr, np.array(value, copy=True))


def save_checkpoint(trainer: DistributedTrainer, path: str | Path) -> Path:
    """Write the trainer's full state to an ``.npz`` checkpoint."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    for rank, replica in enumerate(trainer.replicas):
        arrays[f"params_{rank}"] = flatten_parameters(replica)
        optimizer_state = trainer.optimizers[rank].state_dict() if hasattr(
            trainer.optimizers[rank], "state_dict") else {"lr": trainer.optimizers[rank].lr,
                                                          "velocity": {}}
        arrays[f"opt_lr_{rank}"] = np.array([optimizer_state["lr"]], dtype=np.float64)
        for index, buffer in optimizer_state.get("velocity", {}).items():
            arrays[f"opt_velocity_{rank}_{index}"] = buffer
        for key, value in _compressor_state(trainer.compressors[rank]).items():
            arrays[f"compressor_{key}_{rank}"] = value

    arrays["progress"] = np.array([trainer._global_iteration, len(trainer.metrics.epochs)],
                                  dtype=np.int64)
    arrays["metric_history"] = np.array(trainer.metrics.metric, dtype=np.float64)
    arrays["loss_history"] = np.array(trainer.metrics.train_loss, dtype=np.float64)
    arrays["epoch_history"] = np.array(trainer.metrics.epochs, dtype=np.int64)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(trainer: DistributedTrainer, path: str | Path) -> DistributedTrainer:
    """Restore a trainer's state from :func:`save_checkpoint` output.

    The trainer must have been constructed with the same configuration
    (model, preset, world size); shape mismatches raise.
    """
    data = np.load(Path(path), allow_pickle=False)

    for rank, replica in enumerate(trainer.replicas):
        key = f"params_{rank}"
        if key not in data:
            raise KeyError(f"checkpoint is missing {key!r}; was it saved with "
                           f"world_size={len(trainer.replicas)}?")
        unflatten_into_parameters(replica, data[key])

        optimizer = trainer.optimizers[rank]
        optimizer.set_lr(float(data[f"opt_lr_{rank}"][0]))
        if hasattr(optimizer, "load_state_dict"):
            velocity = {}
            prefix = f"opt_velocity_{rank}_"
            for name in data.files:
                if name.startswith(prefix):
                    velocity[int(name[len(prefix):])] = data[name]
            optimizer.load_state_dict({"lr": optimizer.lr, "momentum": optimizer.momentum,
                                       "velocity": velocity})

        state = {}
        for kind in ("residual", "velocity"):
            key = f"compressor_{kind}_{rank}"
            if key in data:
                state[kind] = data[key]
        _restore_compressor_state(trainer.compressors[rank], state)

    progress = data["progress"]
    trainer._global_iteration = int(progress[0])
    # Keep the sync strategy's period phase (local-SGD's every-H schedule)
    # aligned with the restored iteration count.
    trainer.sync_strategy.restore(int(progress[0]))
    trainer.metrics.epochs = [int(v) for v in data["epoch_history"]]
    trainer.metrics.metric = [float(v) for v in data["metric_history"]]
    trainer.metrics.train_loss = [float(v) for v in data["loss_history"]]
    return trainer
