"""Evaluation metrics: top-1 accuracy, perplexity, throughput."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.data.synthetic_text import LanguageModelBatcher
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F, no_grad


def top1_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the integer target."""
    logits = np.asarray(logits)
    targets = np.asarray(targets).reshape(-1)
    if logits.shape[0] != targets.shape[0]:
        raise ValueError("logits and targets must have the same number of rows")
    predictions = logits.argmax(axis=1)
    return float((predictions == targets).mean())


def evaluate_classifier(model: Module, dataset: ArrayDataset, batch_size: int = 256,
                        max_examples: Optional[int] = None) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (percent, as the paper plots)."""
    model.eval()
    correct = 0
    total = 0
    limit = len(dataset) if max_examples is None else min(len(dataset), max_examples)
    with no_grad():
        for start in range(0, limit, batch_size):
            end = min(start + batch_size, limit)
            xs = np.stack([dataset[i][0] for i in range(start, end)])
            ys = np.asarray([dataset[i][1] for i in range(start, end)])
            logits = model(Tensor(xs))
            correct += int((logits.data.argmax(axis=1) == ys).sum())
            total += len(ys)
    model.train()
    return 100.0 * correct / max(1, total)


def evaluate_language_model(model: Module, batcher: LanguageModelBatcher,
                            max_batches: Optional[int] = None) -> float:
    """Perplexity of a language model on a token stream."""
    model.eval()
    total_loss = 0.0
    total_tokens = 0
    state = None
    with no_grad():
        for i, (inputs, targets) in enumerate(batcher.batches()):
            if max_batches is not None and i >= max_batches:
                break
            logits, state = model(inputs, state)
            state = model.detach_state(state)
            loss = F.cross_entropy(logits, targets.reshape(-1))
            count = targets.size
            total_loss += float(loss.item()) * count
            total_tokens += count
    model.train()
    if total_tokens == 0:
        raise ValueError("language-model evaluation saw no tokens")
    return float(np.exp(min(30.0, total_loss / total_tokens)))


@dataclass
class TrainingMetrics:
    """Per-epoch history of one training run.

    ``metric`` holds top-1 accuracy (percent) for classification models and
    perplexity for language models — the same quantities Figure 3 plots.
    Rows are appended by :class:`repro.core.callbacks.MetricsCallback` (one
    of the trainer's built-in lifecycle callbacks) at every ``on_epoch_end``.
    """

    metric_name: str = "top1"
    epochs: List[int] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    metric: List[float] = field(default_factory=list)
    simulated_comm_time_s: List[float] = field(default_factory=list)
    wall_compute_time_s: List[float] = field(default_factory=list)
    #: Virtual-clock time at the end of each epoch (NaN when the run has no
    #: compute-time model attached) — the x-axis of time-to-accuracy plots.
    simulated_time_s: List[float] = field(default_factory=list)
    #: Async-PS health per epoch row: cumulative pushes rejected for
    #: staleness, and the running mean of the staleness histogram (0 for
    #: synchronous/healthy runs) — so a degraded async run is diagnosable
    #: from the CSV alone instead of being trapped in the SimReport.
    rejected_pushes: List[int] = field(default_factory=list)
    mean_staleness: List[float] = field(default_factory=list)
    #: Federated participation per epoch row: clients materialized in the
    #: current round, the cohort fraction K/N, and the cumulative count of
    #: distinct clients sampled so far.  Without a client population these
    #: degenerate to (world_size, 1.0, world_size) — every rank is a client.
    active_clients: List[int] = field(default_factory=list)
    cohort_fraction: List[float] = field(default_factory=list)
    unique_clients_seen: List[int] = field(default_factory=list)

    def record_epoch(self, epoch: int, train_loss: float, metric_value: float,
                     comm_time: float, compute_time: float,
                     simulated_time: float = float("nan"),
                     rejected_pushes: int = 0,
                     mean_staleness: float = 0.0,
                     active_clients: int = 0,
                     cohort_fraction: float = 1.0,
                     unique_clients_seen: int = 0) -> None:
        self.epochs.append(int(epoch))
        self.train_loss.append(float(train_loss))
        self.metric.append(float(metric_value))
        self.simulated_comm_time_s.append(float(comm_time))
        self.wall_compute_time_s.append(float(compute_time))
        self.simulated_time_s.append(float(simulated_time))
        self.rejected_pushes.append(int(rejected_pushes))
        self.mean_staleness.append(float(mean_staleness))
        self.active_clients.append(int(active_clients))
        self.cohort_fraction.append(float(cohort_fraction))
        self.unique_clients_seen.append(int(unique_clients_seen))

    @property
    def final_metric(self) -> float:
        if not self.metric:
            raise ValueError("no epochs recorded")
        return self.metric[-1]

    @property
    def best_metric(self) -> float:
        if not self.metric:
            raise ValueError("no epochs recorded")
        return max(self.metric) if self.metric_name == "top1" else min(self.metric)

    def as_dict(self) -> Dict[str, object]:
        return {
            "metric_name": self.metric_name,
            "epochs": list(self.epochs),
            "train_loss": list(self.train_loss),
            "metric": list(self.metric),
            "simulated_comm_time_s": list(self.simulated_comm_time_s),
            "wall_compute_time_s": list(self.wall_compute_time_s),
            "simulated_time_s": list(self.simulated_time_s),
            "rejected_pushes": list(self.rejected_pushes),
            "mean_staleness": list(self.mean_staleness),
            "active_clients": list(self.active_clients),
            "cohort_fraction": list(self.cohort_fraction),
            "unique_clients_seen": list(self.unique_clients_seen),
        }

    #: Column header -> row-attribute name, in CSV column order.
    CSV_COLUMNS = (
        ("epoch", "epochs"),
        ("train_loss", "train_loss"),
        ("metric", "metric"),
        ("simulated_comm_time_s", "simulated_comm_time_s"),
        ("wall_compute_time_s", "wall_compute_time_s"),
        ("simulated_time_s", "simulated_time_s"),
        ("rejected_pushes", "rejected_pushes"),
        ("mean_staleness", "mean_staleness"),
        ("active_clients", "active_clients"),
        ("cohort_fraction", "cohort_fraction"),
        ("unique_clients_seen", "unique_clients_seen"),
    )

    def to_csv(self, path) -> Path:
        """Write one row per recorded epoch (``repro run --metrics-csv``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [",".join(header for header, _ in self.CSV_COLUMNS)]
        for row in range(len(self.epochs)):
            values = []
            for _, attr in self.CSV_COLUMNS:
                column = getattr(self, attr)
                values.append(repr(column[row]) if row < len(column) else "")
            lines.append(",".join(values))
        path.write_text("\n".join(lines) + "\n")
        return path


def throughput_examples_per_second(examples: int, elapsed_s: float) -> float:
    """Images (or tokens) processed per second — Table 2's throughput measure."""
    if elapsed_s <= 0:
        raise ValueError("elapsed time must be positive")
    return examples / elapsed_s
