"""Pluggable trainer lifecycle: the Callback protocol and built-in callbacks.

The :class:`~repro.core.trainer.DistributedTrainer` no longer hard-codes
metrics collection, timeline recording, evaluation cadence or progress
logging — each is a :class:`Callback` observing a :class:`TrainState` view
of the run.  Both the fused (zero-copy) and the seed per-rank training paths
drive exactly the same hooks, so a callback written once works on either.

Hook order per run::

    on_train_start
      on_epoch_start                 (once per epoch)
        on_iteration_start           (once per iteration)
        on_iteration_end
      on_epoch_end
    on_train_end

Callbacks run in list order: the trainer's defaults first
(timeline -> evaluation -> metrics, so ``state.metric_value`` is populated
before it is recorded), then user callbacks in the order they were passed.

New per-worker or per-iteration behaviours — worker dropout, gradient-noise
injection, stragglers, early stopping — are written as callbacks and, when
they should be reachable from a declarative
:class:`~repro.core.spec.ExperimentSpec` or the CLI, registered on
``CALLBACKS``::

    @CALLBACKS.register("gradient_noise", description="inject Gaussian noise")
    class GradientNoise(Callback):
        def on_iteration_end(self, state):
            ...mutate state.replicas / state.flat_buffers...
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.registry import Registry
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.flat_buffer import WorldFlatBuffers
    from repro.core.metrics import TrainingMetrics
    from repro.core.synchronizer import GradientSynchronizer
    from repro.core.timeline import IterationTimeline, SyncReport
    from repro.core.trainer import DistributedTrainer, TrainerConfig


@dataclass
class TrainState:
    """Mutable view of one training run, passed to every hook.

    Exposes the trainer's replicas, flat buffers and synchronizer so
    callbacks can observe *and* perturb the run (that is the point — worker
    dropout or noise injection are writes), plus per-iteration scalars the
    trainer refreshes before each hook.
    """

    trainer: "DistributedTrainer"
    epoch: int = 0
    #: Iteration index within the current epoch.
    iteration: int = 0
    #: Iterations completed since the start of training.
    global_iteration: int = 0
    #: Fractional epoch (drives the LR policy).
    epoch_progress: float = 0.0
    #: Mean worker loss of the last completed iteration.
    loss: float = math.nan
    #: Mean loss over the just-finished epoch (valid in ``on_epoch_end``).
    epoch_loss: float = math.nan
    #: Learning rate applied on the last iteration.
    lr: float = math.nan
    #: Synchronization report of the last iteration.
    report: Optional["SyncReport"] = None
    #: Measured forward/backward wall time of the last iteration.
    compute_time_s: float = 0.0
    #: Evaluation result for the finishing epoch (set by EvaluationCallback).
    metric_value: float = math.nan
    stop_requested: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------ #
    # trainer views
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> "TrainerConfig":
        return self.trainer.config

    @property
    def replicas(self):
        return self.trainer.replicas

    @property
    def flat_buffers(self) -> Optional["WorldFlatBuffers"]:
        """The (P, n) flat world of the fused pipeline (None on the seed path)."""
        return self.trainer.flat_world

    @property
    def synchronizer(self) -> "GradientSynchronizer":
        return self.trainer.synchronizer

    @property
    def metrics(self) -> "TrainingMetrics":
        return self.trainer.metrics

    @property
    def timeline(self) -> "IterationTimeline":
        return self.trainer.timeline

    @property
    def world_size(self) -> int:
        return self.trainer.config.world_size

    @property
    def iterations_per_epoch(self) -> int:
        return self.trainer.iterations_per_epoch

    def request_stop(self) -> None:
        """Ask the trainer to stop after the current iteration/epoch."""
        self.stop_requested = True


class Callback:
    """Base class for trainer lifecycle plugins.  All hooks are optional."""

    def on_train_start(self, state: TrainState) -> None:
        """Called once, after the trainer is fully constructed."""

    def on_epoch_start(self, state: TrainState) -> None:
        """Called before the first iteration of every epoch."""

    def on_iteration_start(self, state: TrainState) -> None:
        """Called before each forward/backward + exchange + step."""

    def on_iteration_end(self, state: TrainState) -> None:
        """Called after the optimizer step; ``state.loss``/``report`` are fresh."""

    def on_epoch_end(self, state: TrainState) -> None:
        """Called after the last iteration of an epoch; ``state.epoch_loss`` is set."""

    def on_train_end(self, state: TrainState) -> None:
        """Called once, after the final dense synchronization of the replicas."""


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: Iterable[Callback] = ()):
        self.callbacks: List[Callback] = list(callbacks)
        for callback in self.callbacks:
            if not isinstance(callback, Callback):
                raise TypeError(f"{callback!r} is not a Callback "
                                f"(got {type(callback).__name__})")

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_train_start(self, state: TrainState) -> None:
        for callback in self.callbacks:
            callback.on_train_start(state)

    def on_epoch_start(self, state: TrainState) -> None:
        for callback in self.callbacks:
            callback.on_epoch_start(state)

    def on_iteration_start(self, state: TrainState) -> None:
        for callback in self.callbacks:
            callback.on_iteration_start(state)

    def on_iteration_end(self, state: TrainState) -> None:
        for callback in self.callbacks:
            callback.on_iteration_end(state)

    def on_epoch_end(self, state: TrainState) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(state)

    def on_train_end(self, state: TrainState) -> None:
        for callback in self.callbacks:
            callback.on_train_end(state)


#: Registry of callbacks constructible by name (from specs / the CLI).
CALLBACKS = Registry("callback", expose="callbacks")


class TimelineCallback(Callback):
    """Records per-iteration compute/compression/communication timing."""

    def on_iteration_end(self, state: TrainState) -> None:
        if state.report is not None:
            state.timeline.record(state.compute_time_s, state.report)


class EvaluationCallback(Callback):
    """Evaluates the consensus model on the configured epoch cadence.

    Runs every ``config.eval_every`` epochs and always on the last epoch;
    in-between epochs carry the previous metric value forward (NaN before
    the first evaluation), exactly as the pre-callback trainer did.
    """

    def on_epoch_end(self, state: TrainState) -> None:
        config = state.config
        should_eval = ((state.epoch + 1) % max(1, config.eval_every) == 0
                       or state.epoch == config.epochs - 1
                       or state.stop_requested)
        if should_eval:
            state.metric_value = state.trainer.evaluate()
        elif state.metrics.metric:
            state.metric_value = state.metrics.metric[-1]
        else:
            state.metric_value = math.nan


class MetricsCallback(Callback):
    """Appends one row per epoch to the trainer's :class:`TrainingMetrics`."""

    def on_epoch_end(self, state: TrainState) -> None:
        trainer = state.trainer
        # NaN (not the measured-model total) when no virtual clock is
        # attached, so time-to-accuracy plots never mix the two time bases.
        sim_time = trainer.simulated_time_s \
            if trainer.sim_report is not None else math.nan
        sim_report = trainer.sim_report
        # Cumulative (not per-epoch deltas): the row reproduces identically
        # whether a run was interrupted and resumed or ran straight through.
        rejected = sim_report.rejected_pushes if sim_report is not None else 0
        staleness = sim_report.mean_staleness() if sim_report is not None else 0.0
        population = getattr(trainer, "population", None)
        if population is not None:
            summary = population.summary()
            active = summary["active_clients"]
            fraction = summary["cohort_fraction"]
            unique_seen = summary["unique_clients_seen"]
        else:
            # Every rank is a client: full participation of a population P.
            active = state.world_size
            fraction = 1.0
            unique_seen = state.world_size
        state.metrics.record_epoch(
            state.epoch, state.epoch_loss, state.metric_value,
            comm_time=trainer.world.simulated_comm_time,
            compute_time=state.timeline.compute_s,
            simulated_time=sim_time,
            rejected_pushes=rejected,
            mean_staleness=staleness,
            active_clients=active,
            cohort_fraction=fraction,
            unique_clients_seen=unique_seen)


@CALLBACKS.register("progress", description="log loss/metric once per epoch")
class ProgressCallback(Callback):
    """Logs one line per epoch through :func:`repro.utils.logging.get_logger`."""

    def __init__(self, logger_name: str = "repro.trainer"):
        self.logger = get_logger(logger_name)

    def on_epoch_end(self, state: TrainState) -> None:
        self.logger.info(
            "epoch %d/%d  loss=%.4f  %s=%.3f  comm=%.3fms",
            state.epoch + 1, state.config.epochs, state.epoch_loss,
            state.metrics.metric_name, state.metric_value,
            state.trainer.world.simulated_comm_time * 1e3)


@CALLBACKS.register("checkpoint", description="save a resumable checkpoint every k epochs")
class CheckpointCallback(Callback):
    """Writes :func:`repro.core.checkpoint.save_checkpoint` snapshots."""

    def __init__(self, path: str, every_epochs: int = 1):
        if every_epochs < 1:
            raise ValueError("every_epochs must be >= 1")
        self.path = path
        self.every_epochs = every_epochs

    def on_epoch_end(self, state: TrainState) -> None:
        if (state.epoch + 1) % self.every_epochs == 0:
            from repro.core.checkpoint import save_checkpoint
            save_checkpoint(state.trainer, self.path)


@CALLBACKS.register("early_stopping",
                    description="stop when the metric stops improving")
class EarlyStoppingCallback(Callback):
    """Requests a stop after ``patience`` epochs without metric improvement.

    Improvement is metric-direction aware: higher-is-better for ``top1``,
    lower-is-better for ``perplexity``.
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: float = math.nan
        self.stale_epochs = 0

    def _improved(self, value: float, metric_name: str) -> bool:
        if math.isnan(self.best):
            return not math.isnan(value)
        if metric_name == "perplexity":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_epoch_end(self, state: TrainState) -> None:
        if self._improved(state.metric_value, state.metrics.metric_name):
            self.best = state.metric_value
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
            if self.stale_epochs >= self.patience:
                state.request_stop()


def resolve_callbacks(specs: Sequence) -> List[Callback]:
    """Build callback instances from a heterogeneous spec list.

    Accepts ready :class:`Callback` instances, registered names
    (``"progress"``), and ``{"name": ..., <kwargs>}`` dicts — the form an
    :class:`~repro.core.spec.ExperimentSpec` carries through JSON.
    """
    callbacks: List[Callback] = []
    for spec in specs or ():
        if isinstance(spec, Callback):
            callbacks.append(spec)
        elif isinstance(spec, str):
            callbacks.append(CALLBACKS.create(spec))
        elif isinstance(spec, dict):
            kwargs = dict(spec)
            try:
                name = kwargs.pop("name")
            except KeyError:
                raise ValueError(f"callback dict {spec!r} is missing the 'name' key; "
                                 f"expected {{'name': <one of {CALLBACKS.list()}>, ...kwargs}}")
            callbacks.append(CALLBACKS.create(name, **kwargs))
        else:
            raise TypeError(f"cannot build a callback from {spec!r}; pass a Callback "
                            "instance, a registered name, or a {'name': ...} dict")
    return callbacks
