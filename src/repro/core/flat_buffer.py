"""Zero-copy flat gradient/parameter buffers for the fused training pipeline.

The paper's algorithms — and every compressor — operate on the model as one
flat vector of ``n`` parameters.  The seed implementation materialized that
view each iteration with ``np.concatenate`` (and copied it back per
parameter), which costs a Python loop plus two O(n) copies per replica per
iteration.  This module removes those copies structurally:

* :class:`FlatLayout` records the (offset, size, shape) of every parameter in
  registration order — the single source of truth for the flat ordering used
  by ``core.flatten``, the compressors and the optimizers.
* :class:`ModelFlatBuffers` owns one contiguous float32 vector for the
  parameters and one for the gradients of a model.  Parameter data is
  *adopted*: each ``Parameter.data`` is re-pointed at a strided view of the
  flat vector, and each ``Parameter.grad`` is *pinned*
  (:meth:`repro.tensor.Tensor.pin_grad`) to a view of the gradient vector, so
  autograd accumulates directly into flat storage and
  ``flatten_gradients`` / ``unflatten_into_gradients`` become no-ops.
* :class:`WorldFlatBuffers` stacks the per-replica vectors as rows of one
  ``(P, n)`` matrix, which is exactly the batched-gradient operand the
  ``compress_batch`` kernels and the fused optimizer step consume — the
  synchronizer reads the training gradients with zero copies.

Adoption is transparent to the rest of the stack: ``p.data[...] = v`` writes
(checkpoint load, ``unflatten_into_parameters``) mutate the shared storage in
place, and reads see the live values.  The one rule is that nothing may
re-*bind* ``p.data`` to a new array after adoption; nothing in this codebase
does.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module, Parameter


class FlatLayout:
    """Offsets/sizes/shapes of a model's parameters in registration order."""

    def __init__(self, names: Sequence[str], shapes: Sequence[Tuple[int, ...]]):
        self.names: List[str] = list(names)
        self.shapes: List[Tuple[int, ...]] = [tuple(s) for s in shapes]
        self.sizes: np.ndarray = np.array([int(np.prod(s)) if s else 1 for s in self.shapes],
                                          dtype=np.int64)
        self.offsets: np.ndarray = np.concatenate([[0], np.cumsum(self.sizes)])
        self.total_size: int = int(self.offsets[-1])

    @classmethod
    def from_model(cls, model: Module) -> "FlatLayout":
        names, shapes = [], []
        for name, param in model.named_parameters():
            names.append(name)
            shapes.append(param.data.shape)
        if not names:
            raise ValueError("model has no parameters")
        return cls(names, shapes)

    def __len__(self) -> int:
        return len(self.names)

    def segments(self) -> Iterator[Tuple[int, int, Tuple[int, ...]]]:
        """Yield ``(offset, size, shape)`` per parameter in flat order."""
        for i, shape in enumerate(self.shapes):
            yield int(self.offsets[i]), int(self.sizes[i]), shape

    def matches(self, model: Module) -> bool:
        """Whether the model's parameters have this exact layout."""
        params = [p for _, p in model.named_parameters()]
        return (len(params) == len(self.shapes)
                and all(p.data.shape == s for p, s in zip(params, self.shapes)))


def _segment_views(storage: np.ndarray, layout: FlatLayout) -> List[np.ndarray]:
    """Per-parameter shaped views into a flat (or row-of-matrix) vector."""
    views = []
    for offset, size, shape in layout.segments():
        views.append(storage[offset:offset + size].reshape(shape))
    return views


class ModelFlatBuffers:
    """Flat parameter + gradient storage for one model replica.

    Parameters
    ----------
    model:
        The model to adopt.  Its ``Parameter.data`` arrays are copied into the
        flat vector once and re-pointed at views of it; ``Parameter.grad`` is
        pinned so backward passes accumulate into the flat gradient vector.
    param_store / grad_store:
        Optional preallocated float32 vectors of length ``layout.total_size``
        (typically rows of a :class:`WorldFlatBuffers` matrix).  Allocated
        when omitted.
    adopt_values:
        When ``True`` (the default) the model's current parameter values are
        copied into the flat vector before re-pointing.  ``False`` re-points
        without copying — a worker process attaching to parameter storage the
        parent already initialized (e.g. a shared-memory segment) must adopt
        the *storage's* values, not overwrite them with its own.
    """

    def __init__(self, model: Module, layout: Optional[FlatLayout] = None,
                 param_store: Optional[np.ndarray] = None,
                 grad_store: Optional[np.ndarray] = None,
                 adopt_values: bool = True):
        self.model = model
        self.layout = layout if layout is not None else FlatLayout.from_model(model)
        if not self.layout.matches(model):
            raise ValueError("model parameters do not match the provided layout")
        n = self.layout.total_size
        self.params = param_store if param_store is not None else np.empty(n, dtype=np.float32)
        self.grads = grad_store if grad_store is not None else np.zeros(n, dtype=np.float32)
        for store in (self.params, self.grads):
            if store.shape != (n,) or store.dtype != np.float32:
                raise ValueError("flat stores must be float32 vectors of the layout size")

        self.parameters: List[Parameter] = [p for _, p in model.named_parameters()]
        self._param_views = _segment_views(self.params, self.layout)
        self._grad_views = _segment_views(self.grads, self.layout)
        for param, pview, gview in zip(self.parameters, self._param_views, self._grad_views):
            if adopt_values:
                pview[...] = param.data        # adopt current values
            param.data = pview                 # re-point at flat storage
            param.pin_grad(gview)              # autograd writes into flat storage
        # Let core.flatten recognise adopted models and skip the copy loops.
        model._flat_buffers = self

    # ------------------------------------------------------------------ #
    def zero_grads(self) -> None:
        """One memset for the whole replica instead of a per-parameter loop."""
        self.grads.fill(0.0)
        for param in self.parameters:
            param.grad = None

    def grad_vector(self) -> np.ndarray:
        """The flat gradient vector (zero-copy).

        Parameters that received no gradient since :meth:`zero_grads`
        contribute zeros, matching ``flatten_gradients(missing_as_zero=True)``.
        """
        return self.grads

    def set_grad_vector(self, flat: np.ndarray) -> None:
        """Write a flat gradient back (the fused ``unflatten_into_gradients``).

        Also re-attaches every parameter's pinned view so ``param.grad``
        reflects the written values.
        """
        self.grads[...] = flat
        for param, gview in zip(self.parameters, self._grad_views):
            param.grad = gview

    def attach_grads(self) -> None:
        """Point every ``param.grad`` at its pinned flat view.

        Used after code (e.g. the batched replica executor) has written the
        flat gradient storage directly without going through autograd.
        """
        for param, gview in zip(self.parameters, self._grad_views):
            param.grad = gview

    def param_vector(self) -> np.ndarray:
        """The flat parameter vector (zero-copy; mutating it moves the model)."""
        return self.params

    def param_view(self, index: int) -> np.ndarray:
        return self._param_views[index]

    def grad_view(self, index: int) -> np.ndarray:
        return self._grad_views[index]


class WorldFlatBuffers:
    """Per-world flat storage: replica ``p``'s vectors are rows ``p``.

    The ``(P, n)`` gradient matrix is exactly the stacked operand the batched
    compressor kernels and the fused optimizer step consume, so one training
    iteration moves gradients from backward pass to optimizer update without
    a single flatten/unflatten copy.

    ``param_matrix`` / ``grad_matrix`` optionally supply externally-owned
    float32 ``(P, n)`` storage (e.g. views of a shared-memory segment, so
    parent and worker processes operate on the same physical buffers); they
    are allocated when omitted.  ``adopt_values=False`` re-points the
    replicas at the matrices without copying their current values in — the
    attach-side of a shared world, where the storage already holds the
    initialized parameters.
    """

    def __init__(self, replicas: Sequence[Module], *,
                 param_matrix: Optional[np.ndarray] = None,
                 grad_matrix: Optional[np.ndarray] = None,
                 adopt_values: bool = True):
        if not replicas:
            raise ValueError("need at least one replica")
        self.layout = FlatLayout.from_model(replicas[0])
        P, n = len(replicas), self.layout.total_size
        if param_matrix is None:
            param_matrix = np.empty((P, n), dtype=np.float32)
        if grad_matrix is None:
            grad_matrix = np.zeros((P, n), dtype=np.float32)
        for matrix in (param_matrix, grad_matrix):
            if matrix.shape != (P, n) or matrix.dtype != np.float32:
                raise ValueError(f"world matrices must be float32 of shape "
                                 f"{(P, n)}, got {matrix.dtype} {matrix.shape}")
        self.param_matrix = param_matrix
        self.grad_matrix = grad_matrix
        self.replica_buffers: List[ModelFlatBuffers] = [
            ModelFlatBuffers(model, self.layout,
                             param_store=self.param_matrix[p],
                             grad_store=self.grad_matrix[p],
                             adopt_values=adopt_values)
            for p, model in enumerate(replicas)
        ]

    @property
    def world_size(self) -> int:
        return self.param_matrix.shape[0]

    @property
    def num_parameters(self) -> int:
        return self.param_matrix.shape[1]

    def zero_grads(self) -> None:
        """Zero every replica's gradients with one memset of the matrix."""
        self.grad_matrix.fill(0.0)
        for buffers in self.replica_buffers:
            for param in buffers.parameters:
                param.grad = None

    def grad_matrix_view(self) -> np.ndarray:
        """The stacked ``(P, n)`` gradient operand (zero-copy)."""
        return self.grad_matrix

    def stacked_param_view(self, index: int) -> np.ndarray:
        """Parameter ``index`` of every replica as one ``(P, *shape)`` view."""
        offset, size, shape = list(self.layout.segments())[index]
        return self.param_matrix[:, offset:offset + size].reshape((self.world_size,) + shape)

    def stacked_grad_view(self, index: int) -> np.ndarray:
        """Gradient ``index`` of every replica as one ``(P, *shape)`` view."""
        offset, size, shape = list(self.layout.segments())[index]
        return self.grad_matrix[:, offset:offset + size].reshape((self.world_size,) + shape)


def adopt_module_buffers(model: Module, views, *, adopt_values: bool = True) -> None:
    """Re-point a model's registered buffers at externally-owned views.

    ``views`` maps dotted buffer names (as yielded by
    :meth:`~repro.nn.module.Module.named_buffers`) to arrays of the same
    shape and dtype — typically slots of a shared-memory segment, so
    BatchNorm's in-place running-stat updates in a worker process become
    visible to the parent (which needs them at evaluation time).  The same
    adoption rule as parameters applies: ``adopt_values=True`` copies the
    model's current buffer values into the views first (the owning side);
    ``False`` adopts the views' values as-is (the attaching side).
    """
    for name, view in views.items():
        parts = name.split(".")
        module = model
        for part in parts[:-1]:
            module = module._modules[part]
        leaf = parts[-1]
        current = module._buffers[leaf]
        if view.shape != current.shape or view.dtype != current.dtype:
            raise ValueError(f"buffer {name!r} expects {current.dtype} "
                             f"{current.shape}, got {view.dtype} {view.shape}")
        if adopt_values:
            view[...] = current
        module._buffers[leaf] = view
        object.__setattr__(module, leaf, view)
