"""Batched forward/backward over all simulated replicas of an MLP model.

The trainer keeps ``P`` genuinely separate model replicas (A2SGD's replicas
diverge — each worker adds back its own error vector), so the seed ran ``P``
independent autograd passes per iteration.  For the paper's FNN workloads the
replicas share one architecture and differ only in their weights, which means
the whole world can be evaluated as a single batched computation: every
Linear layer's weights are stacked as a ``(P, out, in)`` operand and the
forward/backward pass is a handful of batched matmuls instead of ``P`` Python
graph traversals.

Zero-copy by construction: the stacked weight operands are strided views of
the world's flat ``(P, n)`` parameter matrix (:class:`WorldFlatBuffers`), and
the backward pass writes layer gradients straight into the flat ``(P, n)``
gradient matrix the compressors consume.  No flatten/unflatten step exists.

The executor handles the ``Linear``/``ReLU`` sandwich used by the FNN models
(hand-derived backward, identical math to the autograd closures: softmax
cross-entropy ``(p - 1[y])/B``, ReLU masking, ``dW = dZᵀX``, ``db = Σ dZ``,
``dX = dZ W``).  Models with other layers (conv, recurrent, dropout) fall
back to the per-replica autograd loop — still through the flat buffers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flat_buffer import WorldFlatBuffers
from repro.nn.activations import ReLU
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.module import Module


def _linear_relu_stack(model: Module) -> Optional[List[Tuple[str, Optional[Linear]]]]:
    """The model's layer sequence if it is an MLP this executor can run."""
    if isinstance(model, Sequential):
        net = model
    else:
        net = getattr(model, "net", None)
        if not isinstance(net, Sequential):
            return None
        # Only trust models whose forward is "flatten input, then net" —
        # anything else (extra heads, state) needs the autograd path.
        extra_children = [m for name, m in model._modules.items() if m is not net]
        if extra_children:
            return None
    steps: List[Tuple[str, Optional[Linear]]] = []
    for layer in net:
        if isinstance(layer, Linear):
            steps.append(("linear", layer))
        elif isinstance(layer, ReLU):
            steps.append(("relu", None))
        else:
            return None
    if not steps or steps[0][0] != "linear" or steps[-1][0] != "linear":
        return None
    return steps


class BatchedReplicaExecutor:
    """One fused forward/backward for ``P`` replicas of a Linear/ReLU MLP."""

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        steps = _linear_relu_stack(replicas[0])
        if steps is None:
            raise ValueError("model is not a Linear/ReLU stack")
        self.world = world

        index_of = {id(p): i for i, p in enumerate(world.replica_buffers[0].parameters)}
        self._plan: List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray],
                               Optional[np.ndarray], Optional[np.ndarray]]] = []
        for kind, layer in steps:
            if kind == "relu":
                self._plan.append(("relu", None, None, None, None))
                continue
            w_index = index_of[id(layer.weight)]
            weights = world.stacked_param_view(w_index)       # (P, out, in) view
            grad_w = world.stacked_grad_view(w_index)
            if layer.bias is not None:
                b_index = index_of[id(layer.bias)]
                biases = world.stacked_param_view(b_index)    # (P, out) view
                grad_b = world.stacked_grad_view(b_index)
            else:
                biases = grad_b = None
            self._plan.append(("linear", weights, biases, grad_w, grad_b))

    @staticmethod
    def supports(model: Module) -> bool:
        """Whether this executor can run the model (Linear/ReLU MLP)."""
        return _linear_relu_stack(model) is not None

    # ------------------------------------------------------------------ #
    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        """Cross-entropy forward + backward for every replica at once.

        ``inputs`` is the stacked per-replica batch ``(P, B, ...)`` and
        ``targets`` the integer labels ``(P, B)``.  Layer gradients are
        written directly into the world's flat gradient matrix (zero-copy);
        the per-replica mean losses are returned.
        """
        P = self.world.world_size
        if inputs.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {inputs.shape[0]}")
        batch = inputs.shape[1]
        X = np.asarray(inputs, dtype=np.float32).reshape(P, batch, -1)
        targets = np.asarray(targets, dtype=np.int64).reshape(P, batch)

        # ---- forward ---------------------------------------------------- #
        caches: List[Tuple] = []
        for kind, weights, biases, _, _ in self._plan:
            if kind == "relu":
                mask = X > 0
                X = X * mask
                caches.append(("relu", mask))
            else:
                caches.append(("linear", X))
                X = np.matmul(X, weights.transpose(0, 2, 1))
                if biases is not None:
                    X = X + biases[:, None, :]
        logits = X                                            # (P, B, C)

        # ---- softmax cross-entropy (per replica) ------------------------ #
        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        sum_exp = exp.sum(axis=2, keepdims=True)
        log_probs = shifted - np.log(sum_exp)
        replica_index = np.arange(P)[:, None]
        batch_index = np.arange(batch)[None, :]
        losses = -log_probs[replica_index, batch_index, targets].mean(axis=1)

        dZ = exp / sum_exp
        dZ[replica_index, batch_index, targets] -= 1.0
        dZ /= batch

        # ---- backward ---------------------------------------------------- #
        for (kind, weights, biases, grad_w, grad_b), cache in zip(
                reversed(self._plan), reversed(caches)):
            if kind == "relu":
                dZ = dZ * cache[1]
            else:
                layer_input = cache[1]
                grad_w[...] = np.matmul(dZ.transpose(0, 2, 1), layer_input)
                if grad_b is not None:
                    grad_b[...] = dZ.sum(axis=1)
                dZ = np.matmul(dZ, weights)

        # Expose the freshly written flat storage through param.grad so the
        # looped optimizer path / introspection see the same gradients.
        for buffers in self.world.replica_buffers:
            buffers.attach_grads()
        return [float(value) for value in losses]
