"""Batched forward/backward over all simulated replicas of an MLP model.

The trainer keeps ``P`` genuinely separate model replicas (A2SGD's replicas
diverge — each worker adds back its own error vector), so the seed ran ``P``
independent autograd passes per iteration.  For the paper's FNN workloads the
replicas share one architecture and differ only in their weights, which means
the whole world can be evaluated as a single batched computation: every
Linear layer's weights are stacked as a ``(P, out, in)`` operand and the
forward/backward pass is a handful of batched matmuls instead of ``P`` Python
graph traversals.

Zero-copy by construction: the stacked weight operands are strided views of
the world's flat ``(P, n)`` parameter matrix (:class:`WorldFlatBuffers`), and
the backward pass writes layer gradients straight into the flat ``(P, n)``
gradient matrix the compressors consume.  No flatten/unflatten step exists.

:class:`BatchedReplicaExecutor` handles the ``Linear``/``ReLU`` sandwich used
by the FNN models (hand-derived backward, identical math to the autograd
closures: softmax cross-entropy ``(p - 1[y])/B``, ReLU masking,
``dW = dZᵀX``, ``db = Σ dZ``, ``dX = dZ W``).

Recurrent and convolutional stacks run through the *generic* batched
executors instead: :class:`ReplicaStack` exposes each parameter of the world
as one stacked ``(P, *shape)`` autograd tensor (data = strided view of the
flat ``(P, n)`` parameter matrix, gradient pinned to the matching view of the
gradient matrix), and the models' ``forward_batched`` mirrors evaluate all
replicas in one graph whose per-replica slices perform exactly the seed
arithmetic — so LSTM/conv gradients are bit-identical to the per-replica
autograd loop while paying one Python graph instead of ``P``.
:class:`BatchedAutogradExecutor` covers classifiers (ResNet, VGG, and any
model exposing ``forward_batched``), :class:`BatchedLanguageModelExecutor`
covers the LSTM language model with stacked truncated-BPTT state.  Models
with unsupported layers (e.g. active dropout) fall back to the per-replica
autograd loop — still through the flat buffers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flat_buffer import WorldFlatBuffers
from repro.nn.activations import ReLU
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


def _linear_relu_stack(model: Module) -> Optional[List[Tuple[str, Optional[Linear]]]]:
    """The model's layer sequence if it is an MLP this executor can run."""
    if isinstance(model, Sequential):
        net = model
    else:
        net = getattr(model, "net", None)
        if not isinstance(net, Sequential):
            return None
        # Only trust models whose forward is "flatten input, then net" —
        # anything else (extra heads, state) needs the autograd path.
        extra_children = [m for name, m in model._modules.items() if m is not net]
        if extra_children:
            return None
    steps: List[Tuple[str, Optional[Linear]]] = []
    for layer in net:
        if isinstance(layer, Linear):
            steps.append(("linear", layer))
        elif isinstance(layer, ReLU):
            steps.append(("relu", None))
        else:
            return None
    if not steps or steps[0][0] != "linear" or steps[-1][0] != "linear":
        return None
    return steps


class BatchedReplicaExecutor:
    """One fused forward/backward for ``P`` replicas of a Linear/ReLU MLP."""

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        steps = _linear_relu_stack(replicas[0])
        if steps is None:
            raise ValueError("model is not a Linear/ReLU stack")
        self.world = world

        index_of = {id(p): i for i, p in enumerate(world.replica_buffers[0].parameters)}
        self._plan: List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray],
                               Optional[np.ndarray], Optional[np.ndarray]]] = []
        for kind, layer in steps:
            if kind == "relu":
                self._plan.append(("relu", None, None, None, None))
                continue
            w_index = index_of[id(layer.weight)]
            weights = world.stacked_param_view(w_index)       # (P, out, in) view
            grad_w = world.stacked_grad_view(w_index)
            if layer.bias is not None:
                b_index = index_of[id(layer.bias)]
                biases = world.stacked_param_view(b_index)    # (P, out) view
                grad_b = world.stacked_grad_view(b_index)
            else:
                biases = grad_b = None
            self._plan.append(("linear", weights, biases, grad_w, grad_b))

    @staticmethod
    def supports(model: Module) -> bool:
        """Whether this executor can run the model (Linear/ReLU MLP)."""
        return _linear_relu_stack(model) is not None

    # ------------------------------------------------------------------ #
    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        """Cross-entropy forward + backward for every replica at once.

        ``inputs`` is the stacked per-replica batch ``(P, B, ...)`` and
        ``targets`` the integer labels ``(P, B)``.  Layer gradients are
        written directly into the world's flat gradient matrix (zero-copy);
        the per-replica mean losses are returned.
        """
        P = self.world.world_size
        if inputs.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {inputs.shape[0]}")
        batch = inputs.shape[1]
        X = np.asarray(inputs, dtype=np.float32).reshape(P, batch, -1)
        targets = np.asarray(targets, dtype=np.int64).reshape(P, batch)

        # ---- forward ---------------------------------------------------- #
        caches: List[Tuple] = []
        for kind, weights, biases, _, _ in self._plan:
            if kind == "relu":
                mask = X > 0
                X = X * mask
                caches.append(("relu", mask))
            else:
                caches.append(("linear", X))
                X = np.matmul(X, weights.transpose(0, 2, 1))
                if biases is not None:
                    X = X + biases[:, None, :]
        logits = X                                            # (P, B, C)

        # ---- softmax cross-entropy (per replica) ------------------------ #
        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        sum_exp = exp.sum(axis=2, keepdims=True)
        log_probs = shifted - np.log(sum_exp)
        replica_index = np.arange(P)[:, None]
        batch_index = np.arange(batch)[None, :]
        losses = -log_probs[replica_index, batch_index, targets].mean(axis=1)

        dZ = exp / sum_exp
        dZ[replica_index, batch_index, targets] -= 1.0
        dZ /= batch

        # ---- backward ---------------------------------------------------- #
        for (kind, weights, biases, grad_w, grad_b), cache in zip(
                reversed(self._plan), reversed(caches)):
            if kind == "relu":
                dZ = dZ * cache[1]
            else:
                layer_input = cache[1]
                grad_w[...] = np.matmul(dZ.transpose(0, 2, 1), layer_input)
                if grad_b is not None:
                    grad_b[...] = dZ.sum(axis=1)
                dZ = np.matmul(dZ, weights)

        # Expose the freshly written flat storage through param.grad so the
        # looped optimizer path / introspection see the same gradients.
        for buffers in self.world.replica_buffers:
            buffers.attach_grads()
        return [float(value) for value in losses]


class ReplicaStack:
    """Stacked ``(P, *shape)`` autograd views over a world's parameters.

    For parameter ``i`` of the shared layout, :meth:`tensor` returns one
    :class:`~repro.tensor.Tensor` whose data is the strided
    ``(P, *shape)`` view of the world's flat parameter matrix and whose
    gradient is pinned to the matching view of the gradient matrix — so a
    single batched autograd pass reads live parameters and writes gradients
    for every replica with zero copies.  :meth:`siblings` resolves a module of
    replica 0 to the corresponding module on every replica (needed by layers
    with per-replica buffers, e.g. BatchNorm running statistics).
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        if len(replicas) != world.world_size:
            raise ValueError(f"{len(replicas)} replicas for world size {world.world_size}")
        self.world = world
        self.replicas = list(replicas)
        self._index_of: Dict[int, int] = {
            id(p): i for i, p in enumerate(world.replica_buffers[0].parameters)}
        self._tensors: Dict[int, Tensor] = {}
        self._reshaped: Dict[Tuple[int, Tuple[int, ...]], Tensor] = {}
        module_rows = [list(replica.modules()) for replica in replicas]
        if len({len(row) for row in module_rows}) != 1:
            raise ValueError("replicas do not share one module structure")
        self._siblings: Dict[int, Tuple[Module, ...]] = {
            id(group[0]): group for group in zip(*module_rows)}

    @property
    def world_size(self) -> int:
        return self.world.world_size

    def tensor(self, param: Parameter) -> Tensor:
        """The stacked ``(P, *shape)`` tensor for a replica-0 parameter."""
        index = self._index_of[id(param)]
        stacked = self._tensors.get(index)
        if stacked is None:
            stacked = Tensor(self.world.stacked_param_view(index), requires_grad=True)
            stacked.pin_grad(self.world.stacked_grad_view(index))
            self._tensors[index] = stacked
        return stacked

    def reshaped(self, param: Parameter, *shape: int) -> Tensor:
        """A cached reshape of :meth:`tensor` (e.g. a broadcastable bias row).

        Caching matters for more than speed: when a parameter is used many
        times in one graph (an LSTM bias across BPTT steps), the seed graph
        accumulates its gradient *inside each consumer's backward closure* —
        the parameter is a direct leaf parent.  A fresh reshape node per use
        would defer those accumulations to the reshape closures, which occupy
        different topological positions, changing the floating-point
        summation order.  One shared reshape node acts as a proxy leaf that
        accumulates in consumer-closure order — exactly the seed's order —
        keeping batched gradients bit-identical.
        """
        key = (id(param), shape)
        node = self._reshaped.get(key)
        if node is None:
            node = self.tensor(param).reshape(*shape)
            self._reshaped[key] = node
        return node

    def siblings(self, module: Module) -> Tuple[Module, ...]:
        """The corresponding module on every replica (replica order)."""
        return self._siblings[id(module)]

    def begin_iteration(self) -> None:
        """Reset the stacked gradients so the first accumulation overwrites
        the pinned views (no O(P·n) memset needed)."""
        for stacked in self._tensors.values():
            stacked.grad = None

    def attach_grads(self) -> None:
        """Expose the flat gradient storage through every ``param.grad``."""
        for buffers in self.world.replica_buffers:
            buffers.attach_grads()


def supports_batched_forward(model: Module) -> bool:
    """Whether every module in the tree provides a ``forward_batched`` mirror.

    Layers without one (e.g. active :class:`~repro.nn.Dropout`, whose
    per-replica mask generators a batched pass cannot reproduce in order)
    force the trainer back to the per-replica autograd loop.
    """
    return all(hasattr(type(module), "forward_batched") for module in model.modules())


class BatchedAutogradExecutor:
    """One fused autograd pass for ``P`` replicas of any batchable classifier.

    Complements :class:`BatchedReplicaExecutor` (the hand-derived MLP fast
    path): the model's ``forward_batched`` mirror builds a single graph over
    the stacked ``(P, N, ...)`` batch with :class:`ReplicaStack` parameter
    views, and one backward pass writes every replica's gradients into the
    flat ``(P, n)`` matrix — bit-identical to ``P`` independent autograd
    passes, at a fraction of the Python graph overhead.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        if not supports_batched_forward(replicas[0]):
            raise ValueError(f"{type(replicas[0]).__name__} has layers without a "
                             "batched forward; use the per-replica loop")
        self.stack = ReplicaStack(replicas, world)
        self.model = replicas[0]
        self.world = world

    @staticmethod
    def supports(model: Module) -> bool:
        """Whether the generic batched executor can run the model."""
        return supports_batched_forward(model)

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        """Cross-entropy forward + backward for every replica at once.

        Same contract as :meth:`BatchedReplicaExecutor.forward_backward`:
        stacked inputs ``(P, B, ...)`` and integer targets ``(P, B)`` in,
        per-replica mean losses out, gradients written into the world's flat
        gradient matrix.
        """
        P = self.stack.world_size
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {inputs.shape[0]}")
        self.stack.begin_iteration()
        logits = self.model.forward_batched(Tensor(inputs), self.stack)
        loss = F.cross_entropy_batched(logits, np.asarray(targets))
        loss.backward(np.ones(P, dtype=np.float32))
        self.stack.attach_grads()
        return [float(value) for value in loss.data]


class BatchedLanguageModelExecutor:
    """Fused truncated-BPTT pass for ``P`` replicas of a language model.

    Threads one *stacked* LSTM state (``(P, N, H)`` tensors per layer)
    between windows instead of ``P`` per-replica states; gradients land in
    the flat ``(P, n)`` matrix exactly as the classification executors'.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        model = replicas[0]
        if not self.supports(model):
            raise ValueError(f"{type(model).__name__} has layers without a "
                             "batched forward; use the per-replica loop")
        self.stack = ReplicaStack(replicas, world)
        self.model = model
        self.world = world

    @staticmethod
    def supports(model: Module) -> bool:
        """Batched LM execution needs a state-threading ``forward_batched``."""
        return (supports_batched_forward(model)
                and hasattr(type(model), "detach_state"))

    def forward_backward(self, tokens: np.ndarray, targets: np.ndarray,
                         state) -> Tuple[List[float], object]:
        """One BPTT window for every replica at once.

        ``tokens``/``targets`` are stacked ``(P, T, N)`` integer batches;
        ``state`` is ``None`` at an epoch start or whatever the previous call
        returned.  Returns the per-replica mean losses and the detached
        stacked state for the next window.
        """
        P = self.stack.world_size
        tokens = np.asarray(tokens)
        if tokens.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {tokens.shape[0]}")
        self.stack.begin_iteration()
        logits, new_state = self.model.forward_batched(tokens, state, self.stack)
        targets = np.asarray(targets).reshape(P, -1)
        loss = F.cross_entropy_batched(logits, targets)
        loss.backward(np.ones(P, dtype=np.float32))
        self.stack.attach_grads()
        return ([float(value) for value in loss.data],
                self.model.detach_state(new_state))


def build_replica_executor(replicas: Sequence[Module], world: WorldFlatBuffers,
                           task: str):
    """Pick the fastest batched executor the model supports, else ``None``.

    Classification MLPs get the hand-derived :class:`BatchedReplicaExecutor`;
    other classifiers with full ``forward_batched`` coverage get the generic
    :class:`BatchedAutogradExecutor`; language models get
    :class:`BatchedLanguageModelExecutor`.  ``None`` means the trainer should
    run the per-replica autograd loop (still through the flat buffers).
    """
    model = replicas[0]
    if task == "classification":
        if BatchedReplicaExecutor.supports(model):
            return BatchedReplicaExecutor(replicas, world)
        if BatchedAutogradExecutor.supports(model):
            return BatchedAutogradExecutor(replicas, world)
    elif task == "language_model":
        if BatchedLanguageModelExecutor.supports(model):
            return BatchedLanguageModelExecutor(replicas, world)
    return None
