"""Batched forward/backward over all simulated replicas of an MLP model.

The trainer keeps ``P`` genuinely separate model replicas (A2SGD's replicas
diverge — each worker adds back its own error vector), so the seed ran ``P``
independent autograd passes per iteration.  For the paper's FNN workloads the
replicas share one architecture and differ only in their weights, which means
the whole world can be evaluated as a single batched computation: every
Linear layer's weights are stacked as a ``(P, out, in)`` operand and the
forward/backward pass is a handful of batched matmuls instead of ``P`` Python
graph traversals.

Zero-copy by construction: the stacked weight operands are strided views of
the world's flat ``(P, n)`` parameter matrix (:class:`WorldFlatBuffers`), and
the backward pass writes layer gradients straight into the flat ``(P, n)``
gradient matrix the compressors consume.  No flatten/unflatten step exists.

:class:`BatchedReplicaExecutor` handles the ``Linear``/``ReLU`` sandwich used
by the FNN models (hand-derived backward, identical math to the autograd
closures: softmax cross-entropy ``(p - 1[y])/B``, ReLU masking,
``dW = dZᵀX``, ``db = Σ dZ``, ``dX = dZ W``).

Recurrent and convolutional stacks run through the *generic* batched
executors instead: :class:`ReplicaStack` exposes each parameter of the world
as one stacked ``(P, *shape)`` autograd tensor (data = strided view of the
flat ``(P, n)`` parameter matrix, gradient pinned to the matching view of the
gradient matrix), and the models' ``forward_batched`` mirrors evaluate all
replicas in one graph whose per-replica slices perform exactly the seed
arithmetic — so LSTM/conv gradients are bit-identical to the per-replica
autograd loop while paying one Python graph instead of ``P``.
:class:`BatchedAutogradExecutor` covers classifiers (ResNet, VGG, and any
model exposing ``forward_batched``), :class:`BatchedLanguageModelExecutor`
covers the LSTM language model with stacked truncated-BPTT state.  Models
with unsupported layers (e.g. active dropout) fall back to the per-replica
autograd loop — still through the flat buffers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flat_buffer import WorldFlatBuffers
from repro.nn.activations import ReLU
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F
from repro.tensor.tape import Tape, TapeReplayer, recording

#: Distinct input-shape signatures a taped executor keeps recordings for
#: (typically two: the steady batch and the smaller trailing batch).  Unseen
#: signatures beyond the cap run eagerly without recording.
_MAX_TAPES = 4


def _linear_relu_stack(model: Module) -> Optional[List[Tuple[str, Optional[Linear]]]]:
    """The model's layer sequence if it is an MLP this executor can run."""
    if isinstance(model, Sequential):
        net = model
    else:
        net = getattr(model, "net", None)
        if not isinstance(net, Sequential):
            return None
        # Only trust models whose forward is "flatten input, then net" —
        # anything else (extra heads, state) needs the autograd path.
        extra_children = [m for name, m in model._modules.items() if m is not net]
        if extra_children:
            return None
    steps: List[Tuple[str, Optional[Linear]]] = []
    for layer in net:
        if isinstance(layer, Linear):
            steps.append(("linear", layer))
        elif isinstance(layer, ReLU):
            steps.append(("relu", None))
        else:
            return None
    if not steps or steps[0][0] != "linear" or steps[-1][0] != "linear":
        return None
    return steps


class BatchedReplicaExecutor:
    """One fused forward/backward for ``P`` replicas of a Linear/ReLU MLP."""

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        steps = _linear_relu_stack(replicas[0])
        if steps is None:
            raise ValueError("model is not a Linear/ReLU stack")
        self.world = world

        index_of = {id(p): i for i, p in enumerate(world.replica_buffers[0].parameters)}
        self._plan: List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray],
                               Optional[np.ndarray], Optional[np.ndarray]]] = []
        for kind, layer in steps:
            if kind == "relu":
                self._plan.append(("relu", None, None, None, None))
                continue
            w_index = index_of[id(layer.weight)]
            weights = world.stacked_param_view(w_index)       # (P, out, in) view
            grad_w = world.stacked_grad_view(w_index)
            if layer.bias is not None:
                b_index = index_of[id(layer.bias)]
                biases = world.stacked_param_view(b_index)    # (P, out) view
                grad_b = world.stacked_grad_view(b_index)
            else:
                biases = grad_b = None
            self._plan.append(("linear", weights, biases, grad_w, grad_b))

    @staticmethod
    def supports(model: Module) -> bool:
        """Whether this executor can run the model (Linear/ReLU MLP)."""
        return _linear_relu_stack(model) is not None

    # ------------------------------------------------------------------ #
    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        """Cross-entropy forward + backward for every replica at once.

        ``inputs`` is the stacked per-replica batch ``(P, B, ...)`` and
        ``targets`` the integer labels ``(P, B)``.  Layer gradients are
        written directly into the world's flat gradient matrix (zero-copy);
        the per-replica mean losses are returned.
        """
        P = self.world.world_size
        if inputs.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {inputs.shape[0]}")
        batch = inputs.shape[1]
        X = np.asarray(inputs, dtype=np.float32).reshape(P, batch, -1)
        targets = np.asarray(targets, dtype=np.int64).reshape(P, batch)

        # ---- forward ---------------------------------------------------- #
        caches: List[Tuple] = []
        for kind, weights, biases, _, _ in self._plan:
            if kind == "relu":
                mask = X > 0
                X = X * mask
                caches.append(("relu", mask))
            else:
                caches.append(("linear", X))
                X = np.matmul(X, weights.transpose(0, 2, 1))
                if biases is not None:
                    X = X + biases[:, None, :]
        logits = X                                            # (P, B, C)

        # ---- softmax cross-entropy (per replica) ------------------------ #
        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        sum_exp = exp.sum(axis=2, keepdims=True)
        log_probs = shifted - np.log(sum_exp)
        replica_index = np.arange(P)[:, None]
        batch_index = np.arange(batch)[None, :]
        losses = -log_probs[replica_index, batch_index, targets].mean(axis=1)

        dZ = exp / sum_exp
        dZ[replica_index, batch_index, targets] -= 1.0
        dZ /= batch

        # ---- backward ---------------------------------------------------- #
        for (kind, weights, biases, grad_w, grad_b), cache in zip(
                reversed(self._plan), reversed(caches)):
            if kind == "relu":
                dZ = dZ * cache[1]
            else:
                layer_input = cache[1]
                grad_w[...] = np.matmul(dZ.transpose(0, 2, 1), layer_input)
                if grad_b is not None:
                    grad_b[...] = dZ.sum(axis=1)
                dZ = np.matmul(dZ, weights)

        # Expose the freshly written flat storage through param.grad so the
        # looped optimizer path / introspection see the same gradients.
        for buffers in self.world.replica_buffers:
            buffers.attach_grads()
        return [float(value) for value in losses]


class ReplicaStack:
    """Stacked ``(P, *shape)`` autograd views over a world's parameters.

    For parameter ``i`` of the shared layout, :meth:`tensor` returns one
    :class:`~repro.tensor.Tensor` whose data is the strided
    ``(P, *shape)`` view of the world's flat parameter matrix and whose
    gradient is pinned to the matching view of the gradient matrix — so a
    single batched autograd pass reads live parameters and writes gradients
    for every replica with zero copies.  :meth:`siblings` resolves a module of
    replica 0 to the corresponding module on every replica (needed by layers
    with per-replica buffers, e.g. BatchNorm running statistics).
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        if len(replicas) != world.world_size:
            raise ValueError(f"{len(replicas)} replicas for world size {world.world_size}")
        self.world = world
        self.replicas = list(replicas)
        self._index_of: Dict[int, int] = {
            id(p): i for i, p in enumerate(world.replica_buffers[0].parameters)}
        self._tensors: Dict[int, Tensor] = {}
        self._reshaped: Dict[Tuple[int, Tuple[int, ...]], Tensor] = {}
        module_rows = [list(replica.modules()) for replica in replicas]
        if len({len(row) for row in module_rows}) != 1:
            raise ValueError("replicas do not share one module structure")
        self._siblings: Dict[int, Tuple[Module, ...]] = {
            id(group[0]): group for group in zip(*module_rows)}

    @property
    def world_size(self) -> int:
        return self.world.world_size

    def tensor(self, param: Parameter) -> Tensor:
        """The stacked ``(P, *shape)`` tensor for a replica-0 parameter."""
        index = self._index_of[id(param)]
        stacked = self._tensors.get(index)
        if stacked is None:
            stacked = Tensor(self.world.stacked_param_view(index), requires_grad=True)
            stacked.pin_grad(self.world.stacked_grad_view(index))
            self._tensors[index] = stacked
        return stacked

    def reshaped(self, param: Parameter, *shape: int) -> Tensor:
        """A cached reshape of :meth:`tensor` (e.g. a broadcastable bias row).

        Caching matters for more than speed: when a parameter is used many
        times in one graph (an LSTM bias across BPTT steps), the seed graph
        accumulates its gradient *inside each consumer's backward closure* —
        the parameter is a direct leaf parent.  A fresh reshape node per use
        would defer those accumulations to the reshape closures, which occupy
        different topological positions, changing the floating-point
        summation order.  One shared reshape node acts as a proxy leaf that
        accumulates in consumer-closure order — exactly the seed's order —
        keeping batched gradients bit-identical.
        """
        key = (id(param), shape)
        node = self._reshaped.get(key)
        if node is None:
            node = self.tensor(param).reshape(*shape)
            self._reshaped[key] = node
        return node

    def siblings(self, module: Module) -> Tuple[Module, ...]:
        """The corresponding module on every replica (replica order)."""
        return self._siblings[id(module)]

    def begin_iteration(self) -> None:
        """Reset the stacked gradients so the first accumulation overwrites
        the pinned views (no O(P·n) memset needed)."""
        for stacked in self._tensors.values():
            stacked.grad = None

    def attach_grads(self) -> None:
        """Expose the flat gradient storage through every ``param.grad``."""
        for buffers in self.world.replica_buffers:
            buffers.attach_grads()


def supports_batched_forward(model: Module) -> bool:
    """Whether every module in the tree provides a ``forward_batched`` mirror.

    Layers without one (e.g. active :class:`~repro.nn.Dropout`, whose
    per-replica mask generators a batched pass cannot reproduce in order)
    force the trainer back to the per-replica autograd loop.
    """
    return all(hasattr(type(module), "forward_batched") for module in model.modules())


class BatchedAutogradExecutor:
    """One fused autograd pass for ``P`` replicas of any batchable classifier.

    Complements :class:`BatchedReplicaExecutor` (the hand-derived MLP fast
    path): the model's ``forward_batched`` mirror builds a single graph over
    the stacked ``(P, N, ...)`` batch with :class:`ReplicaStack` parameter
    views, and one backward pass writes every replica's gradients into the
    flat ``(P, n)`` matrix — bit-identical to ``P`` independent autograd
    passes, at a fraction of the Python graph overhead.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        if not supports_batched_forward(replicas[0]):
            raise ValueError(f"{type(replicas[0]).__name__} has layers without a "
                             "batched forward; use the per-replica loop")
        self.stack = ReplicaStack(replicas, world)
        self.model = replicas[0]
        self.world = world

    @staticmethod
    def supports(model: Module) -> bool:
        """Whether the generic batched executor can run the model."""
        return supports_batched_forward(model)

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        """Cross-entropy forward + backward for every replica at once.

        Same contract as :meth:`BatchedReplicaExecutor.forward_backward`:
        stacked inputs ``(P, B, ...)`` and integer targets ``(P, B)`` in,
        per-replica mean losses out, gradients written into the world's flat
        gradient matrix.
        """
        P = self.stack.world_size
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {inputs.shape[0]}")
        self.stack.begin_iteration()
        logits = self.model.forward_batched(Tensor(inputs), self.stack)
        loss = F.cross_entropy_batched(logits, np.asarray(targets))
        loss.backward(np.ones(P, dtype=np.float32))
        self.stack.attach_grads()
        return [float(value) for value in loss.data]


class BatchedLanguageModelExecutor:
    """Fused truncated-BPTT pass for ``P`` replicas of a language model.

    Threads one *stacked* LSTM state (``(P, N, H)`` tensors per layer)
    between windows instead of ``P`` per-replica states; gradients land in
    the flat ``(P, n)`` matrix exactly as the classification executors'.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        model = replicas[0]
        if not self.supports(model):
            raise ValueError(f"{type(model).__name__} has layers without a "
                             "batched forward; use the per-replica loop")
        self.stack = ReplicaStack(replicas, world)
        self.model = model
        self.world = world

    @staticmethod
    def supports(model: Module) -> bool:
        """Batched LM execution needs a state-threading ``forward_batched``."""
        return (supports_batched_forward(model)
                and hasattr(type(model), "detach_state"))

    def forward_backward(self, tokens: np.ndarray, targets: np.ndarray,
                         state) -> Tuple[List[float], object]:
        """One BPTT window for every replica at once.

        ``tokens``/``targets`` are stacked ``(P, T, N)`` integer batches;
        ``state`` is ``None`` at an epoch start or whatever the previous call
        returned.  Returns the per-replica mean losses and the detached
        stacked state for the next window.
        """
        P = self.stack.world_size
        tokens = np.asarray(tokens)
        if tokens.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {tokens.shape[0]}")
        self.stack.begin_iteration()
        logits, new_state = self.model.forward_batched(tokens, state, self.stack)
        targets = np.asarray(targets).reshape(P, -1)
        loss = F.cross_entropy_batched(logits, targets)
        loss.backward(np.ones(P, dtype=np.float32))
        self.stack.attach_grads()
        return ([float(value) for value in loss.data],
                self.model.detach_state(new_state))


class _GraphRecording:
    """One recorded iteration: the replayer plus the swappable input buffers."""

    __slots__ = ("replayer", "input_buf", "target_buf", "state_bufs", "new_state",
                 "loss")

    def __init__(self, replayer: TapeReplayer, input_buf: np.ndarray,
                 target_buf: np.ndarray, loss: Tensor,
                 state_bufs=None, new_state=None):
        self.replayer = replayer
        self.input_buf = input_buf
        self.target_buf = target_buf
        self.loss = loss
        self.state_bufs = state_bufs
        self.new_state = new_state


class TapedAutogradExecutor(BatchedAutogradExecutor):
    """:class:`BatchedAutogradExecutor` that records the batched graph once
    per input signature and replays it on later iterations.

    The first call with a given input shape runs the normal eager batched
    pass with a :class:`~repro.tensor.tape.Tape` installed; subsequent calls
    copy the new batch into the recorded input buffers and replay the planned
    program (workspace-reusing thunks + fused elementwise chains), which is
    bit-identical to the eager pass.  Models that record unreplayable ops
    (active dropout, eval-mode BatchNorm, ...) invalidate the tape and keep
    running eagerly.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        super().__init__(replicas, world)
        #: signature -> _GraphRecording, or None when that signature's graph
        #: recorded an unreplayable op (permanent eager fallback).
        self._recordings: Dict[Tuple[int, ...], Optional[_GraphRecording]] = {}
        self.tape_stats: Dict[str, int] = {"recorded": 0, "replays": 0, "eager": 0}

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        P = self.stack.world_size
        inputs = np.asarray(inputs, dtype=np.float32)
        signature = inputs.shape
        if signature in self._recordings:
            rec = self._recordings[signature]
            if rec is None:
                self.tape_stats["eager"] += 1
                return super().forward_backward(inputs, targets)
            np.copyto(rec.input_buf, inputs)
            np.copyto(rec.target_buf, np.asarray(targets), casting="unsafe")
            self.stack.begin_iteration()
            loss_data = rec.replayer.replay()
            self.stack.attach_grads()
            self.tape_stats["replays"] += 1
            return [float(value) for value in loss_data]
        if len(self._recordings) >= _MAX_TAPES:
            self.tape_stats["eager"] += 1
            return super().forward_backward(inputs, targets)

        input_buf = np.array(inputs, dtype=np.float32)
        target_buf = np.ascontiguousarray(np.asarray(targets))
        tape = Tape()
        self.stack.begin_iteration()
        with recording(tape):
            logits = self.model.forward_batched(Tensor(input_buf), self.stack)
            loss = F.cross_entropy_batched(logits, target_buf)
        loss.backward(np.ones(P, dtype=np.float32))
        self.stack.attach_grads()
        if tape.valid:
            self._recordings[signature] = _GraphRecording(
                TapeReplayer(tape, loss), input_buf, target_buf, loss)
            self.tape_stats["recorded"] += 1
        else:
            self._recordings[signature] = None
            self.tape_stats["eager"] += 1
        return [float(value) for value in loss.data]


class TapedLanguageModelExecutor(BatchedLanguageModelExecutor):
    """:class:`BatchedLanguageModelExecutor` with record-once/replay tapes.

    The recorded graph takes the carried truncated-BPTT state through owned
    ``(P, N, H)`` input buffers: each replay first copies the incoming state
    (or zeros, at an epoch start) into those buffers — the incoming tensors
    alias the previous replay's *output* buffers, which the program is about
    to overwrite, so the copy must happen before the program runs.  One tape
    serves both the fresh-state and carried-state cases.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        super().__init__(replicas, world)
        self._recordings: Dict[Tuple[int, ...], Optional[_GraphRecording]] = {}
        self.tape_stats: Dict[str, int] = {"recorded": 0, "replays": 0, "eager": 0}

    def forward_backward(self, tokens: np.ndarray, targets: np.ndarray,
                         state) -> Tuple[List[float], object]:
        P = self.stack.world_size
        tokens = np.asarray(tokens)
        signature = tokens.shape
        if signature in self._recordings:
            rec = self._recordings[signature]
            if rec is None:
                self.tape_stats["eager"] += 1
                return super().forward_backward(tokens, targets, state)
            if state is None:
                for h_buf, c_buf in rec.state_bufs:
                    h_buf[...] = 0.0
                    c_buf[...] = 0.0
            else:
                for (h_buf, c_buf), (h, c) in zip(rec.state_bufs, state):
                    np.copyto(h_buf, h.data)
                    np.copyto(c_buf, c.data)
            np.copyto(rec.input_buf, tokens, casting="unsafe")
            np.copyto(rec.target_buf, np.asarray(targets).reshape(P, -1), casting="unsafe")
            self.stack.begin_iteration()
            loss_data = rec.replayer.replay()
            self.stack.attach_grads()
            self.tape_stats["replays"] += 1
            return ([float(value) for value in loss_data],
                    self.model.detach_state(rec.new_state))
        if len(self._recordings) >= _MAX_TAPES:
            self.tape_stats["eager"] += 1
            return super().forward_backward(tokens, targets, state)

        token_buf = np.ascontiguousarray(tokens)
        target_buf = np.ascontiguousarray(np.asarray(targets).reshape(P, -1))
        batch = tokens.shape[-1]
        if state is None:
            state_in = self.model.initial_state_batched(P, batch)
        else:
            # Owned copies become the tape's state input buffers.
            state_in = [(Tensor(np.array(h.data)), Tensor(np.array(c.data)))
                        for h, c in state]
        tape = Tape()
        self.stack.begin_iteration()
        with recording(tape):
            logits, new_state = self.model.forward_batched(token_buf, state_in, self.stack)
            loss = F.cross_entropy_batched(logits, target_buf)
        loss.backward(np.ones(P, dtype=np.float32))
        self.stack.attach_grads()
        if tape.valid:
            self._recordings[signature] = _GraphRecording(
                TapeReplayer(tape, loss), token_buf, target_buf, loss,
                state_bufs=[(h.data, c.data) for h, c in state_in],
                new_state=new_state)
            self.tape_stats["recorded"] += 1
        else:
            self._recordings[signature] = None
            self.tape_stats["eager"] += 1
        return ([float(value) for value in loss.data],
                self.model.detach_state(new_state))


class _MLPWorkspace:
    """Preallocated buffers for one input signature of the taped MLP path."""

    __slots__ = ("input_buf", "target_buf", "acts", "masks", "tmp_w", "dz",
                 "shifted", "exp", "sum_exp", "log_sum", "log_probs", "picked_mean",
                 "dz0")

    def __init__(self, plan, P: int, batch: int, features: int, classes: int):
        self.input_buf = np.empty((P, batch, features), dtype=np.float32)
        self.target_buf = np.empty((P, batch), dtype=np.int64)
        self.acts: List[Optional[np.ndarray]] = []
        self.masks: List[Optional[np.ndarray]] = []
        self.tmp_w: List[Optional[np.ndarray]] = []
        self.dz: List[Optional[np.ndarray]] = []
        width = features
        for kind, weights, _, _, _ in plan:
            if kind == "relu":
                self.acts.append(None)
                self.masks.append(np.empty((P, batch, width), dtype=bool))
                self.tmp_w.append(None)
                self.dz.append(None)
            else:
                out_features, in_features = weights.shape[1], weights.shape[2]
                self.acts.append(np.empty((P, batch, out_features), dtype=np.float32))
                self.masks.append(None)
                self.tmp_w.append(np.empty((P, out_features, in_features),
                                           dtype=np.float32))
                self.dz.append(np.empty((P, batch, in_features), dtype=np.float32))
                width = out_features
        self.shifted = np.empty((P, batch, classes), dtype=np.float32)
        self.exp = np.empty((P, batch, classes), dtype=np.float32)
        self.sum_exp = np.empty((P, batch, 1), dtype=np.float32)
        self.log_sum = np.empty((P, batch, 1), dtype=np.float32)
        self.log_probs = np.empty((P, batch, classes), dtype=np.float32)
        self.picked_mean = np.empty((P,), dtype=np.float32)
        self.dz0 = np.empty((P, batch, classes), dtype=np.float32)


class TapedReplicaExecutor(BatchedReplicaExecutor):
    """Workspace-reusing variant of the hand-derived MLP fast path.

    The MLP plan is already a fixed program (no Python graph to record), so
    "taping" here is pure workspace planning: per input signature, every
    intermediate of :meth:`BatchedReplicaExecutor.forward_backward` gets a
    persistent buffer and the identical arithmetic is routed through ufunc /
    ``np.matmul`` ``out=`` — bit-identical results with near-zero per-iteration
    allocation.
    """

    def __init__(self, replicas: Sequence[Module], world: WorldFlatBuffers):
        super().__init__(replicas, world)
        self._workspaces: Dict[Tuple[int, ...], _MLPWorkspace] = {}
        self.tape_stats: Dict[str, int] = {"recorded": 0, "replays": 0, "eager": 0}

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        P = self.world.world_size
        if inputs.shape[0] != P:
            raise ValueError(f"expected {P} replica batches, got {inputs.shape[0]}")
        batch = inputs.shape[1]
        features = int(np.prod(inputs.shape[2:]))
        signature = (P, batch, features)
        ws = self._workspaces.get(signature)
        if ws is None:
            if len(self._workspaces) >= _MAX_TAPES:
                self.tape_stats["eager"] += 1
                return super().forward_backward(inputs, targets)
            classes = self._plan[-1][1].shape[1]
            ws = _MLPWorkspace(self._plan, P, batch, features, classes)
            self._workspaces[signature] = ws
            self.tape_stats["recorded"] += 1
        else:
            self.tape_stats["replays"] += 1

        np.copyto(ws.input_buf, np.asarray(inputs).reshape(P, batch, features),
                  casting="unsafe")
        np.copyto(ws.target_buf, np.asarray(targets).reshape(P, batch),
                  casting="unsafe")

        # ---- forward (same arithmetic as the eager plan, out= routed) ----- #
        X = ws.input_buf
        layer_inputs: List[np.ndarray] = []
        for step, (kind, weights, biases, _, _) in enumerate(self._plan):
            if kind == "relu":
                mask = ws.masks[step]
                np.greater(X, 0, out=mask)
                np.multiply(X, mask, out=X)
            else:
                layer_inputs.append(X)
                act = ws.acts[step]
                np.matmul(X, weights.transpose(0, 2, 1), out=act)
                if biases is not None:
                    np.add(act, biases[:, None, :], out=act)
                X = act
        logits = X                                            # (P, B, C)

        # ---- softmax cross-entropy (per replica) ------------------------- #
        np.subtract(logits, logits.max(axis=2, keepdims=True), out=ws.shifted)
        np.exp(ws.shifted, out=ws.exp)
        ws.exp.sum(axis=2, keepdims=True, out=ws.sum_exp)
        np.log(ws.sum_exp, out=ws.log_sum)
        np.subtract(ws.shifted, ws.log_sum, out=ws.log_probs)
        replica_index = np.arange(P)[:, None]
        batch_index = np.arange(batch)[None, :]
        np.mean(ws.log_probs[replica_index, batch_index, ws.target_buf],
                axis=1, out=ws.picked_mean)
        np.negative(ws.picked_mean, out=ws.picked_mean)

        np.divide(ws.exp, ws.sum_exp, out=ws.dz0)
        ws.dz0[replica_index, batch_index, ws.target_buf] -= 1.0
        ws.dz0 /= batch

        # ---- backward ----------------------------------------------------- #
        dZ = ws.dz0
        linear_cursor = len(layer_inputs)
        for step in range(len(self._plan) - 1, -1, -1):
            kind, weights, biases, grad_w, grad_b = self._plan[step]
            if kind == "relu":
                np.multiply(dZ, ws.masks[step], out=dZ)
            else:
                linear_cursor -= 1
                layer_input = layer_inputs[linear_cursor]
                tmp_w = ws.tmp_w[step]
                np.matmul(dZ.transpose(0, 2, 1), layer_input, out=tmp_w)
                grad_w[...] = tmp_w
                if grad_b is not None:
                    dZ.sum(axis=1, out=grad_b)
                if step > 0:
                    np.matmul(dZ, weights, out=ws.dz[step])
                    dZ = ws.dz[step]

        for buffers in self.world.replica_buffers:
            buffers.attach_grads()
        return [float(value) for value in ws.picked_mean]


def build_replica_executor(replicas: Sequence[Module], world: WorldFlatBuffers,
                           task: str, taped: bool = False):
    """Pick the fastest batched executor the model supports, else ``None``.

    Classification MLPs get the hand-derived :class:`BatchedReplicaExecutor`;
    other classifiers with full ``forward_batched`` coverage get the generic
    :class:`BatchedAutogradExecutor`; language models get
    :class:`BatchedLanguageModelExecutor`.  With ``taped=True`` each is
    replaced by its record-once/replay subclass (bit-identical, with automatic
    eager fallback when a model records unreplayable ops).  ``None`` means the
    trainer should run the per-replica autograd loop (still through the flat
    buffers).
    """
    model = replicas[0]
    if task == "classification":
        if BatchedReplicaExecutor.supports(model):
            cls = TapedReplicaExecutor if taped else BatchedReplicaExecutor
            return cls(replicas, world)
        if BatchedAutogradExecutor.supports(model):
            cls = TapedAutogradExecutor if taped else BatchedAutogradExecutor
            return cls(replicas, world)
    elif task == "language_model":
        if BatchedLanguageModelExecutor.supports(model):
            cls = TapedLanguageModelExecutor if taped else BatchedLanguageModelExecutor
            return cls(replicas, world)
    return None
