"""Flattening model gradients/parameters into the single vector the paper's
algorithms operate on.

Distributed SGD treats the model as one vector of ``n`` parameters (Eq. 1 of
the paper); compressors likewise operate on the concatenated gradient.  These
helpers convert between the per-layer parameter tensors of a
:class:`repro.nn.Module` and that flat view, preserving registration order so
the mapping is stable across workers and iterations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Module, Parameter


def _flat_buffers(model: Module):
    """The model's adopted flat storage, if it has one (see core.flat_buffer)."""
    return getattr(model, "_flat_buffers", None)


def flatten_gradients(model: Module, missing_as_zero: bool = True,
                      copy: bool = True) -> np.ndarray:
    """Concatenate all parameter gradients into one float32 vector.

    Parameters without a gradient contribute zeros when ``missing_as_zero``
    (e.g. layers unused in a particular forward pass); otherwise a missing
    gradient raises.

    For models adopted by :class:`repro.core.flat_buffer.ModelFlatBuffers`
    the gradients already live in one contiguous vector; in that case this is
    a single vectorized copy, or zero-copy with ``copy=False`` (the returned
    array is then the live storage — treat it as read-only).
    """
    buffers = _flat_buffers(model)
    if buffers is not None and all(p.grad is buffers.grad_view(i)
                                   for i, p in enumerate(buffers.parameters)):
        return buffers.grads.copy() if copy else buffers.grads
    pieces: List[np.ndarray] = []
    for name, param in model.named_parameters():
        if param.grad is None:
            if not missing_as_zero:
                raise ValueError(f"parameter {name!r} has no gradient")
            pieces.append(np.zeros(param.size, dtype=np.float32))
        else:
            pieces.append(np.asarray(param.grad, dtype=np.float32).reshape(-1))
    if not pieces:
        raise ValueError("model has no parameters")
    return np.concatenate(pieces)


def flatten_parameters(model: Module, copy: bool = True) -> np.ndarray:
    """Concatenate all parameter values into one float32 vector.

    Adopted models (see :mod:`repro.core.flat_buffer`) already store their
    parameters contiguously, so this is one vectorized copy — or zero-copy
    with ``copy=False`` (mutating the result then moves the model).
    """
    buffers = _flat_buffers(model)
    if buffers is not None:
        return buffers.params.copy() if copy else buffers.params
    return np.concatenate([p.data.reshape(-1).astype(np.float32) for p in model.parameters()])


def unflatten_into_gradients(model: Module, flat: np.ndarray) -> None:
    """Write a flat gradient vector back into ``param.grad`` slots."""
    flat = np.asarray(flat, dtype=np.float32)
    buffers = _flat_buffers(model)
    if buffers is not None:
        if flat.size != buffers.grads.size:
            raise ValueError(f"flat gradient has {flat.size} entries but the model "
                             f"has {buffers.grads.size}")
        buffers.set_grad_vector(flat.reshape(-1))
        return
    offset = 0
    for param in model.parameters():
        size = param.size
        segment = flat[offset:offset + size]
        if segment.size != size:
            raise ValueError("flat gradient is shorter than the model's parameter count")
        param.grad = segment.reshape(param.shape).copy()
        offset += size
    if offset != flat.size:
        raise ValueError(f"flat gradient has {flat.size} entries but the model has {offset}")


def unflatten_into_parameters(model: Module, flat: np.ndarray) -> None:
    """Write a flat parameter vector back into the model weights."""
    flat = np.asarray(flat, dtype=np.float32)
    buffers = _flat_buffers(model)
    if buffers is not None:
        if flat.size != buffers.params.size:
            raise ValueError(f"flat vector has {flat.size} entries but the model "
                             f"has {buffers.params.size}")
        buffers.params[...] = flat.reshape(-1)
        return
    offset = 0
    for param in model.parameters():
        size = param.size
        segment = flat[offset:offset + size]
        if segment.size != size:
            raise ValueError("flat vector is shorter than the model's parameter count")
        param.data[...] = segment.reshape(param.shape)
        offset += size
    if offset != flat.size:
        raise ValueError(f"flat vector has {flat.size} entries but the model has {offset}")


def average_parameters(models: Sequence[Module]) -> None:
    """Average the parameters of replicas in-place (Algorithm 1, lines 9–10).

    At the end of training the paper performs one dense synchronization so all
    workers share the same final model; this helper applies that step to the
    simulated replicas.
    """
    if not models:
        raise ValueError("no models to average")
    flats = [flatten_parameters(m) for m in models]
    mean = np.mean(np.stack(flats), axis=0)
    for model in models:
        unflatten_into_parameters(model, mean)
