"""Per-iteration timing records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SyncReport:
    """Timing and traffic of one gradient synchronization."""

    #: Wall-clock seconds spent compressing + decompressing, max across workers
    #: (workers run in parallel in a real deployment, so the slowest gates).
    compression_time_s: float = 0.0
    #: Simulated collective time from the α–β network model.
    comm_time_s: float = 0.0
    #: Analytic bits each worker put on the wire.
    wire_bits_per_worker: float = 0.0
    #: Collective kind that was executed ("allreduce" / "allgather").
    exchange: str = "allreduce"
    #: Modeled off-wire aggregation time (robust aggregators' gather +
    #: combine work, e.g. Weiszfeld iterations — see
    #: :meth:`repro.sync.aggregators.Aggregator.combine_time_s`).  The
    #: on-wire mean allreduce costs nothing here; its time is in
    #: ``comm_time_s``.
    aggregation_time_s: float = 0.0


@dataclass
class IterationTimeline:
    """Accumulated timing of a training run, per component.

    ``compute`` is the measured forward/backward time of the simulated
    workers (max across workers per iteration), ``compression`` the measured
    compressor time, ``communication`` the simulated collective time, and
    ``aggregation`` the modeled robust-aggregator combine time.  Fed one
    record per iteration by
    :class:`repro.core.callbacks.TimelineCallback` at ``on_iteration_end``.
    """

    compute_s: float = 0.0
    compression_s: float = 0.0
    communication_s: float = 0.0
    aggregation_s: float = 0.0
    iterations: int = 0
    per_iteration: List[Dict[str, float]] = field(default_factory=list)

    def record(self, compute_s: float, report: SyncReport) -> None:
        self.compute_s += compute_s
        self.compression_s += report.compression_time_s
        self.communication_s += report.comm_time_s
        self.aggregation_s += report.aggregation_time_s
        self.iterations += 1
        self.per_iteration.append({
            "compute_s": compute_s,
            "compression_s": report.compression_time_s,
            "communication_s": report.comm_time_s,
            "aggregation_s": report.aggregation_time_s,
        })

    @property
    def total_s(self) -> float:
        return (self.compute_s + self.compression_s + self.communication_s
                + self.aggregation_s)

    def mean_iteration_time(self) -> float:
        return self.total_s / self.iterations if self.iterations else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute_s": self.compute_s,
            "compression_s": self.compression_s,
            "communication_s": self.communication_s,
            "aggregation_s": self.aggregation_s,
            "total_s": self.total_s,
            "iterations": float(self.iterations),
        }
