"""Core orchestration: distributed trainer, synchronizer, cost model, experiments."""

from repro.core.batched_replicas import BatchedReplicaExecutor
from repro.core.callbacks import (
    CALLBACKS,
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStoppingCallback,
    EvaluationCallback,
    MetricsCallback,
    ProgressCallback,
    TimelineCallback,
    TrainState,
)
from repro.core.flat_buffer import FlatLayout, ModelFlatBuffers, WorldFlatBuffers
from repro.core.flatten import flatten_gradients, flatten_parameters, unflatten_into_gradients, unflatten_into_parameters
from repro.core.metrics import TrainingMetrics, evaluate_classifier, evaluate_language_model, top1_accuracy
from repro.core.timeline import IterationTimeline, SyncReport
from repro.core.synchronizer import GradientSynchronizer
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.core.cost_model import CompressionTimingEstimator, CostModel, IterationCostBreakdown
from repro.core.algorithm1 import a2sgd_quadratic_descent, dense_quadratic_descent
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.spec import ExperimentSpec, SpecError
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_algorithm_sweep,
    run_experiment,
)

__all__ = [
    "BatchedReplicaExecutor",
    "CALLBACKS",
    "Callback",
    "CallbackList",
    "TrainState",
    "TimelineCallback",
    "EvaluationCallback",
    "MetricsCallback",
    "ProgressCallback",
    "CheckpointCallback",
    "EarlyStoppingCallback",
    "FlatLayout",
    "ModelFlatBuffers",
    "WorldFlatBuffers",
    "flatten_gradients",
    "flatten_parameters",
    "unflatten_into_gradients",
    "unflatten_into_parameters",
    "TrainingMetrics",
    "top1_accuracy",
    "evaluate_classifier",
    "evaluate_language_model",
    "IterationTimeline",
    "SyncReport",
    "GradientSynchronizer",
    "DistributedTrainer",
    "TrainerConfig",
    "CostModel",
    "CompressionTimingEstimator",
    "IterationCostBreakdown",
    "a2sgd_quadratic_descent",
    "dense_quadratic_descent",
    "save_checkpoint",
    "load_checkpoint",
    "ExperimentSpec",
    "SpecError",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_algorithm_sweep",
]
