"""Gradient synchronization across simulated workers.

The synchronizer implements lines 3–6 of Algorithm 1 generically: every
worker compresses its local gradient, the payloads are exchanged with the
collective the compressor requests (Allreduce for Dense/A2SGD, Allgather for
the sparsifiers and QSGD), and every worker reconstructs the gradient it will
apply.  It also does the bookkeeping the evaluation needs: measured
compression time, simulated collective time and analytic wire traffic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.comm.backend import CollectiveOp
from repro.comm.inprocess import InProcessWorld
from repro.compress.base import Compressor, ExchangeKind
from repro.core.timeline import SyncReport


class GradientSynchronizer:
    """Exchange per-worker gradients through a shared world.

    Parameters
    ----------
    world:
        The communication world (defines world size, fabric and accounting).
    compressors:
        One compressor instance per rank.  Instances must not be shared
        between ranks because error-feedback state is per worker.
    """

    def __init__(self, world: InProcessWorld, compressors: Sequence[Compressor]):
        if len(compressors) != world.world_size:
            raise ValueError(f"need one compressor per rank: "
                             f"{len(compressors)} given for world size {world.world_size}")
        kinds = {type(c) for c in compressors}
        if len(kinds) != 1:
            raise ValueError("all ranks must use the same compression algorithm")
        if len(set(map(id, compressors))) != len(compressors):
            raise ValueError("compressor instances must not be shared across ranks")
        self.world = world
        self.compressors = list(compressors)

    @property
    def algorithm(self) -> str:
        return self.compressors[0].name

    # ------------------------------------------------------------------ #
    def exchange(self, gradients: Sequence[np.ndarray]) -> Tuple[List[np.ndarray], SyncReport]:
        """Synchronize one iteration's gradients.

        Parameters
        ----------
        gradients:
            Flat local gradients indexed by rank (all the same length).

        Returns
        -------
        (new_gradients, report):
            The gradient each rank should apply, plus timing/traffic data.
        """
        if len(gradients) != self.world.world_size:
            raise ValueError("one gradient per rank is required")
        n = int(np.asarray(gradients[0]).size)
        for g in gradients:
            if np.asarray(g).size != n:
                raise ValueError("all ranks must contribute gradients of equal length")

        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, self.world.world_size)
        logical_bytes = wire_bits / 8.0

        # ---- compression (lines 3-4 of Algorithm 1) ---------------------- #
        payloads: List[np.ndarray] = []
        contexts: List[Dict] = []
        compression_times: List[float] = []
        for compressor, gradient in zip(self.compressors, gradients):
            start = time.perf_counter()
            payload, ctx = compressor.compress(np.asarray(gradient, dtype=np.float32))
            compression_times.append(time.perf_counter() - start)
            payloads.append(payload)
            contexts.append(ctx)

        # ---- global exchange (line 5) ------------------------------------ #
        comm_before = self.world.simulated_comm_time
        if exchange_kind is ExchangeKind.ALLREDUCE:
            exchanged = self.world.allreduce(payloads, CollectiveOp.MEAN,
                                             logical_bytes=logical_bytes)
        else:
            exchanged = self.world.allgather(payloads, logical_bytes=logical_bytes)
        comm_time = self.world.simulated_comm_time - comm_before

        # ---- reconstruction (line 6) -------------------------------------- #
        new_gradients: List[np.ndarray] = []
        for rank, (compressor, ctx) in enumerate(zip(self.compressors, contexts)):
            start = time.perf_counter()
            if exchange_kind is ExchangeKind.ALLREDUCE:
                rebuilt = compressor.decompress(exchanged[rank], ctx)
            else:
                rebuilt = compressor.decompress_gathered(exchanged[rank], ctx)
            compression_times[rank] += time.perf_counter() - start
            new_gradients.append(np.asarray(rebuilt, dtype=np.float32))

        report = SyncReport(
            compression_time_s=float(max(compression_times)),
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=exchange_kind.value,
        )
        return new_gradients, report

    # ------------------------------------------------------------------ #
    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        """Synchronize one iteration from the stacked ``(P, n)`` gradient matrix.

        The batched twin of :meth:`exchange`: compression and reconstruction
        run through the compressor's ``compress_batch``/``decompress_batch``
        kernels (one fused call over all ranks; bit-identical to the per-rank
        loop, which remains the fallback for compressors without batched
        kernels).  Returns the reconstructed ``(P, n)`` matrix — possibly a
        read-only broadcast view when every rank reconstructs the same
        gradient — plus the usual timing/traffic report.

        The measured kernel time is divided by the world size: the simulation
        executes all ranks' compression in one call on one host, while the
        modelled deployment runs the per-worker kernels in parallel.
        """
        G = np.asarray(G, dtype=np.float32)
        if G.ndim != 2 or G.shape[0] != self.world.world_size:
            raise ValueError(f"expected a ({self.world.world_size}, n) gradient matrix, "
                             f"got shape {G.shape}")
        n = G.shape[1]
        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, self.world.world_size)
        logical_bytes = wire_bits / 8.0
        batch = type(reference)

        start = time.perf_counter()
        payloads, contexts = batch.compress_batch(self.compressors, G)
        kernel_time = time.perf_counter() - start

        comm_before = self.world.simulated_comm_time
        if exchange_kind is ExchangeKind.ALLREDUCE:
            exchanged = self.world.allreduce(payloads, CollectiveOp.MEAN,
                                             logical_bytes=logical_bytes)
        else:
            exchanged = self.world.allgather(payloads, logical_bytes=logical_bytes)
        comm_time = self.world.simulated_comm_time - comm_before

        start = time.perf_counter()
        new_matrix = batch.decompress_batch(self.compressors, exchanged, contexts)
        kernel_time += time.perf_counter() - start

        report = SyncReport(
            compression_time_s=float(kernel_time) / self.world.world_size,
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=exchange_kind.value,
        )
        return new_matrix, report

    # ------------------------------------------------------------------ #
    def dense_model_average(self, parameter_vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """The final dense synchronization of Algorithm 1 (lines 9–10).

        Exchanges the full parameter vectors once with a dense Allreduce and
        returns each rank's averaged copy.
        """
        nbytes = float(np.asarray(parameter_vectors[0]).nbytes)
        return self.world.allreduce(list(parameter_vectors), CollectiveOp.MEAN,
                                    logical_bytes=nbytes)
