"""Deprecated gradient-synchronizer shim.

.. deprecated::
    ``GradientSynchronizer`` was the hardcoded implementation of Algorithm
    1's lines 3–6 (compress → collective exchange → reconstruct).  That
    logic now lives in :class:`repro.sync.strategies.AllreduceStrategy`,
    one of several pluggable synchronization strategies (see
    :mod:`repro.sync`); this class remains as a thin constructor-compatible
    wrapper around the ``allreduce`` strategy with ``mean`` aggregation —
    exactly the seed semantics, bit for bit.  New code should build a
    strategy through :class:`repro.sync.SyncSpec` instead.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.comm.inprocess import InProcessWorld
from repro.compress.base import Compressor
from repro.core.timeline import SyncReport


class GradientSynchronizer:
    """Exchange per-worker gradients through a shared world (deprecated shim).

    Parameters
    ----------
    world:
        The communication world (defines world size, fabric and accounting).
    compressors:
        One compressor instance per rank.  Instances must not be shared
        between ranks because error-feedback state is per worker.
    """

    def __init__(self, world: InProcessWorld, compressors: Sequence[Compressor]):
        # Imported lazily to keep the historical import graph (synchronizer
        # has no package-level repro.sync dependency).
        from repro.sync.aggregators import MeanAggregator
        from repro.sync.strategies import AllreduceStrategy

        self._strategy = AllreduceStrategy().bind(world, compressors, MeanAggregator())
        self.world = world
        self.compressors = self._strategy.compressors

    @property
    def algorithm(self) -> str:
        return self._strategy.algorithm

    # ------------------------------------------------------------------ #
    def exchange(self, gradients: Sequence[np.ndarray]) -> Tuple[List[np.ndarray], SyncReport]:
        """Synchronize one iteration's gradients (delegates to the strategy)."""
        return self._strategy.exchange(gradients)

    # ------------------------------------------------------------------ #
    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        """Synchronize one iteration's stacked ``(P, n)`` gradient matrix."""
        return self._strategy.exchange_batched(G)

    # ------------------------------------------------------------------ #
    def dense_model_average(self, parameter_vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """The final dense synchronization of Algorithm 1 (lines 9–10)."""
        return self._strategy.finalize(parameter_vectors)
