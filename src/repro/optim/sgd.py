"""Stochastic gradient descent with momentum and weight decay.

The distributed trainer updates the model with whatever gradient the
compression/synchronization pipeline produced (Algorithm 1 line 7 in the
paper); the optimizer itself is identical to single-node SGD.

Two execution paths share one set of momentum state:

* :meth:`SGD.step` — the classic per-parameter loop (works on any model).
* :meth:`SGD.step_flat` — the fused path: after :meth:`Optimizer.bind_flat`
  the parameters live in one contiguous float32 vector (see
  :mod:`repro.core.flat_buffer`) and the whole update is a handful of
  whole-buffer axpy operations via :func:`sgd_flat_update`.  The same kernel
  applies to a stacked ``(P, n)`` world matrix, so the trainer can update all
  replicas with one call.

Momentum buffers are keyed by *parameter index* (position in the parameter
list), not ``id(p)``: CPython reuses object ids after garbage collection, so
an id-keyed dictionary can silently attach a dead parameter's momentum to a
new tensor.  Index keys are stable and are also what ``state_dict`` stores.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np


def sgd_flat_update(params: np.ndarray, grads: np.ndarray, lr: float,
                    momentum: float = 0.0, weight_decay: float = 0.0,
                    nesterov: bool = False, velocity: Optional[np.ndarray] = None,
                    scratch: Optional[np.ndarray] = None) -> None:
    """Fused SGD update on flat storage (shape ``(n,)`` or ``(P, n)``).

    Elementwise identical to the per-parameter loop in :meth:`SGD.step`:
    ``g ← grad + wd·w``, ``v ← µ·v + g``, ``w ← w − lr·(g + µ·v | v)``.
    ``velocity`` is required when ``momentum > 0`` and is updated in place.
    ``scratch`` (same shape) avoids reallocating the work buffer every call.
    """
    if scratch is None:
        scratch = np.empty_like(params)
    if weight_decay:
        np.multiply(params, np.float32(weight_decay), out=scratch)
        scratch += grads
    else:
        scratch[...] = grads
    if momentum:
        if velocity is None:
            raise ValueError("momentum > 0 requires a velocity buffer")
        velocity *= np.float32(momentum)
        velocity += scratch
        if nesterov:
            scratch += np.float32(momentum) * velocity
        else:
            scratch[...] = velocity
    scratch *= np.float32(lr)
    params -= scratch


class Optimizer:
    """Base optimizer: holds parameters, a mutable learning rate and
    (optionally) a binding to flat parameter storage for the fused path."""

    def __init__(self, params: Iterable, lr: float):
        self.params: List = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self._flat = None                       # ModelFlatBuffers when bound
        self._velocity_flat: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None
        #: Momentum buffers keyed by parameter index (unbound mode only; the
        #: flat-bound mode keeps them as segments of one contiguous vector).
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Set the current learning rate (used by LR schedules)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    # ------------------------------------------------------------------ #
    # fused flat path
    # ------------------------------------------------------------------ #
    def bind_flat(self, buffers, velocity_store: Optional[np.ndarray] = None) -> None:
        """Bind this optimizer to a model's flat storage.

        ``buffers`` is a :class:`repro.core.flat_buffer.ModelFlatBuffers`
        whose parameter list must be exactly this optimizer's parameters.
        ``velocity_store`` optionally supplies the flat momentum buffer (e.g.
        a row of a world-level ``(P, n)`` velocity matrix); it is allocated on
        first use otherwise.  After binding, the looped :meth:`step` and the
        fused :meth:`step_flat` share the same momentum state.
        """
        if len(buffers.parameters) != len(self.params) or any(
                a is not b for a, b in zip(buffers.parameters, self.params)):
            raise ValueError("flat buffers do not hold this optimizer's parameters")
        self._flat = buffers
        if velocity_store is not None:
            if velocity_store.shape != buffers.params.shape:
                raise ValueError("velocity store must match the flat parameter shape")
            velocity_store.fill(0.0)
            self._velocity_flat = velocity_store
        self._scratch = None

    def _ensure_flat_velocity(self) -> np.ndarray:
        if self._velocity_flat is None:
            self._velocity_flat = np.zeros_like(self._flat.params)
        return self._velocity_flat

    def _flat_scratch(self) -> np.ndarray:
        if self._scratch is None or self._scratch.shape != self._flat.params.shape:
            self._scratch = np.empty_like(self._flat.params)
        return self._scratch

    def _velocity_segment(self, index: int) -> np.ndarray:
        """Momentum buffer for parameter ``index`` as a flat-storage view."""
        layout = self._flat.layout
        offset, size = int(layout.offsets[index]), int(layout.sizes[index])
        flat = self._ensure_flat_velocity()
        return flat[offset:offset + size].reshape(layout.shapes[index])

    def _momentum_buffer(self, index: int, param) -> np.ndarray:
        if self._flat is not None:
            return self._velocity_segment(index)
        buf = self._velocity.get(index)
        if buf is None:
            buf = np.zeros_like(param.data)
            self._velocity[index] = buf
        return buf

    def _velocity_entries(self) -> Dict[int, np.ndarray]:
        if self._flat is not None and self._velocity_flat is not None:
            return {i: self._velocity_segment(i).copy() for i in range(len(self.params))}
        return {i: buf.copy() for i, buf in self._velocity.items()}

    def _restore_velocity(self, entries: Dict[int, np.ndarray]) -> None:
        for index, value in entries.items():
            index = int(index)
            if index >= len(self.params):
                raise KeyError(f"velocity entry {index} out of range")
            if self._flat is not None:
                self._velocity_segment(index)[...] = np.asarray(value).reshape(
                    self._flat.layout.shapes[index])
            else:
                self._velocity[index] = np.array(value, copy=True)

    def state_dict(self) -> dict:
        """Momentum buffers keyed by parameter position (for checkpointing)."""
        return {"lr": self.lr, "momentum": getattr(self, "momentum", 0.0),
                "velocity": self._velocity_entries()}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self._restore_velocity(state.get("velocity", {}))

    def step_flat(self, grad_vector: Optional[np.ndarray] = None) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov acceleration and weight decay.

    Parameters
    ----------
    params:
        Model parameters to update.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables momentum).
    weight_decay:
        L2 penalty added to the gradient before the momentum update.
    nesterov:
        Use Nesterov momentum.
    """

    def __init__(self, params: Iterable, lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        for index, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._momentum_buffer(index, p)
                buf *= self.momentum
                buf += grad
                grad = grad + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * grad

    def step_flat(self, grad_vector: Optional[np.ndarray] = None) -> None:
        """Fused whole-buffer update (requires :meth:`bind_flat`).

        ``grad_vector`` defaults to the bound flat gradient storage; passing
        the synchronizer's reconstructed gradient avoids writing it back into
        ``param.grad`` first.
        """
        if self._flat is None:
            raise RuntimeError("step_flat requires bind_flat() first")
        grads = self._flat.grads if grad_vector is None else grad_vector
        velocity = self._ensure_flat_velocity() if self.momentum else None
        sgd_flat_update(self._flat.params, grads, self.lr, self.momentum,
                        self.weight_decay, self.nesterov, velocity=velocity,
                        scratch=self._flat_scratch())
