"""Stochastic gradient descent with momentum and weight decay.

The distributed trainer updates the model with whatever gradient the
compression/synchronization pipeline produced (Algorithm 1 line 7 in the
paper); the optimizer itself is identical to single-node SGD.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Set the current learning rate (used by LR schedules)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov acceleration and weight decay.

    Parameters
    ----------
    params:
        Model parameters to update.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables momentum).
    weight_decay:
        L2 penalty added to the gradient before the momentum update.
    nesterov:
        Use Nesterov momentum.
    """

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._velocity.get(id(p))
                if buf is None:
                    buf = np.zeros_like(p.data)
                    self._velocity[id(p)] = buf
                buf *= self.momentum
                buf += grad
                grad = grad + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * grad

    def state_dict(self) -> dict:
        """Momentum buffers keyed by parameter position (for checkpointing)."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": {i: self._velocity[id(p)].copy()
                         for i, p in enumerate(self.params) if id(p) in self._velocity},
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        for i, p in enumerate(self.params):
            if i in state["velocity"]:
                self._velocity[id(p)] = np.array(state["velocity"][i], copy=True)
