"""Optimizer and LR-schedule-component registries.

``OPTIMIZERS`` lets the trainer (and user code) resolve an update rule by
name, and ``LR_SCHEDULES`` names the composable pieces Table 1's policy
strings are parsed into (``LS`` / ``GW`` / ``PD`` / constant), so new
schedule components extend :func:`repro.optim.lr_schedule.build_lr_policy`
without editing its parser.
"""

from __future__ import annotations

from repro.optim.lars import LARS
from repro.optim.lr_schedule import (
    ConstantLR,
    GradualWarmup,
    LinearScaling,
    PolynomialDecay,
)
from repro.optim.sgd import SGD
from repro.registry import Registry

OPTIMIZERS = Registry("optimizer", expose="optimizers")
OPTIMIZERS.register("sgd", SGD, description="momentum SGD (optionally Nesterov)")
OPTIMIZERS.register("lars", LARS,
                    description="layer-wise adaptive rate scaling on top of momentum SGD")

LR_SCHEDULES = Registry("lr-schedule", expose="lr-schedules")
LR_SCHEDULES.register("constant", ConstantLR, description="always the base learning rate")
LR_SCHEDULES.register("ls", LinearScaling, aliases=("linear_scaling",),
                      description="scale base LR with the worker count (Goyal et al.)")
LR_SCHEDULES.register("gw", GradualWarmup, aliases=("warmup",),
                      description="linear warmup over the first epochs")
LR_SCHEDULES.register("pd", PolynomialDecay, aliases=("poly",),
                      description="polynomial decay towards zero over the horizon")
