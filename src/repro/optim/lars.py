"""Layer-wise Adaptive Rate Scaling (LARS).

The paper's VGG-16 large-batch configuration uses LARS (You et al., 2017) on
top of SGD: each layer's update is rescaled by the trust ratio
``||w|| / (||g|| + wd * ||w||)`` so that layers with small gradients relative
to their weights still make progress under large batch sizes.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.sgd import Optimizer


class LARS(Optimizer):
    """SGD with momentum and layer-wise adaptive rate scaling.

    Parameters
    ----------
    params:
        Model parameters.
    lr:
        Base learning rate.
    momentum:
        Momentum coefficient.
    weight_decay:
        L2 penalty.
    trust_coefficient:
        The η coefficient from the LARS paper (typically 0.001).
    eps:
        Numerical floor for the denominator of the trust ratio.
    """

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.9,
                 weight_decay: float = 0.0, trust_coefficient: float = 0.001,
                 eps: float = 1e-8):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.trust_coefficient = float(trust_coefficient)
        self.eps = float(eps)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data

            weight_norm = float(np.linalg.norm(p.data))
            grad_norm = float(np.linalg.norm(grad))
            if weight_norm > 0 and grad_norm > 0:
                trust_ratio = self.trust_coefficient * weight_norm / (grad_norm + self.eps)
            else:
                trust_ratio = 1.0

            scaled = trust_ratio * grad
            if self.momentum:
                buf = self._velocity.get(id(p))
                if buf is None:
                    buf = np.zeros_like(p.data)
                    self._velocity[id(p)] = buf
                buf *= self.momentum
                buf += scaled
                scaled = buf
            p.data -= self.lr * scaled
