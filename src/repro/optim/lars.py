"""Layer-wise Adaptive Rate Scaling (LARS).

The paper's VGG-16 large-batch configuration uses LARS (You et al., 2017) on
top of SGD: each layer's update is rescaled by the trust ratio
``||w|| / (||g|| + wd * ||w||)`` so that layers with small gradients relative
to their weights still make progress under large batch sizes.

Like :class:`repro.optim.sgd.SGD`, LARS has a fused flat path: with the
parameters adopted into one contiguous vector, the per-layer norms are
segment reductions (``np.add.reduceat`` over the flat layout) and the
trust-scaled update is a handful of whole-buffer operations — no
per-parameter Python loop.  Momentum state is keyed by parameter index and
checkpointable through ``state_dict`` in either mode.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.optim.sgd import Optimizer


def lars_flat_update(params: np.ndarray, grads: np.ndarray, offsets: np.ndarray,
                     sizes: np.ndarray, lr: float, momentum: float = 0.0,
                     weight_decay: float = 0.0, trust_coefficient: float = 0.001,
                     eps: float = 1e-8, velocity: Optional[np.ndarray] = None,
                     scratch: Optional[np.ndarray] = None) -> None:
    """Fused LARS update on flat storage (shape ``(n,)`` or ``(P, n)``).

    ``offsets``/``sizes`` describe the per-layer segments of the flat vector
    (:class:`repro.core.flat_buffer.FlatLayout`); layer norms are computed
    with one ``reduceat`` per operand instead of a Python loop over layers.
    """
    if scratch is None:
        scratch = np.empty_like(params)
    if weight_decay:
        np.multiply(params, np.float32(weight_decay), out=scratch)
        scratch += grads
    else:
        scratch[...] = grads

    starts = np.asarray(offsets, dtype=np.int64)
    grad_norms = np.sqrt(np.add.reduceat(scratch * scratch, starts, axis=-1))
    weight_norms = np.sqrt(np.add.reduceat(params * params, starts, axis=-1))
    trust = np.where((weight_norms > 0) & (grad_norms > 0),
                     np.float32(trust_coefficient) * weight_norms
                     / (grad_norms + np.float32(eps)),
                     np.float32(1.0))
    scratch *= np.repeat(trust, sizes, axis=-1)

    if momentum:
        if velocity is None:
            raise ValueError("momentum > 0 requires a velocity buffer")
        velocity *= np.float32(momentum)
        velocity += scratch
        scratch[...] = velocity
    scratch *= np.float32(lr)
    params -= scratch


class LARS(Optimizer):
    """SGD with momentum and layer-wise adaptive rate scaling.

    Parameters
    ----------
    params:
        Model parameters.
    lr:
        Base learning rate.
    momentum:
        Momentum coefficient.
    weight_decay:
        L2 penalty.
    trust_coefficient:
        The η coefficient from the LARS paper (typically 0.001).
    eps:
        Numerical floor for the denominator of the trust ratio.
    """

    def __init__(self, params: Iterable, lr: float, momentum: float = 0.9,
                 weight_decay: float = 0.0, trust_coefficient: float = 0.001,
                 eps: float = 1e-8):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.trust_coefficient = float(trust_coefficient)
        self.eps = float(eps)

    def step(self) -> None:
        for index, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data

            weight_norm = float(np.linalg.norm(p.data))
            grad_norm = float(np.linalg.norm(grad))
            if weight_norm > 0 and grad_norm > 0:
                trust_ratio = self.trust_coefficient * weight_norm / (grad_norm + self.eps)
            else:
                trust_ratio = 1.0

            scaled = trust_ratio * grad
            if self.momentum:
                buf = self._momentum_buffer(index, p)
                buf *= self.momentum
                buf += scaled
                scaled = buf
            p.data -= self.lr * scaled

    def step_flat(self, grad_vector: Optional[np.ndarray] = None) -> None:
        """Fused whole-buffer LARS update (requires :meth:`bind_flat`)."""
        if self._flat is None:
            raise RuntimeError("step_flat requires bind_flat() first")
        grads = self._flat.grads if grad_vector is None else grad_vector
        layout = self._flat.layout
        velocity = self._ensure_flat_velocity() if self.momentum else None
        lars_flat_update(self._flat.params, grads, layout.offsets[:-1], layout.sizes,
                         self.lr, self.momentum, self.weight_decay,
                         self.trust_coefficient, self.eps, velocity=velocity,
                         scratch=self._flat_scratch())
