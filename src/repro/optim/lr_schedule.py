"""Learning-rate policies from Table 1 of the paper.

Table 1 describes each model's policy as a composition of:

* ``LS(c x)`` — linear scaling of the base learning rate with the number of
  workers (Goyal et al., 2017), with a multiplier ``c``;
* ``GW`` — gradual warmup over the first few epochs;
* ``PD`` — polynomial decay towards zero over the training horizon;
* ``LARS`` — layer-wise adaptive rate scaling (an optimizer property rather
  than a schedule; :func:`build_lr_policy` reports it so callers can choose
  the optimizer class).

Schedules are expressed as functions of the *epoch* (fractional epochs are
allowed, so they can be evaluated per-iteration).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple


class LRSchedule:
    """Base class: maps (epoch, base_lr) to the learning rate to use."""

    def lr_at(self, epoch: float, base_lr: float) -> float:
        raise NotImplementedError

    def __call__(self, epoch: float, base_lr: float) -> float:
        return self.lr_at(epoch, base_lr)


@dataclass
class ConstantLR(LRSchedule):
    """Always the base learning rate."""

    def lr_at(self, epoch: float, base_lr: float) -> float:
        return base_lr


@dataclass
class LinearScaling(LRSchedule):
    """Scale the base LR by ``multiplier * world_size`` (large-batch rule).

    The paper writes ``LS(1 x)`` / ``LS(1.5 x)``: the LR used with P workers is
    ``base_lr * multiplier * P`` because the global batch grows P-fold.
    """

    world_size: int = 1
    multiplier: float = 1.0

    def lr_at(self, epoch: float, base_lr: float) -> float:
        return base_lr * self.multiplier * max(1, self.world_size)


@dataclass
class GradualWarmup(LRSchedule):
    """Ramp the LR linearly from ``warmup_factor * lr`` to ``lr`` over ``warmup_epochs``."""

    warmup_epochs: float = 5.0
    warmup_factor: float = 0.1

    def lr_at(self, epoch: float, base_lr: float) -> float:
        if epoch >= self.warmup_epochs or self.warmup_epochs <= 0:
            return base_lr
        progress = epoch / self.warmup_epochs
        return base_lr * (self.warmup_factor + (1.0 - self.warmup_factor) * progress)


@dataclass
class PolynomialDecay(LRSchedule):
    """Decay the LR to ``end_lr`` following ``(1 - epoch/total)^power``."""

    total_epochs: float = 100.0
    power: float = 2.0
    end_lr: float = 0.0

    def lr_at(self, epoch: float, base_lr: float) -> float:
        if self.total_epochs <= 0:
            return base_lr
        progress = min(1.0, max(0.0, epoch / self.total_epochs))
        return self.end_lr + (base_lr - self.end_lr) * (1.0 - progress) ** self.power


class CompositeLRPolicy(LRSchedule):
    """Apply a sequence of schedules, each transforming the previous LR.

    ``LinearScaling`` is applied first (it changes the effective base LR),
    warmup second and decay last — matching how Goyal et al. compose them.
    The composite also satisfies the paper's Assumption 2 as long as the decay
    component drives the LR towards zero over the horizon.
    """

    def __init__(self, schedules: List[LRSchedule]):
        self.schedules = list(schedules)

    def lr_at(self, epoch: float, base_lr: float) -> float:
        lr = base_lr
        for schedule in self.schedules:
            lr = schedule.lr_at(epoch, lr)
        return lr

    def __repr__(self) -> str:  # pragma: no cover
        return f"CompositeLRPolicy({[type(s).__name__ for s in self.schedules]})"


def build_lr_policy(spec: str, world_size: int = 1, total_epochs: float = 100.0,
                    warmup_epochs: float = 5.0) -> Tuple[CompositeLRPolicy, bool]:
    """Parse a Table-1 policy string like ``"LS(1.5 x) + GW + PD + LARS"``.

    Returns
    -------
    (policy, use_lars):
        The composed schedule and whether the LARS optimizer should be used.
    """
    if not spec or not spec.strip():
        return CompositeLRPolicy([ConstantLR()]), False
    use_lars = False
    schedules: List[LRSchedule] = []
    for token in (part.strip() for part in spec.split("+")):
        if not token:
            continue
        upper = token.upper()
        if upper.startswith("LS"):
            match = re.search(r"\(([\d.]+)\s*x?\)", token)
            multiplier = float(match.group(1)) if match else 1.0
            schedules.append(LinearScaling(world_size=world_size, multiplier=multiplier))
        elif upper == "GW":
            schedules.append(GradualWarmup(warmup_epochs=warmup_epochs))
        elif upper == "PD":
            schedules.append(PolynomialDecay(total_epochs=total_epochs))
        elif upper == "LARS":
            use_lars = True
        else:
            raise ValueError(f"unknown LR policy token {token!r}")
    if not schedules:
        schedules = [ConstantLR()]
    return CompositeLRPolicy(schedules), use_lars


def satisfies_assumption2(policy: LRSchedule, base_lr: float, total_epochs: float,
                          iterations_per_epoch: int = 100) -> bool:
    """Numerically sanity-check the paper's Assumption 2 on a finite horizon.

    Assumption 2 requires Σ η_t = ∞ and Σ η_t² < ∞ over an infinite horizon.
    On a finite run we check the weaker, testable proxies: the LR stays
    positive and non-increasing after warmup, and the sum of squares over the
    run is finite.  Used by diagnostics/tests, not by training itself.
    """
    lrs = [policy.lr_at(e, base_lr)
           for e in (i / iterations_per_epoch for i in range(int(total_epochs * iterations_per_epoch)))]
    if not lrs:
        return False
    positive = all(lr > 0 or abs(lr) < 1e-12 for lr in lrs)
    finite_sq = sum(lr * lr for lr in lrs) < float("inf")
    return positive and finite_sq
