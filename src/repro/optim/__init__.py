"""Optimizers and learning-rate policies used in the paper's experiments."""

from repro.optim.sgd import SGD, Optimizer
from repro.optim.lars import LARS
from repro.optim.lr_schedule import (
    CompositeLRPolicy,
    ConstantLR,
    GradualWarmup,
    LinearScaling,
    LRSchedule,
    PolynomialDecay,
    build_lr_policy,
)
from repro.optim.registry import LR_SCHEDULES, OPTIMIZERS

__all__ = [
    "OPTIMIZERS",
    "LR_SCHEDULES",
    "Optimizer",
    "SGD",
    "LARS",
    "LRSchedule",
    "ConstantLR",
    "LinearScaling",
    "GradualWarmup",
    "PolynomialDecay",
    "CompositeLRPolicy",
    "build_lr_policy",
]
