"""repro — reproduction of A2SGD (two-level gradient averaging for distributed SGD).

The package is organised as a stack of subsystems:

``repro.tensor``
    A from-scratch reverse-mode autograd engine on top of NumPy.
``repro.nn``
    Neural-network layers (Linear, Conv2d, BatchNorm, LSTM, ...) built on the
    tensor engine.
``repro.optim``
    SGD / LARS optimizers and the learning-rate policies used in the paper
    (linear scaling, gradual warmup, polynomial decay).
``repro.models``
    The four evaluation models: FNN-3, VGG-16, ResNet-20 and LSTM-PTB.
``repro.data``
    Synthetic stand-ins for MNIST, CIFAR-10 and Penn Treebank plus data
    loading / per-worker sharding.
``repro.comm``
    The communication substrate: an in-process multi-worker world with real
    collective algorithms (ring Allreduce, Allgather, ...) and an analytic
    latency/bandwidth network model for a 100 Gbps InfiniBand cluster.
``repro.compress``
    Gradient compression algorithms: the paper's contribution (A2SGD) and the
    baselines it compares against (Dense, Top-K, Gaussian-K, QSGD) plus a few
    extensions (Rand-K, TernGrad, SignSGD).
``repro.sync``
    Pluggable synchronization: strategies (allreduce, local SGD, gossip),
    aggregators (mean and Byzantine-robust trimmed mean / medians) and the
    declarative ``SyncSpec`` that composes them with the comm topologies.
``repro.core``
    The distributed trainer, gradient synchronizer, metrics, cost model and
    experiment runner that tie everything together.
``repro.analysis``
    Gradient statistics, convergence diagnostics, scaling-efficiency
    calculations and text renderers for the paper's tables and figures.
"""

from repro.version import __version__

from repro.utils import denormals

# Subnormal floats run through 10-100x-slower microcode assists on x86, and
# training produces them constantly (saturated gates, BPTT chain products,
# softmax tails).  Flush them at the hardware level for the importing thread,
# exactly as PyTorch does by default; set REPRO_KEEP_DENORMALS=1 to opt out.
denormals.enable_flush_to_zero()

from repro.compress import (
    A2SGDCompressor,
    Compressor,
    DenseCompressor,
    GaussianKCompressor,
    QSGDCompressor,
    RandKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
    get_compressor,
)
from repro.registry import Registry, RegistryKeyError
from repro.core import (
    CALLBACKS,
    Callback,
    CostModel,
    DistributedTrainer,
    ExperimentConfig,
    ExperimentResult,
    ExperimentSpec,
    GradientSynchronizer,
    IterationTimeline,
    SpecError,
    TrainState,
    TrainingMetrics,
    run_algorithm_sweep,
    run_experiment,
)
from repro.comm import (
    InProcessWorld,
    NetworkModel,
    infiniband_100gbps,
)
from repro.sync import (
    AGGREGATORS,
    SYNC_STRATEGIES,
    Aggregator,
    SyncSpec,
    SyncStrategy,
    get_aggregator,
)

__all__ = [
    "__version__",
    # compressors
    "Compressor",
    "A2SGDCompressor",
    "DenseCompressor",
    "TopKCompressor",
    "GaussianKCompressor",
    "QSGDCompressor",
    "RandKCompressor",
    "TernGradCompressor",
    "SignSGDCompressor",
    "get_compressor",
    # core
    "DistributedTrainer",
    "GradientSynchronizer",
    "CostModel",
    "IterationTimeline",
    "TrainingMetrics",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSpec",
    "SpecError",
    "run_experiment",
    "run_algorithm_sweep",
    # registry + callbacks
    "Registry",
    "RegistryKeyError",
    "CALLBACKS",
    "Callback",
    "TrainState",
    # comm
    "InProcessWorld",
    "NetworkModel",
    "infiniband_100gbps",
    # synchronization
    "SYNC_STRATEGIES",
    "SyncStrategy",
    "SyncSpec",
    "AGGREGATORS",
    "Aggregator",
    "get_aggregator",
]
