"""Per-client dataset partitioning for federated populations.

A federated simulation splits one training set across a logical client
population of size ``N`` (usually ``N ≫ P``, the number of materialized
replica slots).  Each policy maps the dataset to ``N`` disjoint index sets
that together cover it exactly — no sample is dropped or duplicated — and
the split is a pure function of ``(targets, num_clients, seed)`` so client
``c`` owns the same shard on every run, every world size, and every resume.

Policies
--------
``iid``
    The same permutation + contiguous split as
    :func:`repro.data.dataloader.shard_dataset`; with ``N == P`` it is
    bit-identical to the trainer's default per-rank sharding (the basis of
    the fedavg ≡ local_sgd equivalence test).
``dirichlet``
    Label-skew sharding à la Hsu et al.: for every class, client proportions
    are drawn from ``Dirichlet(alpha)`` and the class's samples are split by
    those proportions.  Small ``alpha`` → severe skew.  Clients left empty
    by an extreme draw are topped up deterministically from the largest
    client so the partition stays exact and every client is trainable.
``shards``
    The classic McMahan et al. pathological split: sort by label, cut into
    ``N`` contiguous shards — most clients see only one or two classes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import new_rng

#: Known data-skew policies, in documentation order.
PARTITION_POLICIES = ("iid", "dirichlet", "shards")

#: Keyword arguments each policy accepts (used by spec validation).
_POLICY_KWARGS: Dict[str, Sequence[str]] = {
    "iid": (),
    "dirichlet": ("alpha",),
    "shards": (),
}


def partition_problems(policy: str, kwargs: Dict[str, object]) -> List[str]:
    """Validation problems for a ``(data_skew, data_skew_kwargs)`` pair.

    Shared by ``ClientSpec.problems`` and the CLI so the wording stays in
    one place.  Returns an empty list when the pair is constructible.
    """
    problems: List[str] = []
    if policy not in PARTITION_POLICIES:
        problems.append(f"unknown data_skew {policy!r}; "
                        f"available: {list(PARTITION_POLICIES)}")
        return problems
    known = _POLICY_KWARGS[policy]
    for key in kwargs:
        if key not in known:
            problems.append(f"data_skew {policy!r} does not accept kwarg {key!r} "
                            f"(known kwargs: {list(known)})")
    if policy == "dirichlet":
        alpha = kwargs.get("alpha", 0.5)
        if not isinstance(alpha, (int, float)) or isinstance(alpha, bool) \
                or not float(alpha) > 0:
            problems.append(f"data_skew 'dirichlet' needs alpha > 0, got {alpha!r}")
    return problems


def partition_indices(targets: np.ndarray, num_clients: int,
                      policy: str = "iid", seed: int = 0,
                      **kwargs: object) -> List[np.ndarray]:
    """Split ``range(len(targets))`` into ``num_clients`` disjoint index sets.

    The returned lists cover the dataset exactly, every client receives at
    least one sample, and the result is deterministic per client id: the
    whole partition is a function of ``(targets, num_clients, policy, seed)``
    only, never of world size or sampling history.
    """
    problems = partition_problems(policy, dict(kwargs))
    if problems:
        raise ValueError("; ".join(problems))
    targets = np.asarray(targets).reshape(-1)
    n = len(targets)
    num_clients = int(num_clients)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if n < num_clients:
        raise ValueError(f"cannot partition {n} examples across "
                         f"{num_clients} clients")
    if policy == "iid":
        # Kept in permutation order (not sorted): shard_dataset serves its
        # shards this way, and the N == P bit-identity depends on it.
        return [shard.astype(np.int64)
                for shard in _partition_iid(n, num_clients, seed)]
    if policy == "dirichlet":
        alpha = float(kwargs.get("alpha", 0.5))
        shards = _partition_dirichlet(targets, num_clients, seed, alpha)
    else:  # shards
        shards = _partition_shards(targets, num_clients)
    shards = _fill_empty_clients(shards)
    return [np.sort(shard).astype(np.int64) for shard in shards]


def partition_clients(dataset: ArrayDataset, num_clients: int,
                      policy: str = "iid", seed: int = 0,
                      **kwargs: object) -> List[ArrayDataset]:
    """Materialize :func:`partition_indices` as per-client sub-datasets."""
    shards = partition_indices(dataset.targets, num_clients, policy=policy,
                               seed=seed, **kwargs)
    return [dataset.subset(indices) for indices in shards]


def _partition_iid(n: int, num_clients: int, seed: int) -> List[np.ndarray]:
    # Mirrors shard_dataset(dataset, c, num_clients, shuffle_seed=seed) for
    # every client c, so with num_clients == world_size the shards are
    # bit-identical to the trainer's default per-rank split.
    indices = new_rng("shard_permutation", seed=seed).permutation(n)
    return [np.asarray(s) for s in np.array_split(indices, num_clients)]


def _partition_dirichlet(targets: np.ndarray, num_clients: int, seed: int,
                         alpha: float) -> List[np.ndarray]:
    rng = new_rng("dirichlet_partition", seed=seed)
    buckets: List[List[np.ndarray]] = [[] for _ in range(num_clients)]
    for cls in np.unique(targets):
        idx = np.flatnonzero(targets == cls)
        idx = idx[rng.permutation(len(idx))]
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        counts = _exact_counts(proportions, len(idx))
        cuts = np.cumsum(counts)[:-1]
        for client, piece in enumerate(np.split(idx, cuts)):
            if len(piece):
                buckets[client].append(piece)
    return [np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            for parts in buckets]


def _partition_shards(targets: np.ndarray, num_clients: int) -> List[np.ndarray]:
    # Stable sort keeps the within-class order deterministic.
    order = np.argsort(targets, kind="stable")
    return [np.asarray(s) for s in np.array_split(order, num_clients)]


def _exact_counts(proportions: np.ndarray, total: int) -> np.ndarray:
    """Integer counts summing exactly to ``total``, proportional to the draw.

    Floor allocation first, then the remainder goes to the largest fractional
    parts (ties broken by client id) — fully deterministic.
    """
    scaled = proportions * total
    counts = np.floor(scaled).astype(np.int64)
    remainder = int(total - counts.sum())
    if remainder:
        fractional = scaled - counts
        for client in np.lexsort((np.arange(len(counts)), -fractional))[:remainder]:
            counts[client] += 1
    return counts


def _fill_empty_clients(shards: List[np.ndarray]) -> List[np.ndarray]:
    """Move samples from the largest client to any empty ones.

    Extreme Dirichlet draws can starve a client; an empty shard would make
    the client untrainable, so each empty client deterministically takes one
    sample from whichever client currently holds the most (ties broken by
    the lower client id).
    """
    shards = [np.asarray(s, dtype=np.int64) for s in shards]
    for client, shard in enumerate(shards):
        if len(shard):
            continue
        sizes = np.array([len(s) for s in shards])
        donor = int(np.argmax(sizes))  # argmax takes the first (lowest id) tie
        if sizes[donor] <= 1:
            raise ValueError("cannot repair empty client shards: no client "
                             "has more than one sample to donate")
        shards[client] = shards[donor][-1:]
        shards[donor] = shards[donor][:-1]
    return shards
