"""Synthetic image-classification datasets standing in for MNIST and CIFAR-10.

Each class ``c`` is represented by a fixed prototype image drawn once from a
seeded generator; samples are the prototype plus Gaussian pixel noise and a
random global intensity shift.  The resulting task is linearly separable at
low noise and progressively harder as ``noise_std`` grows, so differences in
optimizer/compressor behaviour show up as differences in convergence speed —
which is what the paper's Figure 3 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of a synthetic image-classification dataset."""

    num_train: int = 2048
    num_test: int = 512
    image_shape: Tuple[int, int, int] = (1, 28, 28)
    num_classes: int = 10
    noise_std: float = 0.35
    intensity_jitter: float = 0.1
    seed: int = 0


def _generate_split(config: SyntheticImageConfig, prototypes: np.ndarray, count: int,
                    rng: np.random.Generator) -> ArrayDataset:
    labels = rng.integers(0, config.num_classes, size=count)
    images = prototypes[labels].copy()
    images += rng.normal(0.0, config.noise_std, size=images.shape)
    images += rng.normal(0.0, config.intensity_jitter, size=(count, 1, 1, 1))
    return ArrayDataset(images.astype(np.float32), labels.astype(np.int64))


def make_synthetic_image_dataset(config: SyntheticImageConfig) -> Tuple[ArrayDataset, ArrayDataset]:
    """Build (train, test) splits that share the same class prototypes."""
    rng = new_rng("synthetic_images", config.image_shape, config.num_classes, seed=config.seed)
    prototypes = rng.normal(0.0, 1.0, size=(config.num_classes, *config.image_shape))
    # Normalize prototypes so classes are equidistant on average.
    prototypes /= np.linalg.norm(prototypes.reshape(config.num_classes, -1),
                                 axis=1).reshape(-1, 1, 1, 1)
    prototypes *= np.sqrt(np.prod(config.image_shape))

    train = _generate_split(config, prototypes, config.num_train,
                            new_rng("train_split", seed=config.seed))
    test = _generate_split(config, prototypes, config.num_test,
                           new_rng("test_split", seed=config.seed))
    return train, test


def make_synthetic_mnist(num_train: int = 2048, num_test: int = 512, image_size: int = 28,
                         noise_std: float = 0.35, seed: int = 0
                         ) -> Tuple[ArrayDataset, ArrayDataset]:
    """MNIST-shaped synthetic data: single-channel ``image_size``² images, 10 classes."""
    config = SyntheticImageConfig(num_train=num_train, num_test=num_test,
                                  image_shape=(1, image_size, image_size),
                                  num_classes=10, noise_std=noise_std, seed=seed)
    return make_synthetic_image_dataset(config)


def make_synthetic_cifar10(num_train: int = 2048, num_test: int = 512, image_size: int = 32,
                           noise_std: float = 0.5, seed: int = 0
                           ) -> Tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-10-shaped synthetic data: three-channel ``image_size``² images, 10 classes."""
    config = SyntheticImageConfig(num_train=num_train, num_test=num_test,
                                  image_shape=(3, image_size, image_size),
                                  num_classes=10, noise_std=noise_std, seed=seed)
    return make_synthetic_image_dataset(config)
