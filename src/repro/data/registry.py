"""Dataset registry keyed by the names used in the model registry.

Each entry is a builder ``(seed, num_train, num_test) -> dataset`` registered
on the unified :class:`repro.registry.Registry`, so new datasets plug in with
a decorator instead of another ``elif`` branch:

    @DATASETS.register("my_corpus", description="...")
    def _my_corpus(seed=0, num_train=None, num_test=None): ...
"""

from __future__ import annotations

from repro.data.synthetic_images import make_synthetic_cifar10, make_synthetic_mnist
from repro.data.synthetic_text import SyntheticTextConfig, make_synthetic_ptb
from repro.registry import Registry

DATASETS = Registry("dataset", expose="datasets")


@DATASETS.register("mnist", aliases=("mnist_synthetic",),
                   description="synthetic MNIST stand-in, 28x28 images")
def _mnist(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    return make_synthetic_mnist(num_train=num_train or 2048, num_test=num_test or 512,
                                image_size=28, seed=seed)


@DATASETS.register("mnist_tiny", description="8x8 MNIST stand-in for CI-speed training")
def _mnist_tiny(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    return make_synthetic_mnist(num_train=num_train or 512, num_test=num_test or 128,
                                image_size=8, seed=seed)


@DATASETS.register("cifar10", aliases=("cifar10_synthetic",),
                   description="synthetic CIFAR-10 stand-in, 32x32 RGB images")
def _cifar10(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    return make_synthetic_cifar10(num_train=num_train or 2048, num_test=num_test or 512,
                                  image_size=32, seed=seed)


@DATASETS.register("cifar10_tiny", description="8x8 CIFAR-10 stand-in for CI-speed training")
def _cifar10_tiny(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    return make_synthetic_cifar10(num_train=num_train or 512, num_test=num_test or 128,
                                  image_size=8, seed=seed)


@DATASETS.register("cifar10_tiny32",
                   description="small-sample 32x32 CIFAR-10 stand-in (tiny VGG preset)")
def _cifar10_tiny32(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    return make_synthetic_cifar10(num_train=num_train or 256, num_test=num_test or 64,
                                  image_size=32, seed=seed)


@DATASETS.register("ptb", aliases=("ptb_synthetic",),
                   description="synthetic Penn Treebank token stream, 10k vocabulary")
def _ptb(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    config = SyntheticTextConfig(vocab_size=10000, train_tokens=num_train or 200_000,
                                 test_tokens=num_test or 20_000, seed=seed)
    return make_synthetic_ptb(config)


@DATASETS.register("ptb_tiny", description="200-token-vocabulary PTB stand-in for CI")
def _ptb_tiny(seed: int = 0, num_train: int | None = None, num_test: int | None = None):
    config = SyntheticTextConfig(vocab_size=200, train_tokens=num_train or 20_000,
                                 test_tokens=num_test or 4_000, seed=seed)
    return make_synthetic_ptb(config)


def list_datasets() -> list[str]:
    """Registered dataset names."""
    return DATASETS.list()


def get_dataset(name: str, seed: int = 0, num_train: int | None = None,
                num_test: int | None = None):
    """Build the dataset registered under ``name``.

    Image datasets return ``(train, test)`` :class:`ArrayDataset` pairs;
    language-model datasets return ``(train_tokens, test_tokens, vocab_size)``.
    """
    return DATASETS.create(name, seed=seed, num_train=num_train, num_test=num_test)
