"""Dataset registry keyed by the names used in the model registry."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.data.synthetic_images import make_synthetic_cifar10, make_synthetic_mnist
from repro.data.synthetic_text import SyntheticTextConfig, make_synthetic_ptb


def get_dataset(name: str, seed: int = 0, num_train: int | None = None,
                num_test: int | None = None):
    """Build the dataset registered under ``name``.

    Image datasets return ``(train, test)`` :class:`ArrayDataset` pairs;
    language-model datasets return ``(train_tokens, test_tokens, vocab_size)``.
    """
    name = name.lower()
    if name in ("mnist", "mnist_synthetic"):
        return make_synthetic_mnist(num_train=num_train or 2048, num_test=num_test or 512,
                                    image_size=28, seed=seed)
    if name == "mnist_tiny":
        return make_synthetic_mnist(num_train=num_train or 512, num_test=num_test or 128,
                                    image_size=8, seed=seed)
    if name in ("cifar10", "cifar10_synthetic"):
        return make_synthetic_cifar10(num_train=num_train or 2048, num_test=num_test or 512,
                                      image_size=32, seed=seed)
    if name == "cifar10_tiny":
        return make_synthetic_cifar10(num_train=num_train or 512, num_test=num_test or 128,
                                      image_size=8, seed=seed)
    if name == "cifar10_tiny32":
        return make_synthetic_cifar10(num_train=num_train or 256, num_test=num_test or 64,
                                      image_size=32, seed=seed)
    if name in ("ptb", "ptb_synthetic"):
        config = SyntheticTextConfig(vocab_size=10000, train_tokens=200_000, test_tokens=20_000,
                                     seed=seed)
        return make_synthetic_ptb(config)
    if name == "ptb_tiny":
        config = SyntheticTextConfig(vocab_size=200, train_tokens=num_train or 20_000,
                                     test_tokens=num_test or 4_000, seed=seed)
        return make_synthetic_ptb(config)
    raise KeyError(f"unknown dataset {name!r}")
