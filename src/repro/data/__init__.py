"""Synthetic datasets and data loading for the reproduction.

The paper evaluates on MNIST, CIFAR-10 and Penn Treebank.  Those corpora are
not redistributable inside this offline reproduction, so this package builds
deterministic synthetic stand-ins with matching tensor shapes and learnable
structure (class-prototype images; a Markov/Zipf token stream).  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.data.datasets import ArrayDataset, Dataset
from repro.data.dataloader import DataLoader, shard_dataset
from repro.data.synthetic_images import (
    SyntheticImageConfig,
    make_synthetic_cifar10,
    make_synthetic_mnist,
    make_synthetic_image_dataset,
)
from repro.data.synthetic_text import (
    LanguageModelBatcher,
    SyntheticTextConfig,
    make_synthetic_ptb,
)
from repro.data.registry import get_dataset

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "shard_dataset",
    "SyntheticImageConfig",
    "make_synthetic_mnist",
    "make_synthetic_cifar10",
    "make_synthetic_image_dataset",
    "SyntheticTextConfig",
    "make_synthetic_ptb",
    "LanguageModelBatcher",
    "get_dataset",
]
