"""Dataset abstractions."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays of inputs and targets.

    Parameters
    ----------
    inputs:
        Array of shape ``(N, ...)``.
    targets:
        Array of shape ``(N, ...)`` (integer class labels for classification).
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(f"inputs ({len(inputs)}) and targets ({len(targets)}) "
                             "must have the same length")
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """A new dataset restricted to ``indices`` (copies the selection)."""
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(self.inputs.shape[1:])

    @property
    def num_classes(self) -> int:
        """Number of distinct integer labels (classification datasets)."""
        if not np.issubdtype(self.targets.dtype, np.integer):
            raise ValueError("num_classes is only defined for integer targets")
        return int(self.targets.max()) + 1
