"""Synthetic Penn-Treebank-style token stream for the LSTM-PTB experiments.

The generator produces a first-order Markov token stream over a vocabulary
with a Zipf-distributed stationary distribution.  A language model can reduce
perplexity substantially below the uniform baseline by learning the
transition structure, so the relative convergence of compressors — the
quantity Figure 3(d) of the paper reports — is observable on this synthetic
corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import new_rng


@dataclass(frozen=True)
class SyntheticTextConfig:
    """Parameters of the synthetic language-modelling corpus."""

    vocab_size: int = 200
    train_tokens: int = 20_000
    test_tokens: int = 4_000
    zipf_exponent: float = 1.1
    branching: int = 8          # out-degree of each token in the Markov chain
    seed: int = 0


def _transition_matrix(config: SyntheticTextConfig, rng: np.random.Generator) -> np.ndarray:
    """Sparse row-stochastic transition matrix with Zipf-weighted targets."""
    vocab = config.vocab_size
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    zipf_weights = 1.0 / np.power(ranks, config.zipf_exponent)
    zipf_weights /= zipf_weights.sum()

    matrix = np.zeros((vocab, vocab), dtype=np.float64)
    for token in range(vocab):
        successors = rng.choice(vocab, size=min(config.branching, vocab), replace=False,
                                p=zipf_weights)
        probs = rng.dirichlet(np.ones(len(successors)) * 0.5)
        matrix[token, successors] = probs
    return matrix


def _sample_stream(matrix: np.ndarray, length: int, rng: np.random.Generator) -> np.ndarray:
    vocab = matrix.shape[0]
    stream = np.empty(length, dtype=np.int64)
    current = int(rng.integers(0, vocab))
    cumulative = matrix.cumsum(axis=1)
    uniforms = rng.random(length)
    for i in range(length):
        stream[i] = current
        current = int(np.searchsorted(cumulative[current], uniforms[i]))
        if current >= vocab:  # numerical guard
            current = vocab - 1
    return stream


def make_synthetic_ptb(config: SyntheticTextConfig | None = None,
                       seed: int = 0) -> Tuple[np.ndarray, np.ndarray, int]:
    """Build (train_tokens, test_tokens, vocab_size) token streams."""
    config = config if config is not None else SyntheticTextConfig(seed=seed)
    rng = new_rng("synthetic_ptb", config.vocab_size, config.zipf_exponent, seed=config.seed)
    matrix = _transition_matrix(config, rng)
    train = _sample_stream(matrix, config.train_tokens, new_rng("ptb_train", seed=config.seed))
    test = _sample_stream(matrix, config.test_tokens, new_rng("ptb_test", seed=config.seed))
    return train, test, config.vocab_size


class LanguageModelBatcher:
    """Batchify a token stream for truncated-BPTT training.

    The stream is reshaped into ``batch_size`` parallel sequences (as in the
    standard PTB training recipe); :meth:`batches` yields
    ``(inputs, targets)`` pairs of shape ``(seq_len, batch_size)`` where the
    targets are the inputs shifted by one position.
    """

    def __init__(self, tokens: np.ndarray, batch_size: int, seq_len: int):
        tokens = np.asarray(tokens, dtype=np.int64)
        if batch_size < 1 or seq_len < 1:
            raise ValueError("batch_size and seq_len must be positive")
        usable = (len(tokens) // batch_size) * batch_size
        if usable < 2 * batch_size:
            raise ValueError("token stream too short for the requested batch size")
        self.batch_size = int(batch_size)
        self.seq_len = int(seq_len)
        self.data = tokens[:usable].reshape(batch_size, -1).T   # (steps, batch)

    def __len__(self) -> int:
        """Number of (input, target) windows per epoch."""
        return max(0, (self.data.shape[0] - 1) // self.seq_len)

    def batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        steps = self.data.shape[0]
        for start in range(0, steps - 1, self.seq_len):
            end = min(start + self.seq_len, steps - 1)
            inputs = self.data[start:end]
            targets = self.data[start + 1:end + 1]
            yield inputs, targets

    def shard(self, rank: int, world_size: int) -> "LanguageModelBatcher":
        """Restrict the batch dimension to this worker's share (data parallelism)."""
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        columns = np.array_split(np.arange(self.batch_size), world_size)[rank]
        if len(columns) == 0:
            raise ValueError("more workers than batch columns; decrease world size")
        sharded = LanguageModelBatcher.__new__(LanguageModelBatcher)
        sharded.batch_size = len(columns)
        sharded.seq_len = self.seq_len
        sharded.data = self.data[:, columns]
        return sharded
