"""Mini-batch loading and per-worker sharding.

Data-parallel distributed SGD gives every worker a disjoint shard of the
training set and a fraction ``B/P`` of the global mini-batch (the paper's
``M_t^p``).  :func:`shard_dataset` performs the split; :class:`DataLoader`
iterates a shard in a reproducible shuffled order.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.datasets import ArrayDataset, Dataset
from repro.utils.rng import new_rng


def shard_dataset(dataset: ArrayDataset, rank: int, world_size: int,
                  shuffle_seed: Optional[int] = 0) -> ArrayDataset:
    """Return the contiguous shard of ``dataset`` owned by ``rank``.

    A fixed permutation (derived from ``shuffle_seed``) is applied before
    splitting so shards are statistically exchangeable; every rank applies the
    same permutation, so shards are disjoint and cover the dataset.
    """
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")
    n = len(dataset)
    if world_size > n:
        raise ValueError(f"cannot shard {n} examples across {world_size} workers")
    indices = np.arange(n)
    if shuffle_seed is not None:
        indices = new_rng("shard_permutation", seed=shuffle_seed).permutation(n)
    shards = np.array_split(indices, world_size)
    return dataset.subset(shards[rank])


class DataLoader:
    """Iterate a dataset in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        The (possibly sharded) dataset.
    batch_size:
        Per-worker batch size.
    shuffle:
        Reshuffle every epoch.
    drop_last:
        Drop the final incomplete batch (keeps batch shapes static).
    rng:
        Generator controlling the shuffle order.
    """

    def __init__(self, dataset: Dataset, batch_size: int, shuffle: bool = True,
                 drop_last: bool = True, rng: Optional[np.random.Generator] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.rng = rng if rng is not None else new_rng("dataloader")
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        self._epoch += 1
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start:start + self.batch_size]
            xs, ys = zip(*(self.dataset[int(i)] for i in idx))
            yield np.stack(xs), np.asarray(ys)
