"""Compressor registry.

Maps the algorithm names used throughout the paper's figures ("Dense",
"TopK", "GaussianK", "QSGD", "A2SGD") to constructors, so experiments and
benchmarks can be parameterised by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compress.a2sgd import A2SGDCompressor
from repro.compress.base import Compressor
from repro.compress.dense import DenseCompressor
from repro.compress.dgc import DGCCompressor
from repro.compress.gaussiank import GaussianKCompressor
from repro.compress.qsgd import QSGDCompressor
from repro.compress.randk import RandKCompressor
from repro.compress.signsgd import SignSGDCompressor
from repro.compress.terngrad import TernGradCompressor
from repro.compress.topk import TopKCompressor

COMPRESSOR_REGISTRY: Dict[str, Callable[..., Compressor]] = {
    "dense": DenseCompressor,
    "a2sgd": A2SGDCompressor,
    "topk": TopKCompressor,
    "gaussiank": GaussianKCompressor,
    "qsgd": QSGDCompressor,
    "randk": RandKCompressor,
    "terngrad": TernGradCompressor,
    "signsgd": SignSGDCompressor,
    "dgc": DGCCompressor,
}

#: The five algorithms compared in every figure of the paper's evaluation.
PAPER_ALGORITHMS: List[str] = ["dense", "topk", "qsgd", "gaussiank", "a2sgd"]


def list_compressors() -> List[str]:
    """Registered compressor names."""
    return sorted(COMPRESSOR_REGISTRY)


def get_compressor(name: str, **kwargs) -> Compressor:
    """Construct a compressor by (case-insensitive) name.

    Extra keyword arguments are forwarded to the constructor, e.g.
    ``get_compressor("topk", ratio=0.01)``.
    """
    key = name.lower().replace("-", "").replace("_", "")
    aliases = {"top_k": "topk", "gaussian_k": "gaussiank", "rand_k": "randk",
               "a2": "a2sgd", "densesgd": "dense"}
    key = aliases.get(key, key)
    if key not in COMPRESSOR_REGISTRY:
        raise KeyError(f"unknown compressor {name!r}; available: {list_compressors()}")
    return COMPRESSOR_REGISTRY[key](**kwargs)
