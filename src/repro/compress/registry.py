"""Compressor registry.

Maps the algorithm names used throughout the paper's figures ("Dense",
"TopK", "GaussianK", "QSGD", "A2SGD") to constructors, so experiments and
benchmarks can be parameterised by name.

Since the unified-registry refactor this module is a thin shim over
:class:`repro.registry.Registry`: ``COMPRESSORS`` is the registry instance
and ``COMPRESSOR_REGISTRY`` / ``get_compressor`` / ``list_compressors`` are
kept as the historical public surface.
"""

from __future__ import annotations

from typing import List

from repro.compress.a2sgd import A2SGDCompressor
from repro.compress.base import Compressor
from repro.compress.dense import DenseCompressor
from repro.compress.dgc import DGCCompressor
from repro.compress.gaussiank import GaussianKCompressor
from repro.compress.qsgd import QSGDCompressor
from repro.compress.randk import RandKCompressor
from repro.compress.signsgd import SignSGDCompressor
from repro.compress.terngrad import TernGradCompressor
from repro.compress.topk import TopKCompressor
from repro.registry import Registry

COMPRESSORS = Registry("compressor", expose="compressors")
COMPRESSORS.register("dense", DenseCompressor, aliases=("dense_sgd",),
                     description="full 32-bit gradients (baseline distributed SGD)")
COMPRESSORS.register("a2sgd", A2SGDCompressor, aliases=("a2",),
                     description="the paper's two-scalar (mu+, mu-) compressor")
COMPRESSORS.register("topk", TopKCompressor,
                     description="magnitude-based sparsification (Stich et al.)")
COMPRESSORS.register("gaussiank", GaussianKCompressor,
                     description="Gaussian-threshold sparsification (Shi et al.)")
COMPRESSORS.register("qsgd", QSGDCompressor,
                     description="multi-level stochastic quantization (Alistarh et al.)")
COMPRESSORS.register("randk", RandKCompressor,
                     description="uniform random-k sparsification")
COMPRESSORS.register("terngrad", TernGradCompressor,
                     description="ternary {-1, 0, +1} quantization")
COMPRESSORS.register("signsgd", SignSGDCompressor,
                     description="1-bit sign quantization with majority vote")
COMPRESSORS.register("dgc", DGCCompressor,
                     description="deep gradient compression (momentum correction)")

#: Legacy name: the registry doubles as the old module-level dict.
COMPRESSOR_REGISTRY = COMPRESSORS

#: The five algorithms compared in every figure of the paper's evaluation.
PAPER_ALGORITHMS: List[str] = ["dense", "topk", "qsgd", "gaussiank", "a2sgd"]


def list_compressors() -> List[str]:
    """Registered compressor names."""
    return COMPRESSORS.list()


def get_compressor(name: str, **kwargs) -> Compressor:
    """Construct a compressor by (case/punctuation-insensitive) name.

    Extra keyword arguments are forwarded to the constructor, e.g.
    ``get_compressor("topk", ratio=0.01)``.
    """
    return COMPRESSORS.create(name, **kwargs)
