"""QSGD — stochastic multi-level gradient quantization (Alistarh et al., 2017).

A gradient coordinate ``v_i`` is encoded as ``‖v‖₂ · sgn(v_i) · ξ_i`` where
``ξ_i`` is a random variable on the quantization grid ``{0, 1/s, ..., 1}``
chosen so that the encoding is unbiased:  with ``ℓ/s ≤ |v_i|/‖v‖₂ < (ℓ+1)/s``
the coordinate rounds up to ``(ℓ+1)/s`` with probability
``|v_i|/‖v‖₂ · s − ℓ`` and down to ``ℓ/s`` otherwise.

Following the paper's appendix, the quantization level is ``s = 4`` and the
wire cost per worker is taken as ``2.8 n + 32`` bits (the Elias-coded size
reported by Alistarh et al. for low ``s``).  The reference implementation the
paper benchmarks ([42]) computes the 2-norm and then quantizes each gradient
in a Python loop, which is why Table 2 lists its computation complexity as
O(n²); here the quantization itself is vectorised, and the cost model charges
the O(n²) behaviour analytically when reproducing Figure 2/Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind
from repro.utils.rng import new_rng


class QSGDCompressor(Compressor):
    """Unbiased stochastic quantization to ``s`` levels per sign.

    Parameters
    ----------
    levels:
        Number of quantization levels ``s`` (paper appendix: 4).
    error_feedback:
        Keep the quantization residual and add it to the next gradient
        (the error-compensated variant; Table 2 notes all non-dense baselines
        keep a local error vector).
    bucket_size:
        Quantize the gradient in buckets of this many coordinates, each with
        its own 2-norm, as the reference QSGD implementation does.  Smaller
        buckets mean lower quantization noise at the cost of extra scalars on
        the wire.  ``None`` quantizes the whole vector against a single norm.
    rng:
        Generator for the stochastic rounding (reproducible by default).
    """

    name = "qsgd"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True

    def __init__(self, levels: int = 4, error_feedback: bool = True,
                 bucket_size: Optional[int] = 512,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if levels < 1:
            raise ValueError("levels must be >= 1")
        if bucket_size is not None and bucket_size < 1:
            raise ValueError("bucket_size must be positive or None")
        self.levels = int(levels)
        self.error_feedback = bool(error_feedback)
        self.bucket_size = int(bucket_size) if bucket_size is not None else None
        self.rng = rng if rng is not None else new_rng("qsgd", levels)
        self._residual: np.ndarray | None = None

    def reset_state(self) -> None:
        super().reset_state()
        self._residual = None

    # ------------------------------------------------------------------ #
    def quantize(self, vector: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (norm, signed integer levels in [-s, s]) for ``vector``."""
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return 0.0, np.zeros(vector.size, dtype=np.int8)
        scaled = np.abs(vector) / norm * self.levels
        lower = np.floor(scaled)
        probability_up = scaled - lower
        rounded = lower + (self.rng.random(vector.size) < probability_up)
        rounded = np.clip(rounded, 0, self.levels)
        return norm, (np.sign(vector) * rounded).astype(np.int8)

    def dequantize(self, norm: float, levels: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`quantize` (in expectation equal to the input)."""
        return (np.asarray(levels, dtype=np.float64) / self.levels) * norm

    def _bucket_bounds(self, n: int) -> np.ndarray:
        size = self.bucket_size or n
        return np.arange(0, n + size, size)[:max(2, int(np.ceil(n / size)) + 1)]

    def _bucket_sizes(self, n: int) -> np.ndarray:
        bounds = self._bucket_bounds(n)
        return np.minimum(bounds[1:], n) - bounds[:-1]

    def _quantize_rows(self, M: np.ndarray,
                       rngs: Sequence[np.random.Generator]) -> Tuple[np.ndarray, np.ndarray]:
        """Bucketed quantization of ``(P, n)`` rows, vectorized over buckets.

        Rows are zero-padded to whole buckets and reshaped to
        ``(P, buckets, bucket_size)`` so the per-bucket norms and the
        stochastic rounding are single axis operations.  The rounding draws
        come from ``rngs[p]`` in rank order — one ``random()`` call per rank —
        so a one-row call and a stacked call consume each rank's stream
        identically.
        """
        P, n = M.shape
        size = int(self.bucket_size or n)
        bounds = self._bucket_bounds(n)
        num_buckets = len(bounds) - 1
        padded = np.zeros((P, num_buckets * size), dtype=np.float32)
        padded[:, :n] = M
        blocks = padded.reshape(P, num_buckets, size)

        norms32 = np.sqrt((blocks * blocks).sum(axis=2, dtype=np.float32))
        safe_norms = np.where(norms32 > 0, norms32, np.float32(1.0))
        scaled = np.abs(blocks) / safe_norms[:, :, None] * self.levels
        lower = np.floor(scaled)
        probability_up = scaled - lower
        draws = np.stack([rng.random((num_buckets, size)) for rng in rngs])
        rounded = np.clip(lower + (draws < probability_up), 0, self.levels)
        signed = (np.sign(blocks) * rounded).astype(np.int8)
        return norms32.astype(np.float64), signed.reshape(P, -1)[:, :n]

    def quantize_bucketed(self, vector: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize per bucket; returns (per-bucket norms, signed levels)."""
        vector = np.asarray(vector, dtype=np.float32)
        norms, levels = self._quantize_rows(vector[None, :], [self.rng])
        return norms[0], levels[0]

    def dequantize_bucketed(self, norms: np.ndarray, levels: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`quantize_bucketed` (row- or matrix-shaped).

        Accepts ``(B,)``/``(n,)`` vectors or stacked ``(P, B)``/``(P, n)``
        matrices; the per-bucket scales are expanded with one ``np.repeat``
        instead of a Python loop over buckets.
        """
        norms = np.asarray(norms, dtype=np.float64)
        levels = np.asarray(levels)
        n = levels.shape[-1]
        sizes = self._bucket_sizes(n)
        scales = np.repeat(norms, sizes, axis=-1)
        return np.asarray(levels, dtype=np.float64) / self.levels * scales

    # ------------------------------------------------------------------ #
    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        if self.error_feedback:
            if self._residual is None or self._residual.shape != gradient.shape:
                self._residual = np.zeros_like(gradient)
            corrected = self._residual + gradient
        else:
            corrected = gradient

        norms, levels = self.quantize_bucketed(corrected)
        estimate = self.dequantize_bucketed(norms, levels).astype(gradient.dtype)
        if self.error_feedback:
            self._residual = corrected - estimate

        # Payload layout: [#buckets, norms..., levels...] — levels are small
        # integers, so a real deployment would entropy-code them into ≈2.8
        # bits each.
        payload = np.concatenate([[float(len(norms))], norms,
                                  levels.astype(np.float64)])
        wire = self.wire_bits(gradient.size)
        self._record(wire, corrected, estimate)
        return payload, {"n": gradient.size}

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        n = int(ctx["n"])
        total = np.zeros(n, dtype=np.float64)
        for payload in payloads:
            payload = np.asarray(payload, dtype=np.float64)
            num_buckets = int(payload[0])
            norms = payload[1:1 + num_buckets]
            levels = payload[1 + num_buckets:]
            total += self.dequantize_bucketed(norms, levels)
        return (total / len(payloads)).astype(np.float32)

    # ------------------------------------------------------------------ #
    supports_batch = True
    gathered_rank_invariant = True

    @classmethod
    def compress_batch(cls, compressors: Sequence["QSGDCompressor"], G: np.ndarray
                       ) -> Tuple[List[np.ndarray], List[Dict]]:
        reference = compressors[0]
        if any(c.levels != reference.levels or c.error_feedback != reference.error_feedback
               or c.bucket_size != reference.bucket_size for c in compressors):
            return super().compress_batch(compressors, G)

        G = np.asarray(G, dtype=np.float32)
        P, n = G.shape
        if reference.error_feedback:
            residuals = cls._stack_state(compressors, "_residual", P, n)
            corrected = residuals + G
        else:
            corrected = G

        norms, levels = reference._quantize_rows(corrected, [c.rng for c in compressors])
        estimates = reference.dequantize_bucketed(norms, levels).astype(np.float32)
        if reference.error_feedback:
            new_residuals = corrected - estimates
            for p, compressor in enumerate(compressors):
                compressor._residual = new_residuals[p]

        num_buckets = norms.shape[1]
        payloads: List[np.ndarray] = []
        contexts: List[Dict] = []
        wire = reference.wire_bits(n)
        for p, compressor in enumerate(compressors):
            payloads.append(np.concatenate([[float(num_buckets)], norms[p],
                                            levels[p].astype(np.float64)]))
            compressor._record(wire, corrected[p], estimates[p])
            contexts.append({"n": n})
        return payloads, contexts

    # ------------------------------------------------------------------ #
    def contraction_problem(self) -> Optional[str]:
        """QSGD's per-bucket error bound is ``(b/s²)·‖v‖²`` for ``b``
        coordinates at ``s`` levels: the quantization contracts only when
        ``levels >= sqrt(bucket_size)``.  The paper-default ``s = 4`` with
        512-coordinate buckets is unbiased but *not* contractive."""
        if self.bucket_size is None:
            return ("qsgd with bucket_size=None quantizes against the whole-"
                    "vector norm, so its error bound n/levels^2 grows with the "
                    "model size and the compression is not contractive; set a "
                    "bucket_size <= levels^2")
        if self.levels * self.levels < self.bucket_size:
            required = int(np.ceil(np.sqrt(self.bucket_size)))
            return (f"qsgd with levels={self.levels} and "
                    f"bucket_size={self.bucket_size} is not contractive "
                    f"(needs levels >= sqrt(bucket_size) = {required}); "
                    f"error feedback cannot drain the residual of a "
                    f"non-contractive codec — raise levels or shrink "
                    f"bucket_size (e.g. levels=16, bucket_size=64)")
        return None

    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """The paper quotes 2.8n + 32 bits for QSGD at low quantization levels."""
        return 2.8 * n + 32.0

    def computation_complexity(self, n: int) -> str:
        """Complexity of the reference (non-vectorised) implementation in Table 2."""
        return "O(n^2)"
