"""Top-K sparsification with error feedback (Stich et al., 2018; Aji & Heafield, 2017).

Each worker keeps a residual memory; every iteration it adds the fresh
gradient to the memory, selects the ``k`` coordinates with the largest
magnitude, transmits their (index, value) pairs, and subtracts the transmitted
part from the memory.  The paper's experiments use ``k = 0.001 n``.

Workers exchange sparse payloads with Allgather (sparse vectors with different
supports cannot be averaged by an Allreduce); each worker then averages the
densified contributions of all workers.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind, sparsity_k


class TopKCompressor(Compressor):
    """Magnitude-based top-k sparsification with residual memory.

    Parameters
    ----------
    ratio:
        Fraction of coordinates transmitted each iteration (paper: 0.001).
    error_feedback:
        Keep untransmitted mass in a residual added to the next gradient.
    include_index_bits:
        If True, :meth:`wire_bits` also counts 32-bit indices; the paper's
        Table 2 counts only the 32k value bits, so the default is False.
    """

    name = "topk"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True

    def __init__(self, ratio: float = 0.001, error_feedback: bool = True,
                 include_index_bits: bool = False):
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = float(ratio)
        self.error_feedback = bool(error_feedback)
        self.include_index_bits = bool(include_index_bits)
        self._residual: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        super().reset_state()
        self._residual = None

    def _accumulate_residual(self, gradient: np.ndarray) -> np.ndarray:
        if not self.error_feedback:
            return gradient
        if self._residual is None or self._residual.shape != gradient.shape:
            self._residual = np.zeros_like(gradient)
        return self._residual + gradient

    def select(self, corrected: np.ndarray) -> np.ndarray:
        """Indices of the k largest-magnitude coordinates (unordered)."""
        k = sparsity_k(corrected.size, self.ratio)
        if k >= corrected.size:
            return np.arange(corrected.size)
        # argpartition gives the top-k set in O(n); full sorting is not needed.
        return np.argpartition(np.abs(corrected), -k)[-k:]

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        corrected = self._accumulate_residual(gradient)
        indices = self.select(corrected)
        values = corrected[indices]

        if self.error_feedback:
            self._residual = corrected.copy()
            self._residual[indices] = 0.0

        # Payload layout: [indices..., values...] in one float array so the
        # collective layer only ever moves flat numeric buffers.
        payload = np.concatenate([indices.astype(np.float64), values.astype(np.float64)])
        sparse_estimate = np.zeros_like(gradient)
        sparse_estimate[indices] = values
        wire = self.wire_bits(gradient.size)
        self._record(wire, corrected, sparse_estimate)
        ctx = {"n": gradient.size, "k": len(indices)}
        return payload, ctx

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        n = int(ctx["n"])
        dense = np.zeros(n, dtype=np.float64)
        for payload in payloads:
            payload = np.asarray(payload, dtype=np.float64)
            k = payload.size // 2
            indices = payload[:k].astype(np.int64)
            values = payload[k:]
            np.add.at(dense, indices, values)
        return (dense / len(payloads)).astype(np.float32)

    # ------------------------------------------------------------------ #
    def wire_bits(self, n: int, world_size: int = 1) -> float:
        k = sparsity_k(n, self.ratio)
        bits = 32.0 * k
        if self.include_index_bits:
            bits += 32.0 * k
        return bits

    def computation_complexity(self, n: int) -> str:
        return "O(n + k log n)"
