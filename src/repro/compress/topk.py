"""Top-K sparsification with error feedback (Stich et al., 2018; Aji & Heafield, 2017).

Each worker keeps a residual memory; every iteration it adds the fresh
gradient to the memory, selects the ``k`` coordinates with the largest
magnitude, transmits their (index, value) pairs, and subtracts the transmitted
part from the memory.  The paper's experiments use ``k = 0.001 n``.

Workers exchange sparse payloads with Allgather (sparse vectors with different
supports cannot be averaged by an Allreduce); each worker then averages the
densified contributions of all workers.

Payload layout: one float32 array ``[indices..., values...]`` where the
indices are int32 bit patterns reinterpreted as float32
(:meth:`TopKCompressor.pack_payload`).  The bit-view is lossless for any
index (an int32 survives a float32 reinterpretation exactly), unlike the
seed's float64 encoding, which doubled the payload memory and would lose
index precision past 2⁵³ coordinates.  ``unpack_payload`` still accepts the
legacy float64 layout for old hand-built payloads.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.compress.base import Compressor, ExchangeKind, sparsity_k


class TopKCompressor(Compressor):
    """Magnitude-based top-k sparsification with residual memory.

    Parameters
    ----------
    ratio:
        Fraction of coordinates transmitted each iteration (paper: 0.001).
    error_feedback:
        Keep untransmitted mass in a residual added to the next gradient.
    include_index_bits:
        If True, :meth:`wire_bits` also counts 32-bit indices; the paper's
        Table 2 counts only the 32k value bits, so the default is False.
    """

    name = "topk"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True
    supports_batch = True
    gathered_rank_invariant = True

    def __init__(self, ratio: float = 0.001, error_feedback: bool = True,
                 include_index_bits: bool = False):
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = float(ratio)
        self.error_feedback = bool(error_feedback)
        self.include_index_bits = bool(include_index_bits)
        self._residual: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # payload packing
    # ------------------------------------------------------------------ #
    @staticmethod
    def pack_payload(indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Pack (indices, values) into one float32 ``[indices..., values...]``
        array, indices stored as int32 bit patterns."""
        idx_bits = np.ascontiguousarray(indices, dtype=np.int32).view(np.float32)
        return np.concatenate([idx_bits, np.asarray(values, dtype=np.float32)])

    @staticmethod
    def unpack_payload(payload: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`pack_payload`; also accepts the legacy float64
        layout where indices were stored as plain numbers."""
        payload = np.asarray(payload)
        k = payload.size // 2
        head = np.ascontiguousarray(payload[:k])
        if payload.dtype == np.float32:
            indices = head.view(np.int32).astype(np.int64)
        else:
            indices = head.astype(np.int64)
        return indices, payload[k:]

    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        super().reset_state()
        self._residual = None

    def _accumulate_residual(self, gradient: np.ndarray) -> np.ndarray:
        if not self.error_feedback:
            return gradient
        if self._residual is None or self._residual.shape != gradient.shape:
            self._residual = np.zeros_like(gradient)
        return self._residual + gradient

    def select(self, corrected: np.ndarray) -> np.ndarray:
        """Indices of the k largest-magnitude coordinates (unordered)."""
        k = sparsity_k(corrected.size, self.ratio)
        if k >= corrected.size:
            return np.arange(corrected.size)
        # argpartition gives the top-k set in O(n); full sorting is not needed.
        return np.argpartition(np.abs(corrected), -k)[-k:]

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        corrected = self._accumulate_residual(gradient)
        indices = self.select(corrected)
        values = corrected[indices]

        if self.error_feedback:
            self._residual = corrected.copy()
            self._residual[indices] = 0.0

        # Payload layout: [indices..., values...] in one float32 array so the
        # collective layer only ever moves flat numeric buffers.
        payload = self.pack_payload(indices, values)
        sparse_estimate = np.zeros_like(gradient)
        sparse_estimate[indices] = values
        wire = self.wire_bits(gradient.size)
        self._record(wire, corrected, sparse_estimate)
        ctx = {"n": gradient.size, "k": len(indices)}
        return payload, ctx

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        n = int(ctx["n"])
        dense = np.zeros(n, dtype=np.float64)
        for payload in payloads:
            indices, values = self.unpack_payload(payload)
            # Indices are unique within one payload (they come from a top-k /
            # random-subset selection), so a direct fancy-index add suffices —
            # no unbuffered np.add.at needed.
            dense[indices] += values.astype(np.float64)
        return (dense / len(payloads)).astype(np.float32)

    # ------------------------------------------------------------------ #
    # batched kernels
    # ------------------------------------------------------------------ #
    @classmethod
    def select_batch(cls, compressors: Sequence["TopKCompressor"], C: np.ndarray
                     ) -> Union[np.ndarray, List[np.ndarray]]:
        """Per-rank selections over the stacked corrected matrix.

        Top-K itself is one ``argpartition`` along axis 1; subclasses with
        rank-local randomness or data-dependent thresholds (Rand-K,
        Gaussian-K) override this with a per-rank loop and may return a ragged
        list when selection sizes differ across ranks.
        """
        P, n = C.shape
        k = sparsity_k(n, compressors[0].ratio)
        if k >= n:
            return np.tile(np.arange(n), (P, 1))
        # Row-by-row partition: numpy's axis-1 argpartition goes through the
        # generic strided machinery and is measurably slower than P contiguous
        # row partitions — which are exactly the looped path's selections.
        return np.stack([np.argpartition(np.abs(C[p]), -k)[-k:] for p in range(P)])

    @classmethod
    def compress_batch(cls, compressors: Sequence["TopKCompressor"], G: np.ndarray
                       ) -> Tuple[List[np.ndarray], List[Dict]]:
        reference = compressors[0]
        if any(c.ratio != reference.ratio or c.error_feedback != reference.error_feedback
               for c in compressors):
            return super().compress_batch(compressors, G)

        G = np.asarray(G, dtype=np.float32)
        P, n = G.shape
        if reference.error_feedback:
            residuals = cls._stack_state(compressors, "_residual", P, n)
            corrected = residuals + G
        else:
            corrected = G

        selections = cls.select_batch(compressors, corrected)
        ragged = not isinstance(selections, np.ndarray)

        row_index = None if ragged else np.arange(P)[:, None]
        if reference.error_feedback:
            new_residuals = corrected.copy()
            if ragged:
                for p, indices in enumerate(selections):
                    new_residuals[p, indices] = 0.0
            else:
                # Direct fancy indexing: put_along_axis builds the same index
                # grid through several Python-level helpers per call.
                new_residuals[row_index, selections] = 0.0
            for p, compressor in enumerate(compressors):
                compressor._residual = new_residuals[p]

        if ragged:
            values = [corrected[p, indices] for p, indices in enumerate(selections)]
        else:
            values = corrected[row_index, selections]

        sparse_estimates = np.zeros((P, n), dtype=np.float32)
        if ragged:
            for p, indices in enumerate(selections):
                sparse_estimates[p, indices] = values[p]
        else:
            sparse_estimates[row_index, selections] = values

        payloads: List[np.ndarray] = []
        contexts: List[Dict] = []
        for p in range(P):
            payloads.append(cls.pack_payload(selections[p], values[p]))
            contexts.append({"n": n, "k": len(selections[p])})
        cls._record_batch(compressors, reference.wire_bits(n), corrected, sparse_estimates)
        return payloads, contexts

    # decompress_batch: inherited — reconstruction is rank-invariant, so the
    # base class computes one rank's gathered average and broadcasts it.

    # ------------------------------------------------------------------ #
    def wire_bits(self, n: int, world_size: int = 1) -> float:
        k = sparsity_k(n, self.ratio)
        bits = 32.0 * k
        if self.include_index_bits:
            bits += 32.0 * k
        return bits

    def computation_complexity(self, n: int) -> str:
        return "O(n + k log n)"
