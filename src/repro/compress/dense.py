"""Dense SGD: the default algorithm that exchanges full 32-bit gradients."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind


class DenseCompressor(Compressor):
    """No compression: each worker Allreduces its full gradient.

    Table 2: 32n bits of traffic per worker, O(1) local processing (there is
    nothing to compute before the exchange).
    """

    name = "dense"
    exchange = ExchangeKind.ALLREDUCE
    uses_error_feedback = False

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        self._record(32.0 * gradient.size, gradient, gradient)
        return gradient, {}

    def decompress(self, global_payload: np.ndarray, ctx: Dict) -> np.ndarray:
        return np.asarray(global_payload)

    def wire_bits(self, n: int, world_size: int = 1) -> float:
        return 32.0 * n

    def computation_complexity(self, n: int) -> str:
        return "O(1)"
