"""Dense SGD: the default algorithm that exchanges full 32-bit gradients."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind


class DenseCompressor(Compressor):
    """No compression: each worker Allreduces its full gradient.

    Table 2: 32n bits of traffic per worker, O(1) local processing (there is
    nothing to compute before the exchange).
    """

    name = "dense"
    exchange = ExchangeKind.ALLREDUCE
    uses_error_feedback = False

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        self._record(32.0 * gradient.size, gradient, gradient)
        return gradient, {}

    def decompress(self, global_payload: np.ndarray, ctx: Dict) -> np.ndarray:
        return np.asarray(global_payload)

    # ------------------------------------------------------------------ #
    supports_batch = True

    @classmethod
    def compress_batch(cls, compressors: Sequence["DenseCompressor"], G: np.ndarray
                       ) -> Tuple[List[np.ndarray], List[Dict]]:
        """Zero-copy: the payloads *are* the rows of the gradient matrix."""
        G = np.asarray(G, dtype=np.float32)
        wire = 32.0 * G.shape[1]
        for compressor in compressors:
            compressor.stats.record(wire, 0.0)      # g == transmitted, error 0
        return list(G), [{} for _ in compressors]

    @classmethod
    def decompress_batch(cls, compressors: Sequence["DenseCompressor"],
                         exchanged: Sequence, contexts: Sequence[Dict]) -> np.ndarray:
        return cls._stack_rows([np.asarray(e, dtype=np.float32) for e in exchanged])

    def wire_bits(self, n: int, world_size: int = 1) -> float:
        return 32.0 * n

    def computation_complexity(self, n: int) -> str:
        return "O(1)"
