"""TernGrad — ternary gradient quantization (Wen et al., 2017; extension baseline).

Each coordinate is quantized to ``s_t · {-1, 0, +1}`` where ``s_t = max|g|``
and the ternary value is drawn so the encoding is unbiased:
``P(b_i = 1) = |g_i| / s_t``.  The wire cost is roughly 2 bits per coordinate
plus one scalar for ``s_t``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind
from repro.utils.rng import new_rng


class TernGradCompressor(Compressor):
    """Unbiased ternary quantization with a shared per-tensor scale."""

    name = "terngrad"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = False
    #: decompress_gathered only reads the gathered payloads and n, so the
    #: batched path reconstructs once and broadcasts the row to every rank.
    gathered_rank_invariant = True

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 clip_std: Optional[float] = 2.5):
        super().__init__()
        self.rng = rng if rng is not None else new_rng("terngrad")
        #: Optional gradient clipping (in standard deviations) recommended by
        #: the TernGrad paper to bound the scale; ``None`` disables it.
        self.clip_std = clip_std

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient).astype(np.float64)
        work = gradient
        if self.clip_std is not None and gradient.size > 1:
            sigma = gradient.std()
            if sigma > 0:
                bound = self.clip_std * sigma
                work = np.clip(gradient, -bound, bound)
        scale = float(np.abs(work).max())
        if scale == 0.0:
            ternary = np.zeros(gradient.size, dtype=np.int8)
        else:
            probability = np.abs(work) / scale
            ternary = (np.sign(work) * (self.rng.random(gradient.size) < probability)
                       ).astype(np.int8)
        estimate = (ternary.astype(np.float64) * scale).astype(np.float32)
        payload = np.concatenate([[scale], ternary.astype(np.float64)])
        wire = self.wire_bits(gradient.size)
        self._record(wire, gradient, estimate)
        return payload, {"n": gradient.size}

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        n = int(ctx["n"])
        total = np.zeros(n, dtype=np.float64)
        for payload in payloads:
            payload = np.asarray(payload, dtype=np.float64)
            total += payload[0] * payload[1:]
        return (total / len(payloads)).astype(np.float32)

    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """Two bits per coordinate (three levels) plus one 32-bit scale."""
        return 2.0 * n + 32.0

    def computation_complexity(self, n: int) -> str:
        return "O(n)"
