"""Compressed parameter exchange: delta coding against a shared reference.

The gradient compressors (:mod:`repro.compress`) were built for Algorithm
1's gradient phase, but the decentralized synchronization strategies
(``local_sgd`` with H > 1, ``gossip``) put *parameter vectors* on the wire —
historically as full float32 payloads.  :class:`ParameterDeltaCodec` closes
that gap by reusing any registered compressor for the parameter phase, the
way decentralized compressed-SGD systems (CHOCO-SGD-style quantized gossip)
do:

* every rank keeps a **reference** — the publicly reconstructible estimate
  of its parameters as of the last synchronization.  The *first* exchange
  is a one-time dense bootstrap (full float32 parameters, priced as such)
  that establishes the references, exactly like a worker joining a real
  deployment receives a dense snapshot before switching to deltas;
  afterwards references advance only through information that travelled on
  the wire, so any receiver can maintain them;
* at a sync point, rank ``p`` compresses the **delta** ``params_p - ref_p``
  with its own compressor instance.  The compressor's error-feedback
  residual (Top-K / QSGD / A2SGD all keep one) carries whatever the lossy
  encoding dropped into the next sync, so compression error is fed back
  rather than lost;
* receivers reconstruct ``ref_p + decompress(delta_p)`` — the estimate of
  rank ``p``'s parameters — aggregate the estimates, and advance every
  reference to the estimate it just reconstructed.

With the per-rank error feedback the estimates track the true parameters:
nothing is permanently lost, only deferred to a later sync.  The usual
error-feedback caveat applies: the compressor must be *contractive*
(``||v - C(v)|| < ||v||``), or the residual recursion amplifies instead of
draining.  Top-K, A2SGD and the sparsifiers are contractive by
construction; QSGD's unbiased quantization is only contractive when
``levels >= sqrt(bucket_size)`` (its per-bucket error bound is
``min(n/s², √n/s) · ||v||``), so quantized-parameter runs should raise
``levels`` / shrink ``bucket_size`` from the gradient-phase defaults —
e.g. ``{"levels": 16, "bucket_size": 64}``.

The in-process
simulation keeps all references in one ``(P, n)`` matrix; a real deployment
would hold one reference per *tracked peer* (its neighbours on the gossip
graph), updated from the same public payloads.  Context dicts are likewise
shared in-process; compressors whose reconstruction needs rank-local
context (A2SGD's sign mask) would ship that context alongside the payload
on a real fabric — ``wire_bits`` reports the compressor's analytic figure
either way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.compress.base import (
    Compressor,
    ExchangeKind,
    compressor_state_arrays,
    restore_compressor_state,
)


class ParameterDeltaCodec:
    """Per-rank delta compression of parameter vectors against references.

    Parameters
    ----------
    compressors:
        One compressor instance per rank, dedicated to the parameter phase
        (never shared with the gradient-phase instances: error-feedback
        residuals are per stream).
    """

    def __init__(self, compressors: Sequence[Compressor]):
        if not compressors:
            raise ValueError("parameter codec needs at least one compressor")
        self.compressors: List[Compressor] = list(compressors)
        #: ``(P, n)`` matrix of per-rank references (estimate of each rank's
        #: parameters as of the last sync); lazily allocated at first use.
        self._references: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> str:
        """Registry name of the parameter-phase compression algorithm."""
        return self.compressors[0].name

    def wire_bits(self, n: int) -> float:
        """Analytic bits of one rank's compressed parameter-delta payload.

        The steady-state figure; the one-time dense bootstrap exchange
        costs ``32 n`` instead (see :meth:`encode`).
        """
        return self.compressors[0].wire_bits(n, len(self.compressors))

    @property
    def bootstrapped(self) -> bool:
        """Whether the one-time dense reference bootstrap has happened."""
        return self._references is not None

    # ------------------------------------------------------------------ #
    def encode(self, rows: Sequence[np.ndarray],
               ranks: Sequence[int] | None = None
               ) -> Tuple[List[np.ndarray], np.ndarray, float]:
        """Compress every participating rank's parameter vector as a delta.

        Returns ``(payloads, estimates, payload_bits)`` where ``payloads[i]``
        is what the ``i``-th participating rank puts on the wire,
        ``estimates[i] = ref + decompress(payloads[i])`` is the
        reconstruction every receiver of that payload obtains, and
        ``payload_bits`` is the analytic wire size of one payload.
        Compression runs through the compressor's batched kernels
        (``compress_batch``), bit-identical to the per-rank loop;
        error-feedback residuals update on the per-rank instances as usual.

        ``ranks`` restricts the exchange to a subset of ranks (a degraded
        membership): ``rows`` then holds one row per listed rank, only those
        ranks' compressors and references participate, and dead ranks'
        residuals/references stay frozen — a down worker does nothing.

        The very first exchange has no references to delta against, so it
        ships the **dense** parameter vectors (``payload_bits = 32 n``) and
        its estimates are exact — the bootstrap snapshot a worker joining a
        real deployment would receive.  References are NOT advanced here —
        call :meth:`advance` with the estimates once the exchange is done.
        """
        X = np.stack([np.asarray(row, dtype=np.float32) for row in rows])
        P, n = X.shape
        participants = list(range(len(self.compressors))) if ranks is None \
            else [int(r) for r in ranks]
        if P != len(participants):
            raise ValueError(f"expected {len(participants)} parameter rows, got {P}")
        if self._references is None:
            return list(X), X, 32.0 * n
        references = self._references[participants]
        compressors = [self.compressors[r] for r in participants]
        deltas = X - references
        batch = type(compressors[0])
        payloads, contexts = batch.compress_batch(compressors, deltas)
        estimates = references + self.decode_deltas(payloads, contexts,
                                                    ranks=participants)
        return payloads, estimates, self.wire_bits(n)

    def decode_deltas(self, payloads: Sequence[np.ndarray],
                      contexts: Sequence[Dict],
                      ranks: Sequence[int] | None = None) -> np.ndarray:
        """Reconstruct every participating rank's delta from its payload.

        One payload decodes exactly one rank's delta: allreduce-kind
        compressors decode their payload directly, allgather-kind ones go
        through ``decompress_gathered`` with a singleton list (the mean of
        one payload is the payload's own reconstruction).
        """
        compressors = self.compressors if ranks is None \
            else [self.compressors[r] for r in ranks]
        rows: List[np.ndarray] = []
        for compressor, payload, ctx in zip(compressors, payloads, contexts):
            if compressor.exchange is ExchangeKind.ALLREDUCE:
                row = compressor.decompress(payload, ctx)
            else:
                row = compressor.decompress_gathered([payload], ctx)
            rows.append(np.asarray(row, dtype=np.float32))
        return np.stack(rows)

    def advance(self, estimates: np.ndarray,
                ranks: Sequence[int] | None = None) -> None:
        """Advance participating references to the estimates reconstructed.

        Estimates are a deterministic function of the previous references
        and the public payloads, so senders and receivers stay in lockstep.
        With ``ranks``, only those rows move; a degraded world's first
        (bootstrap) exchange allocates the full matrix with zero rows for
        the absent ranks — they receive a dense re-sync at rejoin
        (:meth:`resync_rank`) before ever delta-coding again.
        """
        if ranks is None:
            self._references = np.array(estimates, dtype=np.float32, copy=True)
            return
        estimates = np.asarray(estimates, dtype=np.float32)
        if self._references is None:
            self._references = np.zeros(
                (len(self.compressors), estimates.shape[1]), dtype=np.float32)
        for i, rank in enumerate(ranks):
            self._references[int(rank)] = estimates[i]

    def resync_rank(self, rank: int, row: np.ndarray) -> None:
        """Dense re-sync of one rank's codec state (rejoin catch-up).

        The rejoining rank's parameters were just replaced wholesale, so its
        old reference and any error-feedback residual describe a vector that
        no longer exists: the reference snaps to the freshly served row (the
        dense payload is public, so receivers advance identically) and the
        rank's compressor state is cleared.
        """
        row = np.asarray(row, dtype=np.float32).reshape(-1)
        if self._references is not None:
            self._references[int(rank)] = row
        self.compressors[int(rank)].reset_state()

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Resume state: the reference matrix + per-rank compressor state."""
        state: Dict[str, np.ndarray] = {}
        if self._references is not None:
            state["references"] = self._references
        for rank, compressor in enumerate(self.compressors):
            for kind, value in compressor_state_arrays(compressor).items():
                state[f"{kind}_{rank}"] = value
        return state

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_arrays` (missing keys leave state as-is)."""
        if "references" in arrays:
            self._references = np.array(arrays["references"], dtype=np.float32,
                                        copy=True)
        for rank, compressor in enumerate(self.compressors):
            restore_compressor_state(compressor, {
                kind: arrays[f"{kind}_{rank}"]
                for kind in ("residual", "velocity")
                if f"{kind}_{rank}" in arrays})

    def reset(self) -> None:
        """Drop references and every compressor's persistent state."""
        self._references = None
        for compressor in self.compressors:
            compressor.reset_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        bound = "unbound" if self._references is None \
            else f"refs={self._references.shape}"
        return f"ParameterDeltaCodec({self.algorithm!r}, {bound})"
