"""Gaussian-K sparsification (Shi et al., 2019).

Gaussian-K avoids the cost of an explicit top-k selection by assuming the
gradient values follow a zero-mean Gaussian distribution: the threshold that
keeps approximately ``k`` of ``n`` coordinates is the ``(1 - k/n)`` quantile
of |N(µ, σ)|, which can be computed from the sample mean and standard
deviation in O(n).  Coordinates whose magnitude exceeds the threshold are
transmitted; the rest stay in the residual.

As in the paper's evaluation, the exchange uses Allgather — which is also why
Gaussian-K slightly outperforms the Allreduce-based A2SGD on iteration time
for the largest model in Figure 4 (see §4.4's discussion).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.compress.base import ExchangeKind, sparsity_k
from repro.compress.topk import TopKCompressor


class GaussianKCompressor(TopKCompressor):
    """Sparsification with a Gaussian-estimated magnitude threshold.

    Parameters
    ----------
    ratio:
        Target fraction of transmitted coordinates (paper: 0.001).
    error_feedback:
        Keep the untransmitted mass in a residual (as in Top-K).
    """

    name = "gaussiank"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True

    def estimate_threshold(self, corrected: np.ndarray) -> float:
        """Magnitude threshold keeping ≈ ``ratio`` of the coordinates.

        For a zero-centred Gaussian with standard deviation σ, the magnitude
        |g| exceeds ``σ · Φ⁻¹(1 − ratio/2)`` with probability ``ratio``.
        """
        sigma = float(corrected.std())
        if sigma == 0.0:
            return 0.0
        mean = float(corrected.mean())
        quantile = 1.0 - self.ratio / 2.0
        return abs(mean) + sigma * float(scipy_stats.norm.ppf(quantile))

    def select(self, corrected: np.ndarray) -> np.ndarray:
        """Indices whose magnitude exceeds the Gaussian-estimated threshold.

        Guarantees at least one coordinate is selected so progress never
        stalls, and caps the selection at 4× the target ``k`` so a badly
        mis-estimated threshold cannot silently blow up the traffic.
        """
        threshold = self.estimate_threshold(corrected)
        indices = np.nonzero(np.abs(corrected) > threshold)[0]
        k_target = sparsity_k(corrected.size, self.ratio)
        if indices.size == 0:
            indices = np.array([int(np.argmax(np.abs(corrected)))])
        elif indices.size > 4 * k_target:
            magnitudes = np.abs(corrected[indices])
            keep = np.argpartition(magnitudes, -4 * k_target)[-4 * k_target:]
            indices = indices[keep]
        return indices

    @classmethod
    def select_batch(cls, compressors, C):
        """Per-rank thresholds depend on each row's sample moments and can
        select different counts per rank, so selection stays a per-rank loop
        (returning a ragged list); the residual update, payload packing and
        gathered reconstruction still use the batched kernels."""
        return [compressor.select(row) for compressor, row in zip(compressors, C)]

    def computation_complexity(self, n: int) -> str:
        return "O(n)"
