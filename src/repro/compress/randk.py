"""Rand-K sparsification (extension baseline).

Rand-K transmits a uniformly random subset of ``k`` coordinates each
iteration.  Stich et al. (2018) show that with error feedback it converges at
the same asymptotic rate as Top-K; in practice it needs more iterations
because it ignores gradient magnitude.  The paper mentions Rand-K in related
work ([27]); it is included here as an extra baseline for ablation studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compress.base import ExchangeKind, sparsity_k
from repro.compress.topk import TopKCompressor
from repro.utils.rng import new_rng


class RandKCompressor(TopKCompressor):
    """Uniform-random k-coordinate sparsification with residual memory."""

    name = "randk"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True

    def __init__(self, ratio: float = 0.001, error_feedback: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(ratio=ratio, error_feedback=error_feedback)
        self.rng = rng if rng is not None else new_rng("randk", ratio)

    def select(self, corrected: np.ndarray) -> np.ndarray:
        k = sparsity_k(corrected.size, self.ratio)
        k = min(k, corrected.size)
        return self.rng.choice(corrected.size, size=k, replace=False)

    @classmethod
    def select_batch(cls, compressors, C):
        """Rank-local RNG streams force a per-rank draw loop (in rank order,
        so the draws are bit-identical to the looped path); everything else in
        the batched compress stays vectorized."""
        return [compressor.select(row) for compressor, row in zip(compressors, C)]

    def computation_complexity(self, n: int) -> str:
        return "O(k)"
