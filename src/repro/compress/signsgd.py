"""SignSGD / 1-bit SGD with error feedback (Seide et al., 2014; Karimireddy et al., 2019).

Each coordinate is reduced to its sign, scaled by the mean magnitude of the
(error-corrected) gradient so the update is on the right scale; the
quantization residual is kept locally and added to the next gradient
(the EF-signSGD fix that restores convergence).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind


class SignSGDCompressor(Compressor):
    """1-bit sign compression with mean-magnitude scaling and error feedback."""

    name = "signsgd"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True
    #: decompress_gathered only reads the gathered payloads and n, so the
    #: batched path reconstructs once and broadcasts the row to every rank.
    gathered_rank_invariant = True

    def __init__(self, error_feedback: bool = True):
        super().__init__()
        self.error_feedback = bool(error_feedback)
        self._residual: np.ndarray | None = None

    def reset_state(self) -> None:
        super().reset_state()
        self._residual = None

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        if self.error_feedback:
            if self._residual is None or self._residual.shape != gradient.shape:
                self._residual = np.zeros_like(gradient)
            corrected = self._residual + gradient
        else:
            corrected = gradient

        scale = float(np.abs(corrected).mean())
        signs = np.sign(corrected)
        estimate = (scale * signs).astype(gradient.dtype)
        if self.error_feedback:
            self._residual = corrected - estimate

        payload = np.concatenate([[scale], signs.astype(np.float64)])
        wire = self.wire_bits(gradient.size)
        self._record(wire, corrected, estimate)
        return payload, {"n": gradient.size}

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        n = int(ctx["n"])
        total = np.zeros(n, dtype=np.float64)
        for payload in payloads:
            payload = np.asarray(payload, dtype=np.float64)
            total += payload[0] * payload[1:]
        return (total / len(payloads)).astype(np.float32)

    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """One bit per coordinate plus one 32-bit scale."""
        return float(n) + 32.0

    def computation_complexity(self, n: int) -> str:
        return "O(n)"
