"""A2SGD — two-level gradient averaging (the paper's contribution).

Algorithm 1 of the paper, per worker ``p`` and iteration ``t``:

1. compute the local gradient ``g_t``;
2. split it by sign and take the two absolute means
   ``µ_+ = E[g_i | g_i ≥ 0]`` and ``µ_- = E[|g_i| | g_i < 0]``;
3. form ``enc(g) = pos(g)·µ_+ − neg(g)·µ_-`` and keep the *local error*
   ``ε_t = g_t − enc(g_t)`` on the worker;
4. Allreduce-average only the pair ``(µ_+, µ_-)`` — 64 bits per worker,
   independent of the model size, hence O(1) communication;
5. rebuild the update gradient ``ε_t + pos(g)·µ̄_+ − neg(g)·µ̄_-`` using the
   global means ``(µ̄_+, µ̄_-)`` and the retained error.

Because the error vector is added back after synchronization, the variance of
the reconstructed gradient matches dense SGD up to the difference between the
local and global means (the ``∇µ_t`` term of Theorem 1), which is what the
paper's convergence analysis bounds.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind


class A2SGDCompressor(Compressor):
    """Two-level gradient averaging with retained local errors.

    Parameters
    ----------
    error_feedback:
        If True (the paper's algorithm), the difference between the gradient
        and its two-mean encoding is retained locally and added back after
        the global exchange.  Setting False drops the error term; this is the
        ablation DESIGN.md calls out (it degrades convergence noticeably and
        shows why the paper keeps the local errors).
    two_means:
        If True (default), use separate positive/negative means as in the
        paper.  If False, use a single signed mean — the "over-simplified"
        variant §3 argues against; kept for the ablation benchmark.
    """

    name = "a2sgd"
    exchange = ExchangeKind.ALLREDUCE
    uses_error_feedback = True

    #: Bits exchanged per worker: two float32 means.
    WIRE_BITS = 64.0

    def __init__(self, error_feedback: bool = True, two_means: bool = True):
        super().__init__()
        self.error_feedback = bool(error_feedback)
        self.two_means = bool(two_means)

    # ------------------------------------------------------------------ #
    # static pieces of Algorithm 1 (exposed for tests / analysis)
    # ------------------------------------------------------------------ #
    @staticmethod
    def two_level_means(gradient: np.ndarray) -> Tuple[float, float]:
        """Absolute means of the non-negative and negative entries (µ_+, µ_-).

        Computed from three streaming reductions (sum, absolute sum, positive
        count) rather than boolean gather operations, so the cost is a few
        passes over the gradient with no temporary copies — this is the "no
        complex sampling or sorting" property §3 highlights.
        """
        gradient = np.asarray(gradient)
        total = float(gradient.sum(dtype=np.float64))
        absolute = float(np.abs(gradient).sum(dtype=np.float64))
        positive_count = int(np.count_nonzero(gradient >= 0))
        negative_count = gradient.size - positive_count
        positive_sum = (absolute + total) / 2.0
        negative_sum = (absolute - total) / 2.0
        mu_plus = positive_sum / positive_count if positive_count else 0.0
        mu_minus = negative_sum / negative_count if negative_count else 0.0
        # Guard against tiny negative values produced by floating-point
        # cancellation when one side is (nearly) empty.
        return max(0.0, mu_plus), max(0.0, mu_minus)

    @staticmethod
    def encode(gradient: np.ndarray, mu_plus: float, mu_minus: float) -> np.ndarray:
        """The paper's ``enc(v) = pos(v)·µ_+ − neg(v)·µ_-`` operator."""
        positive_mask = gradient >= 0
        return np.where(positive_mask, mu_plus, -mu_minus).astype(gradient.dtype)

    # ------------------------------------------------------------------ #
    # Compressor protocol
    # ------------------------------------------------------------------ #
    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        positive_mask = gradient >= 0

        if self.two_means:
            mu_plus, mu_minus = self.two_level_means(gradient)
            encoded = np.where(positive_mask, gradient.dtype.type(mu_plus),
                               gradient.dtype.type(-mu_minus))
            payload = np.array([mu_plus, mu_minus], dtype=np.float64)
        else:
            # Single-mean ablation: one signed mean replaces every entry.
            mu = float(gradient.mean())
            encoded = np.full_like(gradient, mu)
            payload = np.array([mu, 0.0], dtype=np.float64)

        error = gradient - encoded if self.error_feedback else np.zeros_like(gradient)
        ctx = {"positive_mask": positive_mask, "error": error}
        self._record(self.WIRE_BITS, gradient, encoded)
        return payload, ctx

    def decompress(self, global_payload: np.ndarray, ctx: Dict) -> np.ndarray:
        global_payload = np.asarray(global_payload, dtype=np.float64)
        if global_payload.shape != (2,):
            raise ValueError("A2SGD expects a global payload of exactly two means")
        positive_mask = ctx["positive_mask"]
        if self.two_means:
            reconstructed = np.where(positive_mask, global_payload[0], -global_payload[1])
        else:
            reconstructed = np.full(positive_mask.shape, global_payload[0])
        reconstructed = reconstructed.astype(ctx["error"].dtype)
        return ctx["error"] + reconstructed

    # ------------------------------------------------------------------ #
    # analytics (Table 2)
    # ------------------------------------------------------------------ #
    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """64 bits regardless of model size — the O(1) headline result."""
        return self.WIRE_BITS

    def computation_complexity(self, n: int) -> str:
        """One pass to compute two means and the error vector."""
        return "O(n)"
