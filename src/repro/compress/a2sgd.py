"""A2SGD — two-level gradient averaging (the paper's contribution).

Algorithm 1 of the paper, per worker ``p`` and iteration ``t``:

1. compute the local gradient ``g_t``;
2. split it by sign and take the two absolute means
   ``µ_+ = E[g_i | g_i ≥ 0]`` and ``µ_- = E[|g_i| | g_i < 0]``;
3. form ``enc(g) = pos(g)·µ_+ − neg(g)·µ_-`` and keep the *local error*
   ``ε_t = g_t − enc(g_t)`` on the worker;
4. Allreduce-average only the pair ``(µ_+, µ_-)`` — 64 bits per worker,
   independent of the model size, hence O(1) communication;
5. rebuild the update gradient ``ε_t + pos(g)·µ̄_+ − neg(g)·µ̄_-`` using the
   global means ``(µ̄_+, µ̄_-)`` and the retained error.

Because the error vector is added back after synchronization, the variance of
the reconstructed gradient matches dense SGD up to the difference between the
local and global means (the ``∇µ_t`` term of Theorem 1), which is what the
paper's convergence analysis bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind


class A2SGDCompressor(Compressor):
    """Two-level gradient averaging with retained local errors.

    Parameters
    ----------
    error_feedback:
        If True (the paper's algorithm), the difference between the gradient
        and its two-mean encoding is retained locally and added back after
        the global exchange.  Setting False drops the error term; this is the
        ablation DESIGN.md calls out (it degrades convergence noticeably and
        shows why the paper keeps the local errors).
    two_means:
        If True (default), use separate positive/negative means as in the
        paper.  If False, use a single signed mean — the "over-simplified"
        variant §3 argues against; kept for the ablation benchmark.
    """

    name = "a2sgd"
    exchange = ExchangeKind.ALLREDUCE
    uses_error_feedback = True

    #: Bits exchanged per worker: two float32 means.
    WIRE_BITS = 64.0

    def __init__(self, error_feedback: bool = True, two_means: bool = True):
        super().__init__()
        self.error_feedback = bool(error_feedback)
        self.two_means = bool(two_means)

    # ------------------------------------------------------------------ #
    # static pieces of Algorithm 1 (exposed for tests / analysis)
    # ------------------------------------------------------------------ #
    @staticmethod
    def two_level_means(gradient: np.ndarray,
                        positive_mask: Optional[np.ndarray] = None) -> Tuple[float, float]:
        """Absolute means of the non-negative and negative entries (µ_+, µ_-).

        Computed from the sign mask and two masked BLAS dots — no ``np.abs``
        temporary and no boolean gathers, which is the "no complex sampling or
        sorting" property §3 highlights.  ``compress`` passes its
        already-computed sign mask so the mask is built exactly once per
        gradient.  Each side is summed *directly* against its own 0/1 mask:
        deriving the negative sum as ``positive_sum - total`` looks cheaper
        but cancels catastrophically when one side dominates, inflating µ_-
        past ``max |g|``.
        """
        gradient = np.asarray(gradient)
        if positive_mask is None:
            positive_mask = gradient >= 0
        positive_sum = float(np.dot(gradient, positive_mask.astype(gradient.dtype)))
        negative_sum = -float(np.dot(gradient, (~positive_mask).astype(gradient.dtype)))
        positive_count = int(np.count_nonzero(positive_mask))
        negative_count = gradient.size - positive_count
        mu_plus = positive_sum / positive_count if positive_count else 0.0
        mu_minus = negative_sum / negative_count if negative_count else 0.0
        # Guard against tiny negative values from rounding when one side is
        # (nearly) empty.
        return max(0.0, mu_plus), max(0.0, mu_minus)

    @staticmethod
    def encode(gradient: np.ndarray, mu_plus: float, mu_minus: float) -> np.ndarray:
        """The paper's ``enc(v) = pos(v)·µ_+ − neg(v)·µ_-`` operator."""
        positive_mask = gradient >= 0
        return np.where(positive_mask, mu_plus, -mu_minus).astype(gradient.dtype)

    # ------------------------------------------------------------------ #
    # Compressor protocol
    # ------------------------------------------------------------------ #
    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        positive_mask = gradient >= 0

        if self.two_means:
            mu_plus, mu_minus = self.two_level_means(gradient, positive_mask)
            encoded = np.where(positive_mask, gradient.dtype.type(mu_plus),
                               gradient.dtype.type(-mu_minus))
            payload = np.array([mu_plus, mu_minus], dtype=np.float64)
        else:
            # Single-mean ablation: one signed mean replaces every entry.
            mu = float(gradient.mean())
            encoded = np.full_like(gradient, mu)
            payload = np.array([mu, 0.0], dtype=np.float64)

        error = gradient - encoded if self.error_feedback else np.zeros_like(gradient)
        ctx = {"positive_mask": positive_mask, "error": error}
        self._record(self.WIRE_BITS, gradient, encoded)
        return payload, ctx

    def decompress(self, global_payload: np.ndarray, ctx: Dict) -> np.ndarray:
        global_payload = np.asarray(global_payload, dtype=np.float64)
        if global_payload.shape != (2,):
            raise ValueError("A2SGD expects a global payload of exactly two means")
        positive_mask = ctx["positive_mask"]
        if self.two_means:
            reconstructed = np.where(positive_mask, global_payload[0], -global_payload[1])
        else:
            reconstructed = np.full(positive_mask.shape, global_payload[0])
        reconstructed = reconstructed.astype(ctx["error"].dtype)
        return ctx["error"] + reconstructed

    # ------------------------------------------------------------------ #
    # batched kernels: every rank in one set of axis reductions
    # ------------------------------------------------------------------ #
    supports_batch = True

    @classmethod
    def compress_batch(cls, compressors: Sequence["A2SGDCompressor"], G: np.ndarray
                       ) -> Tuple[List[np.ndarray], List[Dict]]:
        reference = compressors[0]
        if any(c.error_feedback != reference.error_feedback
               or c.two_means != reference.two_means for c in compressors):
            return super().compress_batch(compressors, G)

        G = np.asarray(G, dtype=np.float32)
        P, n = G.shape
        masks = G >= 0

        if reference.two_means:
            # Row-blocked kernel: each rank's row makes two passes through
            # the loops below with only row-sized temporaries, so the working
            # set per step is 2–3 rows — not the 4×(P, n) whole-matrix
            # casts/selects/subtractions this used before, which fell out of
            # L2 between passes on mid-sized models (lstm_ptb) and made the
            # batched exchange *slower* than the per-rank loop.  Every
            # arithmetic op and its order still match the looped path
            # (same masked BLAS dots as two_level_means, same scalar selects),
            # so payloads, contexts and stats stay bit-identical.
            positive_sums = np.empty(P)
            positive_counts = np.empty(P, dtype=np.int64)
            negative_sums = np.empty(P)
            for p in range(P):
                mask_f32 = masks[p].astype(np.float32)
                positive_sums[p] = float(np.dot(G[p], mask_f32))
                # 1 − mask is exactly the (~mask) cast for 0/1 values and
                # reuses the row buffer instead of allocating a bool inverse.
                np.subtract(np.float32(1.0), mask_f32, out=mask_f32)
                negative_sums[p] = -float(np.dot(G[p], mask_f32))
                positive_counts[p] = np.count_nonzero(masks[p])
            negative_counts = n - positive_counts
            mu_plus = np.maximum(0.0, np.where(
                positive_counts > 0, positive_sums / np.maximum(positive_counts, 1), 0.0))
            mu_minus = np.maximum(0.0, np.where(
                negative_counts > 0, negative_sums / np.maximum(negative_counts, 1), 0.0))
            means = np.stack([mu_plus, mu_minus], axis=1)           # (P, 2) float64
            if reference.error_feedback:
                # Fused select + subtract + stats: the encoding is selected
                # straight into the error matrix (row-wise scalar ``np.where``
                # — broadcast (P, 1) operands and masked ``where=`` ufuncs are
                # both far slower), subtracted from G in place while the row
                # is cache-hot, and the compression-error norm reads the
                # materialized residual instead of re-deriving ``G - encoded``
                # — no ``encoded`` temporary is ever allocated.
                errors = np.empty((P, n), dtype=np.float32)
                for p, compressor in enumerate(compressors):
                    errors[p] = np.where(masks[p], np.float32(mu_plus[p]),
                                         np.float32(-mu_minus[p]))
                    np.subtract(G[p], errors[p], out=errors[p])
                    denom = float(np.linalg.norm(G[p])) or 1.0
                    compressor.stats.record(
                        cls.WIRE_BITS, float(np.linalg.norm(errors[p])) / denom)
            else:
                # Ablation path (no retained error): the encoding itself is
                # the transmitted estimate the statistics need.
                encoded = np.empty((P, n), dtype=np.float32)
                for p in range(P):
                    encoded[p] = np.where(masks[p], np.float32(mu_plus[p]),
                                          np.float32(-mu_minus[p]))
                errors = np.zeros((P, n), dtype=np.float32)
                cls._record_batch(compressors, cls.WIRE_BITS, G, encoded)
        else:
            mu = G.mean(axis=1).astype(np.float64)
            encoded = np.broadcast_to(mu[:, None].astype(np.float32), (P, n))
            means = np.stack([mu, np.zeros(P)], axis=1)
            if reference.error_feedback:
                errors = G - encoded
            else:
                errors = np.zeros((P, n), dtype=np.float32)
            cls._record_batch(compressors, cls.WIRE_BITS, G, encoded)

        payloads: List[np.ndarray] = []
        contexts: List[Dict] = []
        # The stacked matrices — and the exact per-rank row views handed out
        # below — ride along in every context so decompress_batch can skip
        # _stack_rows' per-row pointer checks (a measurable slice of exchange
        # time at small n).  The per-rank keys stay authoritative: the fast
        # path verifies each context still holds the cached view objects, so
        # a caller that swaps in its own mask/error array falls back to the
        # general stacking path instead of being silently ignored.
        mask_rows = [masks[p] for p in range(P)]
        error_rows = [errors[p] for p in range(P)]
        stacked = (masks, errors, mask_rows, error_rows)
        for p, compressor in enumerate(compressors):
            payloads.append(means[p])
            contexts.append({"positive_mask": mask_rows[p], "error": error_rows[p],
                             "_stacked": stacked})
        return payloads, contexts

    @classmethod
    def decompress_batch(cls, compressors: Sequence["A2SGDCompressor"],
                         exchanged: Sequence, contexts: Sequence[Dict]) -> np.ndarray:
        reference = compressors[0]
        if any(c.two_means != reference.two_means for c in compressors):
            return super().decompress_batch(compressors, exchanged, contexts)
        global_means = np.stack([np.asarray(e, dtype=np.float64) for e in exchanged])
        if global_means.shape[1:] != (2,):
            raise ValueError("A2SGD expects a global payload of exactly two means")
        # Fast path: compress_batch cached its stacked mask/error matrices
        # and the per-rank row views in the contexts (one shared tuple).
        # Object-identity checks on every rank's entries confirm nothing was
        # swapped in since compression; otherwise fall back to _stack_rows —
        # which also covers contexts from the looped ``compress`` (still
        # zero-copy when rows alias one matrix).
        stacked = contexts[0].get("_stacked")
        if stacked is not None and stacked[0].shape[0] == len(contexts) \
                and all(ctx.get("_stacked") is stacked
                        and ctx.get("positive_mask") is stacked[2][p]
                        and ctx.get("error") is stacked[3][p]
                        for p, ctx in enumerate(contexts)):
            masks, errors = stacked[0], stacked[1]
        else:
            masks = cls._stack_rows([ctx["positive_mask"] for ctx in contexts])
            errors = cls._stack_rows([ctx["error"] for ctx in contexts])
        # float32 selection is bit-identical to the looped float64 select +
        # astype: the cast commutes with picking, and float32(-µ) == -float32(µ).
        means32 = global_means.astype(np.float32)
        reconstructed = np.empty(masks.shape, dtype=np.float32)
        if reference.two_means:
            # Row-wise scalar selects for the same reason as compress_batch;
            # the error is added while the freshly-selected row is cache-hot
            # (a whole-matrix ``+= errors`` would re-stream every row).
            for p in range(masks.shape[0]):
                reconstructed[p] = np.where(masks[p], means32[p, 0], -means32[p, 1])
                reconstructed[p] += errors[p]
        else:
            reconstructed[...] = means32[:, 0:1]
            reconstructed += errors
        return reconstructed

    # ------------------------------------------------------------------ #
    # analytics (Table 2)
    # ------------------------------------------------------------------ #
    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """64 bits regardless of model size — the O(1) headline result."""
        return self.WIRE_BITS

    def computation_complexity(self, n: int) -> str:
        """One pass to compute two means and the error vector."""
        return "O(n)"
