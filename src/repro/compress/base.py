"""Compressor interface shared by A2SGD and every baseline.

A compressor lives on one worker and participates in gradient
synchronization in three steps (mirroring §3.1 / Algorithm 1 of the paper):

1. ``compress(gradient)`` — turn the flat local gradient into the *wire
   payload* this worker contributes to the collective, plus a context dict
   holding whatever the worker must remember locally (sign masks, error
   vector, selected indices, ...).
2. The synchronizer exchanges the payloads: compressors declare whether they
   want an Allreduce (payloads averaged elementwise — Dense, A2SGD) or an
   Allgather (every worker receives every payload — Top-K, Gaussian-K, QSGD,
   whose payloads cannot be averaged on the wire).
3. ``decompress(global_payload, ctx)`` or ``decompress_gathered(payloads,
   ctx)`` — reconstruct the gradient this worker feeds to its optimizer.

Two analytic methods report the quantities in Table 2 of the paper:
``wire_bits(n)`` (communication traffic per worker per iteration) and
``computation_complexity(n)`` (asymptotic cost of the compression step).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class ExchangeKind(enum.Enum):
    """How a compressor's payloads are exchanged across workers."""

    ALLREDUCE = "allreduce"
    ALLGATHER = "allgather"


@dataclass
class CompressionStats:
    """Running statistics a compressor keeps about its own behaviour."""

    iterations: int = 0
    total_wire_bits: float = 0.0
    last_wire_bits: float = 0.0
    last_compression_error: float = 0.0

    def record(self, wire_bits: float, compression_error: float) -> None:
        self.iterations += 1
        self.total_wire_bits += float(wire_bits)
        self.last_wire_bits = float(wire_bits)
        self.last_compression_error = float(compression_error)


class Compressor:
    """Base class for gradient compressors.

    Subclasses must set :attr:`name` and :attr:`exchange`, and implement
    :meth:`compress`, one of the decompress methods, :meth:`wire_bits` and
    :meth:`computation_complexity`.
    """

    #: Registry / display name.
    name: str = "base"
    #: Which collective the synchronizer should run for this compressor.
    exchange: ExchangeKind = ExchangeKind.ALLREDUCE
    #: Whether the compressor keeps a persistent residual across iterations.
    uses_error_feedback: bool = False

    def __init__(self) -> None:
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # core protocol
    # ------------------------------------------------------------------ #
    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        """Compress a flat gradient into (wire payload, local context)."""
        raise NotImplementedError

    def decompress(self, global_payload: np.ndarray, ctx: Dict) -> np.ndarray:
        """Reconstruct the update gradient from an Allreduce result."""
        raise NotImplementedError

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        """Reconstruct the update gradient from Allgather results."""
        raise NotImplementedError

    def reset_state(self) -> None:
        """Clear any persistent state (error-feedback memory, statistics)."""
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # analytic properties (Table 2)
    # ------------------------------------------------------------------ #
    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """Bits this worker puts on the wire per iteration for an n-parameter model."""
        raise NotImplementedError

    def computation_complexity(self, n: int) -> str:
        """Asymptotic compression cost as reported in Table 2 (e.g. ``"O(n)"``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _flatten(gradient: np.ndarray) -> np.ndarray:
        gradient = np.asarray(gradient)
        if gradient.ndim != 1:
            raise ValueError("compressors operate on flat (1-D) gradient vectors")
        return gradient

    def _record(self, wire_bits: float, original: np.ndarray,
                transmitted_estimate: np.ndarray) -> None:
        """Track wire traffic and the relative compression error."""
        denom = float(np.linalg.norm(original)) or 1.0
        error = float(np.linalg.norm(original - transmitted_estimate)) / denom
        self.stats.record(wire_bits, error)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r}, exchange={self.exchange.value})"


def sparsity_k(n: int, ratio: float, minimum: int = 1) -> int:
    """Number of retained coordinates for a sparsification ratio.

    The paper uses "0.001d" (0.1 % of the parameters) for Top-K and
    Gaussian-K; this helper centralises the rounding so every sparsifier and
    the cost model agree on ``k``.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("sparsification ratio must be in (0, 1]")
    return max(minimum, int(round(ratio * n)))
