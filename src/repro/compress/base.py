"""Compressor interface shared by A2SGD and every baseline.

A compressor lives on one worker and participates in gradient
synchronization in three steps (mirroring §3.1 / Algorithm 1 of the paper):

1. ``compress(gradient)`` — turn the flat local gradient into the *wire
   payload* this worker contributes to the collective, plus a context dict
   holding whatever the worker must remember locally (sign masks, error
   vector, selected indices, ...).
2. The synchronizer exchanges the payloads: compressors declare whether they
   want an Allreduce (payloads averaged elementwise — Dense, A2SGD) or an
   Allgather (every worker receives every payload — Top-K, Gaussian-K, QSGD,
   whose payloads cannot be averaged on the wire).
3. ``decompress(global_payload, ctx)`` or ``decompress_gathered(payloads,
   ctx)`` — reconstruct the gradient this worker feeds to its optimizer.

Two analytic methods report the quantities in Table 2 of the paper:
``wire_bits(n)`` (communication traffic per worker per iteration) and
``computation_complexity(n)`` (asymptotic cost of the compression step).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class ExchangeKind(enum.Enum):
    """How a compressor's payloads are exchanged across workers."""

    ALLREDUCE = "allreduce"
    ALLGATHER = "allgather"


@dataclass
class CompressionStats:
    """Running statistics a compressor keeps about its own behaviour."""

    iterations: int = 0
    total_wire_bits: float = 0.0
    last_wire_bits: float = 0.0
    last_compression_error: float = 0.0

    def record(self, wire_bits: float, compression_error: float) -> None:
        self.iterations += 1
        self.total_wire_bits += float(wire_bits)
        self.last_wire_bits = float(wire_bits)
        self.last_compression_error = float(compression_error)


class Compressor:
    """Base class for gradient compressors.

    Subclasses must set :attr:`name` and :attr:`exchange`, and implement
    :meth:`compress`, one of the decompress methods, :meth:`wire_bits` and
    :meth:`computation_complexity`.
    """

    #: Registry / display name.
    name: str = "base"
    #: Which collective the synchronizer should run for this compressor.
    exchange: ExchangeKind = ExchangeKind.ALLREDUCE
    #: Whether the compressor keeps a persistent residual across iterations.
    uses_error_feedback: bool = False
    #: True when the class provides vectorized ``compress_batch`` /
    #: ``decompress_batch`` kernels over the stacked (world_size, n) gradient
    #: matrix.  False means the batch entry points fall back to the per-rank
    #: loop, so custom compressors work unchanged with the fused synchronizer.
    supports_batch: bool = False
    #: For Allgather compressors: True when ``decompress_gathered`` depends
    #: only on the gathered payloads and a rank-invariant context (the usual
    #: case — every rank reconstructs the same averaged gradient), letting
    #: ``decompress_batch`` compute one rank and broadcast the row.
    gathered_rank_invariant: bool = False

    def __init__(self) -> None:
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # core protocol
    # ------------------------------------------------------------------ #
    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        """Compress a flat gradient into (wire payload, local context)."""
        raise NotImplementedError

    def decompress(self, global_payload: np.ndarray, ctx: Dict) -> np.ndarray:
        """Reconstruct the update gradient from an Allreduce result."""
        raise NotImplementedError

    def decompress_gathered(self, payloads: Sequence[np.ndarray], ctx: Dict) -> np.ndarray:
        """Reconstruct the update gradient from Allgather results."""
        raise NotImplementedError

    def reset_state(self) -> None:
        """Clear any persistent state (error-feedback memory, statistics)."""
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # batched protocol (one call per iteration instead of one per rank)
    # ------------------------------------------------------------------ #
    @classmethod
    def compress_batch(cls, compressors: Sequence["Compressor"], G: np.ndarray
                       ) -> Tuple[List[np.ndarray], List[Dict]]:
        """Compress the stacked ``(world_size, n)`` gradient matrix.

        Row ``p`` of ``G`` is rank ``p``'s flat gradient and ``compressors[p]``
        is that rank's instance (per-rank error-feedback state lives on the
        instances exactly as in the looped path).  Returns the per-rank
        payloads and contexts, bit-identical to calling ``compress`` rank by
        rank.  This default *is* that loop; subclasses with
        ``supports_batch = True`` override it with vectorized kernels.
        """
        payloads: List[np.ndarray] = []
        contexts: List[Dict] = []
        for compressor, row in zip(compressors, np.asarray(G)):
            payload, ctx = compressor.compress(row)
            payloads.append(payload)
            contexts.append(ctx)
        return payloads, contexts

    @classmethod
    def decompress_batch(cls, compressors: Sequence["Compressor"],
                         exchanged: Sequence, contexts: Sequence[Dict]) -> np.ndarray:
        """Reconstruct every rank's update as one ``(world_size, n)`` matrix.

        ``exchanged[p]`` is rank ``p``'s collective result (the reduced
        payload for Allreduce, the payload list for Allgather).  Rows are
        bit-identical to the per-rank ``decompress``/``decompress_gathered``
        loop.  When ``gathered_rank_invariant`` is set the Allgather
        reconstruction is computed once and broadcast, turning the seed's
        O(P²·n) reconstruction into O(P·n); the returned matrix may then be a
        read-only broadcast view.
        """
        if cls.exchange is ExchangeKind.ALLGATHER:
            if cls.gathered_rank_invariant:
                row = np.asarray(compressors[0].decompress_gathered(
                    exchanged[0], contexts[0]), dtype=np.float32)
                return np.broadcast_to(row, (len(compressors), row.size))
            rows = [np.asarray(c.decompress_gathered(e, ctx), dtype=np.float32)
                    for c, e, ctx in zip(compressors, exchanged, contexts)]
        else:
            rows = [np.asarray(c.decompress(e, ctx), dtype=np.float32)
                    for c, e, ctx in zip(compressors, exchanged, contexts)]
        return np.stack(rows)

    @staticmethod
    def _stack_rows(rows: Sequence[np.ndarray]) -> np.ndarray:
        """Stack per-rank vectors into a matrix, zero-copy when the rows are
        already consecutive rows of one shared matrix (the common case after a
        batched compress)."""
        first = rows[0]
        base = first.base if isinstance(first, np.ndarray) else None
        if (base is not None and base.ndim == 2 and base.shape[0] == len(rows)
                and all(isinstance(r, np.ndarray) and r.base is base
                        and r.shape == base.shape[1:]
                        and r.ctypes.data == base.ctypes.data + p * base.strides[0]
                        for p, r in enumerate(rows))):
            return base
        return np.stack(rows)

    @staticmethod
    def _stack_state(compressors: Sequence["Compressor"], attr: str, P: int, n: int,
                     dtype=np.float32) -> np.ndarray:
        """Gather a per-rank state vector (e.g. ``_residual``) into ``(P, n)``.

        Zero rows stand in for missing/mismatched state, mirroring the lazy
        initialization of the looped path.  When every rank's state is already
        a row view of one shared ``(P, n)`` matrix — which is how the batched
        kernels write state back — that matrix is returned without copying.
        """
        rows = [getattr(c, attr, None) for c in compressors]
        base = rows[0].base if isinstance(rows[0], np.ndarray) else None
        if (base is not None and base.shape == (P, n) and base.dtype == np.dtype(dtype)
                and all(isinstance(r, np.ndarray) and r.base is base
                        and r.shape == (n,)
                        and r.ctypes.data == base.ctypes.data + p * base.strides[0]
                        for p, r in enumerate(rows))):
            return base
        M = np.zeros((P, n), dtype=dtype)
        for p, r in enumerate(rows):
            if isinstance(r, np.ndarray) and r.shape == (n,):
                M[p] = r
        return M

    def contraction_problem(self) -> Optional[str]:
        """Why this configuration is not provably contractive, or None.

        Error-feedback recursions (and the parameter-delta codec built on
        them, see :mod:`repro.compress.param_delta`) require a *contractive*
        compressor — ``E‖v − C(v)‖² ≤ (1 − δ)‖v‖²`` with ``δ > 0`` — or the
        residual amplifies instead of draining.  The sparsifiers are
        contractive by construction, so the base returns None; quantizers
        whose error bound can exceed the input norm override this with the
        configured-instance check.
        """
        return None

    # ------------------------------------------------------------------ #
    # analytic properties (Table 2)
    # ------------------------------------------------------------------ #
    def wire_bits(self, n: int, world_size: int = 1) -> float:
        """Bits this worker puts on the wire per iteration for an n-parameter model."""
        raise NotImplementedError

    def computation_complexity(self, n: int) -> str:
        """Asymptotic compression cost as reported in Table 2 (e.g. ``"O(n)"``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _flatten(gradient: np.ndarray) -> np.ndarray:
        gradient = np.asarray(gradient)
        if gradient.ndim != 1:
            raise ValueError("compressors operate on flat (1-D) gradient vectors")
        return gradient

    def _record(self, wire_bits: float, original: np.ndarray,
                transmitted_estimate: np.ndarray) -> None:
        """Track wire traffic and the relative compression error."""
        denom = float(np.linalg.norm(original)) or 1.0
        error = float(np.linalg.norm(original - transmitted_estimate)) / denom
        self.stats.record(wire_bits, error)

    @staticmethod
    def _record_batch(compressors: Sequence["Compressor"], wire_bits: float,
                      originals: np.ndarray, transmitted: np.ndarray) -> None:
        """Per-rank statistics for a batched compress.

        Row-wise BLAS norms, exactly as the looped ``_record`` computes them —
        bit-identical stats, and faster than the float64 matrix ``einsum``
        reductions this used before (those upcast every element and turned the
        stats pass into a measurable fraction of ``exchange_ms`` on larger
        models).
        """
        for compressor, original, estimate in zip(compressors, originals, transmitted):
            denom = float(np.linalg.norm(original)) or 1.0
            error = float(np.linalg.norm(original - estimate)) / denom
            compressor.stats.record(wire_bits, error)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r}, exchange={self.exchange.value})"


def compressor_state_arrays(compressor: Compressor) -> Dict[str, np.ndarray]:
    """The compressor's persistent per-rank state (error-feedback residual,
    DGC velocity), keyed by kind — the single source of truth for
    checkpointing, shared by the trainer checkpoint and the parameter-delta
    codec."""
    state: Dict[str, np.ndarray] = {}
    for kind in ("residual", "velocity"):
        value = getattr(compressor, f"_{kind}", None)
        if value is not None:
            state[kind] = value
    return state


def restore_compressor_state(compressor: Compressor,
                             state: Dict[str, np.ndarray]) -> None:
    """Inverse of :func:`compressor_state_arrays` (missing kinds are left
    as-is).  Writes in place when shape/dtype match so state that aliases a
    shared ``(P, n)`` matrix (rows written by the batched kernels) keeps its
    zero-copy home."""
    for kind in ("residual", "velocity"):
        if kind not in state:
            continue
        attr = f"_{kind}"
        current = getattr(compressor, attr, None)
        value = state[kind]
        if (isinstance(current, np.ndarray) and current.shape == value.shape
                and current.dtype == value.dtype):
            current[...] = value
        else:
            setattr(compressor, attr, np.array(value, copy=True))


def sparsity_k(n: int, ratio: float, minimum: int = 1) -> int:
    """Number of retained coordinates for a sparsification ratio.

    The paper uses "0.001d" (0.1 % of the parameters) for Top-K and
    Gaussian-K; this helper centralises the rounding so every sparsifier and
    the cost model agree on ``k``.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("sparsification ratio must be in (0, 1]")
    return max(minimum, int(round(ratio * n)))
