"""Deep Gradient Compression (Lin et al., 2018) — extension baseline.

The paper's related work ([37]) discusses DGC as the high-sparsity state of
the art.  DGC extends Top-K sparsification with three tricks that let it push
sparsity to 99.9 % without losing accuracy:

* **momentum correction** — the residual accumulates a momentum-weighted
  velocity rather than the raw gradient, so delayed coordinates still receive
  their momentum when they are finally transmitted;
* **momentum factor masking** — when a coordinate is transmitted, its velocity
  *and* residual are cleared, preventing stale momentum from being applied
  twice;
* **gradient clipping** — the local gradient is clipped to a multiple of its
  own L2 norm before accumulation to bound the residual.

Included as an extension so ablation studies can compare A2SGD against a
stronger sparsifier than plain Top-K; it is not part of the paper's evaluated
baseline set.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.compress.base import Compressor, ExchangeKind, sparsity_k
from repro.compress.topk import TopKCompressor


class DGCCompressor(TopKCompressor):
    """Top-K sparsification with momentum correction and factor masking.

    Parameters
    ----------
    ratio:
        Fraction of coordinates transmitted per iteration.
    momentum:
        Momentum coefficient used for the local velocity accumulation.
    clip_norm_factor:
        Gradients are clipped to ``clip_norm_factor * ||g||_2 / sqrt(n)`` per
        coordinate before accumulation; ``None`` disables clipping.
    clip_dtype:
        Dtype of the clip threshold, which numpy promotion then propagates to
        the clipped gradient and the velocity/residual state.  The historical
        ``float64`` default doubles the state memory and runs the momentum
        arithmetic in double precision; ``float32`` keeps the whole pipeline
        in single precision at the cost of one rounding of the threshold.
    """

    name = "dgc"
    exchange = ExchangeKind.ALLGATHER
    uses_error_feedback = True

    def __init__(self, ratio: float = 0.001, momentum: float = 0.9,
                 clip_norm_factor: float | None = 1.0,
                 clip_dtype: str | np.dtype = "float64"):
        super().__init__(ratio=ratio, error_feedback=True)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.clip_norm_factor = clip_norm_factor
        self.clip_dtype = np.dtype(clip_dtype)
        if self.clip_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("clip_dtype must be float32 or float64, "
                             f"got {clip_dtype!r}")
        self._velocity: np.ndarray | None = None

    def reset_state(self) -> None:
        super().reset_state()
        self._velocity = None

    def _clip(self, gradient: np.ndarray) -> np.ndarray:
        if self.clip_norm_factor is None:
            return gradient
        norm = float(np.linalg.norm(gradient))
        if norm == 0.0:
            return gradient
        threshold = self.clip_dtype.type(
            self.clip_norm_factor * norm / np.sqrt(gradient.size))
        return np.clip(gradient, -threshold, threshold)

    def compress(self, gradient: np.ndarray) -> Tuple[np.ndarray, Dict]:
        gradient = self._flatten(gradient)
        clipped = self._clip(gradient)

        if self._velocity is None or self._velocity.shape != gradient.shape:
            self._velocity = np.zeros_like(gradient)
        if self._residual is None or self._residual.shape != gradient.shape:
            self._residual = np.zeros_like(gradient)

        # Momentum correction: accumulate velocity locally, then accumulate the
        # velocity (not the raw gradient) into the residual.
        self._velocity = self.momentum * self._velocity + clipped
        self._residual = self._residual + self._velocity

        indices = self.select(self._residual)
        values = self._residual[indices]

        # Momentum factor masking: clear both accumulators on the transmitted
        # coordinates so their momentum is not applied twice.
        self._residual[indices] = 0.0
        self._velocity[indices] = 0.0

        payload = self.pack_payload(indices, values)
        sparse_estimate = np.zeros_like(gradient)
        sparse_estimate[indices] = values
        wire = self.wire_bits(gradient.size)
        self._record(wire, gradient, sparse_estimate)
        return payload, {"n": gradient.size, "k": len(indices)}

    # ------------------------------------------------------------------ #
    @classmethod
    def compress_batch(cls, compressors, G):
        """Batched DGC: momentum correction, masking and selection over the
        stacked ``(P, n)`` matrix.

        The per-rank clipping norms are computed with the same
        ``np.linalg.norm`` call as the looped path (a P-element Python loop)
        so the clipped gradients — and therefore every downstream value — are
        bit-identical to compressing rank by rank.
        """
        reference = compressors[0]
        if any(c.ratio != reference.ratio or c.momentum != reference.momentum
               or c.clip_norm_factor != reference.clip_norm_factor
               or c.clip_dtype != reference.clip_dtype
               for c in compressors):
            return Compressor.compress_batch(compressors, G)

        G = np.asarray(G, dtype=np.float32)
        P, n = G.shape
        if reference.clip_norm_factor is None:
            clipped = G
            state_dtype = np.float32
        else:
            # Same per-rank norm + scalar clip as the looped _clip.  The
            # clip_dtype threshold scalar propagates its dtype to the clipped
            # gradient (and hence the velocity/residual state), exactly as the
            # looped path does; a rank with a zero-norm gradient keeps float32
            # there, so that degenerate mix falls back to the loop.
            if any(float(np.linalg.norm(G[p])) == 0.0 for p in range(P)):
                return Compressor.compress_batch(compressors, G)
            clipped = np.stack([reference._clip(G[p]) for p in range(P)])
            state_dtype = clipped.dtype

        velocities = cls._stack_state(compressors, "_velocity", P, n, dtype=state_dtype)
        residuals = cls._stack_state(compressors, "_residual", P, n, dtype=state_dtype)
        velocities = reference.momentum * velocities + clipped
        residuals = residuals + velocities

        selections = cls.select_batch(compressors, residuals)
        ragged = not isinstance(selections, np.ndarray)
        if ragged:
            values = [residuals[p, idx] for p, idx in enumerate(selections)]
            for p, idx in enumerate(selections):
                residuals[p, idx] = 0.0
                velocities[p, idx] = 0.0
        else:
            values = np.take_along_axis(residuals, selections, axis=1)
            np.put_along_axis(residuals, selections, 0.0, axis=1)
            np.put_along_axis(velocities, selections, 0.0, axis=1)
        for p, compressor in enumerate(compressors):
            compressor._residual = residuals[p]
            compressor._velocity = velocities[p]

        sparse_estimates = np.zeros((P, n), dtype=np.float32)
        if ragged:
            for p, indices in enumerate(selections):
                sparse_estimates[p, indices] = values[p]
        else:
            np.put_along_axis(sparse_estimates, selections,
                              np.asarray(values, dtype=np.float32), axis=1)

        payloads, contexts = [], []
        for p in range(P):
            payloads.append(cls.pack_payload(selections[p], values[p]))
            contexts.append({"n": n, "k": len(selections[p])})
        cls._record_batch(compressors, reference.wire_bits(n), G, sparse_estimates)
        return payloads, contexts

    def computation_complexity(self, n: int) -> str:
        return "O(n + k log n)"
