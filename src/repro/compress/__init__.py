"""Gradient compression algorithms.

The paper's contribution (:class:`A2SGDCompressor`) and the baselines its
evaluation compares against:

* :class:`DenseCompressor` — default distributed SGD, full 32-bit gradients;
* :class:`TopKCompressor` — magnitude-based sparsification (Stich et al.);
* :class:`GaussianKCompressor` — Gaussian-threshold sparsification (Shi et al.);
* :class:`QSGDCompressor` — multi-level stochastic quantization (Alistarh et al.);

plus three extensions mentioned in the paper's related work that are useful
for ablations: :class:`RandKCompressor`, :class:`TernGradCompressor` and
:class:`SignSGDCompressor`.

All compressors share the :class:`Compressor` interface: ``compress`` turns a
flat local gradient into a wire payload plus per-iteration context,
``decompress``/``decompress_gathered`` turns the globally exchanged payload
back into the gradient used for the model update, and the analytic methods
``wire_bits``/``computation_complexity`` report the Table 2 quantities.
"""

from repro.compress.base import CompressionStats, Compressor, ExchangeKind
from repro.compress.param_delta import ParameterDeltaCodec
from repro.compress.dense import DenseCompressor
from repro.compress.a2sgd import A2SGDCompressor
from repro.compress.topk import TopKCompressor
from repro.compress.gaussiank import GaussianKCompressor
from repro.compress.qsgd import QSGDCompressor
from repro.compress.randk import RandKCompressor
from repro.compress.terngrad import TernGradCompressor
from repro.compress.signsgd import SignSGDCompressor
from repro.compress.dgc import DGCCompressor
from repro.compress.registry import COMPRESSOR_REGISTRY, get_compressor, list_compressors

__all__ = [
    "Compressor",
    "ExchangeKind",
    "CompressionStats",
    "ParameterDeltaCodec",
    "DenseCompressor",
    "A2SGDCompressor",
    "TopKCompressor",
    "GaussianKCompressor",
    "QSGDCompressor",
    "RandKCompressor",
    "TernGradCompressor",
    "SignSGDCompressor",
    "DGCCompressor",
    "COMPRESSOR_REGISTRY",
    "get_compressor",
    "list_compressors",
]
