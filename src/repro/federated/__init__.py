"""Federated client population layer: logical clients over physical slots.

Separates a logical population of ``N`` clients from the ``K == P``
physically materialized replica slots:

* :mod:`repro.federated.sampler` — registry-backed per-round cohort
  samplers (``full``, ``uniform_without_replacement``), seeded and
  world-size independent;
* :mod:`repro.federated.config` — the declarative :class:`ClientSpec`
  carried by experiment specs under the ``clients`` key;
* :mod:`repro.federated.population` — :class:`ClientPopulation`, which
  swaps per-client persistent state (optimizer momentum, error-feedback
  residuals, codec references) in and out of the slot-indexed flat
  buffers at round boundaries.

Per-client non-IID sharding lives in :mod:`repro.data.partition`; the
``fedavg`` strategy in :mod:`repro.sync.strategies`; the two-level
``hierarchical`` topology in :mod:`repro.comm.topology`.
"""

from repro.federated.config import ClientSpec
from repro.federated.population import (
    ClientPopulation,
    ClientStateStore,
    SlotAssignment,
)
from repro.federated.sampler import (
    CLIENT_SAMPLERS,
    ClientSampler,
    FullParticipationSampler,
    UniformWithoutReplacementSampler,
)

__all__ = [
    "CLIENT_SAMPLERS",
    "ClientPopulation",
    "ClientSampler",
    "ClientSpec",
    "ClientStateStore",
    "FullParticipationSampler",
    "SlotAssignment",
    "UniformWithoutReplacementSampler",
]
