"""The client population: logical clients mapped lazily onto replica slots.

The flat-buffer core only ever materializes ``(K, n)`` state — parameter
rows, the optimizer's velocity matrix, error-feedback residuals and
``ParameterDeltaCodec`` references are all slot-indexed.  The
:class:`ClientPopulation` layers a logical population of ``N`` clients on
top: each round a :class:`~repro.federated.sampler.ClientSampler` picks a
cohort of ``K`` clients, and a :class:`SlotAssignment` binds each cohort
client to one slot.  At a round boundary the previous cohort's per-client
persistent state is swapped out of the slot arrays into a lazy
:class:`ClientStateStore` (clients that never participated cost nothing)
and the new cohort's state is swapped in, with every slot's parameter row
reset to the post-averaging global model.

Rounds align with the fedavg sync period ``H``: a boundary falls at every
iteration where ``global_iteration % H == 0``, i.e. immediately after the
previous round's parameter averaging, when all alive slot rows are bitwise
identical — so "the global model" is simply slot 0's row.  Under the
``full`` sampler the cohort never changes and every boundary is a no-op,
which keeps fedavg bit-identical to ``local_sgd`` by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compress.base import compressor_state_arrays, restore_compressor_state
from repro.federated.config import ClientSpec
from repro.federated.sampler import CLIENT_SAMPLERS
from repro.utils.rng import new_rng

#: Cap on the recorded cohort history (property tests read it; simulated
#: runs are a few hundred rounds, this only guards pathological loops).
_HISTORY_LIMIT = 10_000


class SlotAssignment:
    """One round's binding of cohort clients onto replica slots.

    Slot ``s`` hosts client ``clients[s]``; cohorts are sorted client-id
    tuples, so the ``full`` sampler's assignment is always the identity.
    """

    def __init__(self, clients: Sequence[int]):
        self.clients: Tuple[int, ...] = tuple(int(c) for c in clients)
        self.slot_of: Dict[int, int] = {c: s for s, c in enumerate(self.clients)}

    def __len__(self) -> int:
        return len(self.clients)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SlotAssignment({list(self.clients)})"


class ClientStateStore:
    """Lazy parking lot for swapped-out per-client slot state.

    Holds one entry per client that has been swapped out at least once —
    a velocity vector, gradient-compressor state, and codec reference /
    codec-compressor state.  Clients that never participated have no entry,
    so memory scales with participation, never with ``N``.
    """

    _FIELDS = ("velocity", "compressor", "codec_reference", "codec_compressor")

    def __init__(self):
        self._entries: Dict[int, Dict[str, object]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, client: int) -> bool:
        return int(client) in self._entries

    def clients(self) -> List[int]:
        return sorted(self._entries)

    def put(self, client: int, *, velocity: np.ndarray,
            compressor: Dict[str, np.ndarray],
            codec_reference: Optional[np.ndarray],
            codec_compressor: Optional[Dict[str, np.ndarray]]) -> None:
        self._entries[int(client)] = {
            "velocity": velocity,
            "compressor": compressor,
            "codec_reference": codec_reference,
            "codec_compressor": codec_compressor,
        }

    def pop(self, client: int) -> Optional[Dict[str, object]]:
        return self._entries.pop(int(client), None)

    def get(self, client: int) -> Optional[Dict[str, object]]:
        return self._entries.get(int(client))

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {}
        for client, entry in self._entries.items():
            prefix = f"store_{client}_"
            arrays[prefix + "velocity"] = entry["velocity"]
            for kind, value in (entry["compressor"] or {}).items():
                arrays[prefix + f"comp_{kind}"] = value
            if entry["codec_reference"] is not None:
                arrays[prefix + "codecref"] = entry["codec_reference"]
            for kind, value in (entry["codec_compressor"] or {}).items():
                arrays[prefix + f"codeccomp_{kind}"] = value
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self._entries.clear()
        grouped: Dict[int, Dict[str, np.ndarray]] = {}
        for name, value in arrays.items():
            if not name.startswith("store_"):
                continue
            client_str, _, field = name[len("store_"):].partition("_")
            grouped.setdefault(int(client_str), {})[field] = np.array(value,
                                                                      copy=True)
        for client, fields in grouped.items():
            self.put(
                client,
                velocity=fields["velocity"],
                compressor={kind: fields[f"comp_{kind}"]
                            for kind in ("residual", "velocity")
                            if f"comp_{kind}" in fields},
                codec_reference=fields.get("codecref"),
                codec_compressor={kind: fields[f"codeccomp_{kind}"]
                                  for kind in ("residual", "velocity")
                                  if f"codeccomp_{kind}" in fields},
            )


class ClientPopulation:
    """Round-scoped orchestration of sampling, slot swapping and data.

    Built by the trainer when the spec carries an enabled ``clients``
    section; the trainer calls :meth:`begin_round` at the top of every
    iteration (it no-ops away from round boundaries) and
    :meth:`draw_batches` to pull the cohort's mini-batches.
    """

    def __init__(self, spec: ClientSpec, world_size: int):
        self.spec = spec
        self.num_clients = int(spec.num_clients)
        self.world_size = int(world_size)
        self.cohort_size = int(spec.cohort_size) if spec.cohort_size is not None \
            else self.world_size
        self.sampler_name = CLIENT_SAMPLERS.canonical(str(spec.sampler))
        self.sampler = CLIENT_SAMPLERS.create(self.sampler_name)
        self.sampler_seed = int(spec.sampler_seed)
        self.round_index = 0
        self.rounds_completed = 0
        self.assignment: Optional[SlotAssignment] = None
        self.store = ClientStateStore()
        self.cohort_history: List[Tuple[int, ...]] = []
        self._seen = np.zeros(self.num_clients, dtype=bool)
        # bound by the trainer's data setup (sampled-cohort mode only)
        self.shards: Optional[List[object]] = None
        self.batch_size: Optional[int] = None
        self._data_seed = 0

    @property
    def identity_assignment(self) -> bool:
        """True when slots and clients are permanently one and the same.

        The ``full`` sampler with ``N == P`` always assigns client ``c`` to
        slot ``c``; the trainer then keeps its default per-rank loaders and
        every swap is a no-op (the fedavg ≡ local_sgd bit-identity path).
        """
        return self.sampler.full_participation \
            and self.num_clients == self.world_size

    # ------------------------------------------------------------------ #
    # round lifecycle
    # ------------------------------------------------------------------ #
    def begin_round(self, trainer) -> None:
        """Advance to a new round when the iteration sits on a boundary.

        Must run *before* the iteration's gradients: boundaries fall right
        after the previous round's parameter averaging, so all alive slot
        rows are bitwise identical and slot 0's row is the global model.
        """
        period = int(getattr(trainer.sync_strategy, "period", 1) or 1)
        if trainer._global_iteration % max(1, period) != 0:
            return
        round_index = trainer._global_iteration // max(1, period)
        cohort = self.sampler.sample(round_index, self.num_clients,
                                     self.cohort_size, self.sampler_seed)
        self.round_index = round_index
        self.rounds_completed += 1
        if len(self.cohort_history) < _HISTORY_LIMIT:
            self.cohort_history.append(cohort)
        previous = self.assignment
        if previous is None or cohort == previous.clients:
            # Round 0 slots already hold fresh-client state (zero velocity,
            # reset compressors, init params); identical cohorts keep their
            # slots — both are exact no-ops, preserving bit-identity.
            self.assignment = SlotAssignment(cohort)
            self._seen[list(cohort)] = True
            return
        self._swap(trainer, previous, cohort)
        self.assignment = SlotAssignment(cohort)
        self._seen[list(cohort)] = True

    def _swap(self, trainer, previous: SlotAssignment,
              cohort: Tuple[int, ...]) -> None:
        flat = trainer.flat_world
        if flat is None:
            raise RuntimeError("cohort swapping requires the fused "
                               "flat-buffer pipeline")
        params = flat.param_matrix
        velocity = trainer._velocity_matrix
        codec = getattr(trainer.sync_strategy, "parameter_codec", None)
        global_model = params[0].copy()

        for slot, client in enumerate(previous.clients):
            codec_ref = None
            codec_comp = None
            if codec is not None:
                if codec.bootstrapped:
                    codec_ref = codec._references[slot].copy()
                codec_comp = compressor_state_arrays(codec.compressors[slot])
            self.store.put(
                client,
                velocity=velocity[slot].copy(),
                compressor=compressor_state_arrays(trainer.compressors[slot]),
                codec_reference=codec_ref,
                codec_compressor=codec_comp)

        for slot, client in enumerate(cohort):
            params[slot, :] = global_model
            entry = self.store.pop(client)
            trainer.compressors[slot].reset_state()
            if codec is not None:
                codec.resync_rank(slot, global_model)
            if entry is None:
                velocity[slot, :] = 0.0
                continue
            velocity[slot, :] = entry["velocity"]
            restore_compressor_state(trainer.compressors[slot],
                                     entry["compressor"] or {})
            if codec is not None:
                if entry["codec_compressor"]:
                    restore_compressor_state(codec.compressors[slot],
                                             entry["codec_compressor"])
                if entry["codec_reference"] is not None and codec.bootstrapped:
                    codec._references[slot] = entry["codec_reference"]

    # ------------------------------------------------------------------ #
    # data
    # ------------------------------------------------------------------ #
    def bind_data(self, shards: Sequence[object], batch_size: int,
                  seed: int) -> None:
        """Attach the per-client shards (sampled-cohort mode).

        Batches are then drawn statelessly per ``(client, iteration)``, so
        resume needs no replay and a client's stream never depends on how
        often other clients were sampled.
        """
        if len(shards) != self.num_clients:
            raise ValueError(f"expected {self.num_clients} client shards, "
                             f"got {len(shards)}")
        self.shards = list(shards)
        self.batch_size = int(batch_size)
        self._data_seed = int(seed)

    def draw_batches(self, global_iteration: int
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """The cohort's mini-batches for one iteration, slot-ordered."""
        if self.shards is None or self.assignment is None:
            raise RuntimeError("draw_batches before bind_data/begin_round")
        batches = []
        for client in self.assignment.clients:
            shard = self.shards[client]
            n = len(shard)
            rng = new_rng("client_batch", int(client), int(global_iteration),
                          seed=self._data_seed)
            idx = rng.choice(n, size=self.batch_size,
                             replace=n < self.batch_size)
            batches.append((shard.inputs[idx], np.asarray(shard.targets[idx])))
        return batches

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Participation counters for metrics/CSV/run output."""
        active = 0 if self.assignment is None else len(self.assignment)
        return {
            "num_clients": self.num_clients,
            "cohort_size": self.cohort_size,
            "active_clients": active,
            "cohort_fraction": self.cohort_size / self.num_clients,
            "unique_clients_seen": int(self._seen.sum()),
            "rounds": self.rounds_completed,
        }

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {
            "round": np.array([self.round_index, self.rounds_completed],
                              dtype=np.int64),
            "seen": self._seen.astype(np.int8),
        }
        if self.assignment is not None:
            arrays["assignment"] = np.array(self.assignment.clients,
                                            dtype=np.int64)
        arrays.update(self.store.state_arrays())
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        if "round" in arrays:
            round_state = np.asarray(arrays["round"], dtype=np.int64)
            self.round_index = int(round_state[0])
            self.rounds_completed = int(round_state[1])
        if "seen" in arrays:
            self._seen = np.asarray(arrays["seen"]).astype(bool).copy()
        if "assignment" in arrays:
            self.assignment = SlotAssignment(
                np.asarray(arrays["assignment"], dtype=np.int64).tolist())
        self.store.load_state_arrays(arrays)
