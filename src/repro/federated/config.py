"""Declarative client-population configuration: the spec's ``clients`` section.

A :class:`ClientSpec` describes a logical federated population layered over
the physical world: how many clients exist (``num_clients``), how many are
materialized per round (``cohort_size``, always the world size — one cohort
client per replica slot), which sampler picks the cohort, and how the
training set is partitioned across clients::

    {"clients": {"num_clients": 64, "cohort_size": 8, "sampler_seed": 7,
                 "sampler": "uniform_without_replacement",
                 "data_skew": "dirichlet", "data_skew_kwargs": {"alpha": 0.3}}}

``ClientSpec()`` (``num_clients`` unset) describes no population at all:
the trainer's default one-client-per-rank data path runs and every code
path is bit-identical to the pre-federated trainer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.data.partition import PARTITION_POLICIES, partition_problems
from repro.federated.sampler import CLIENT_SAMPLERS
from repro.registry import RegistryKeyError, unknown_field_problems
from repro.sync.base import SYNC_STRATEGIES


@dataclass
class ClientSpec:
    """One fully-described client population (JSON round-trippable)."""

    #: Logical population size N (None disables the federated layer).
    num_clients: Optional[int] = None
    #: Cohort size K materialized each round; None means "the world size".
    #: Each cohort client occupies exactly one replica slot, so an explicit
    #: value must equal world_size.
    cohort_size: Optional[int] = None
    #: Registered cohort sampler: full, uniform_without_replacement.
    sampler: str = "uniform_without_replacement"
    #: Seed of the per-round sampler stream (``--seed``-style sibling knob,
    #: kept separate so the cohort sequence survives model-seed sweeps).
    sampler_seed: int = 0
    #: Per-client partition policy: iid, dirichlet, shards.
    data_skew: str = "iid"
    #: Extra kwargs for the partition policy (e.g. alpha for dirichlet).
    data_skew_kwargs: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction / serialization
    # ------------------------------------------------------------------ #
    @classmethod
    def resolve(cls, value: Union[None, int, Dict[str, object], "ClientSpec"]
                ) -> "ClientSpec":
        """Normalize the forms a spec/config may carry: None, N, dict,
        ClientSpec."""
        if value is None:
            return cls()
        if isinstance(value, ClientSpec):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(num_clients=value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise ValueError(f"clients must be None, a population size, a dict "
                         f"or a ClientSpec; got {value!r}")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ClientSpec":
        """Build from a dict, rejecting unknown keys with suggestions."""
        if not isinstance(payload, dict):
            raise ValueError(f"clients must be a JSON object, "
                             f"got {type(payload).__name__}")
        problems = unknown_field_problems(
            payload, [f.name for f in dataclasses.fields(cls)],
            label="clients field")
        if problems:
            raise ValueError("\n".join(problems))
        return cls(**payload)

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def merged_with(self, overrides: Dict[str, object]) -> Dict[str, object]:
        """Overlay partial field overrides, dict form, for CLI/API merging.

        Switching the partition policy resets ``data_skew_kwargs`` — a
        Dirichlet ``alpha`` means nothing to the ``shards`` policy.  Names
        are compared case/punctuation-insensitively so aliases never read
        as a switch.
        """
        merged = self.to_dict()

        def canonical(name: object) -> str:
            return str(name).strip().lower().replace("-", "_")

        if "data_skew" in overrides \
                and canonical(overrides["data_skew"]) != canonical(merged["data_skew"]):
            merged["data_skew_kwargs"] = {}
        merged.update(overrides)
        return merged

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """Whether a client population is configured at all."""
        return self.num_clients is not None

    def _sampler_canonical(self) -> Optional[str]:
        try:
            return CLIENT_SAMPLERS.canonical(str(self.sampler))
        except RegistryKeyError:
            return None

    def problems(self, world_size: Optional[int] = None,
                 task: Optional[str] = None,
                 sync_strategy: Optional[str] = None,
                 sync_period: Optional[int] = None,
                 faults_active: bool = False,
                 fused_pipeline: bool = True) -> List[str]:
        """Every problem with this clients section, as actionable messages.

        The trainer and ``ExperimentSpec.validate`` call this with the same
        arguments, so a bad section fails identically at validate time and
        at construction time.
        """
        if not self.enabled:
            problems: List[str] = []
            if self.cohort_size is not None:
                problems.append("clients: cohort_size given but num_clients "
                                "is unset; set num_clients to enable the "
                                "federated layer")
            return problems

        problems = []
        if not isinstance(self.num_clients, int) \
                or isinstance(self.num_clients, bool) or self.num_clients < 1:
            problems.append(f"clients: num_clients must be an integer >= 1, "
                            f"got {self.num_clients!r}")
            return problems
        if self.cohort_size is not None and (
                not isinstance(self.cohort_size, int)
                or isinstance(self.cohort_size, bool) or self.cohort_size < 1):
            problems.append(f"clients: cohort_size must be an integer >= 1, "
                            f"got {self.cohort_size!r}")
            return problems

        cohort = self.cohort_size
        if cohort is None and world_size is not None:
            cohort = int(world_size)
        if cohort is not None and cohort > self.num_clients:
            problems.append(
                f"clients: cohort_size {cohort} exceeds num_clients "
                f"{self.num_clients}; the sampled cohort cannot be larger "
                f"than the client population")
        if self.cohort_size is not None and world_size is not None \
                and self.cohort_size != int(world_size):
            problems.append(
                f"clients: cohort_size {self.cohort_size} must equal "
                f"world_size {world_size}; each sampled client occupies one "
                f"materialized replica slot")

        sampler = self._sampler_canonical()
        if sampler is None:
            try:
                CLIENT_SAMPLERS.canonical(str(self.sampler))
            except RegistryKeyError as error:
                problems.append(f"clients: {error}")
        else:
            sampler_cls = CLIENT_SAMPLERS.get(sampler)
            if sampler_cls.full_participation and cohort is not None \
                    and cohort != self.num_clients:
                problems.append(
                    f"clients: the 'full' sampler materializes every client "
                    f"each round and requires cohort_size == num_clients "
                    f"(got K={cohort}, N={self.num_clients}); use "
                    f"'uniform_without_replacement' to sample cohorts")
            if not sampler_cls.full_participation:
                if not fused_pipeline:
                    problems.append(
                        f"clients: sampler {sampler!r} swaps per-client slot "
                        f"state through the flat buffers and requires "
                        f"fused_pipeline=true")
                if sync_period is not None and sync_period < 2:
                    problems.append(
                        f"clients: sampler {sampler!r} resamples the cohort "
                        f"at each parameter-averaging point and requires "
                        f"sync period >= 2 (got {sync_period}); use the "
                        f"'full' sampler for per-iteration exchange")

        if not isinstance(self.sampler_seed, int) \
                or isinstance(self.sampler_seed, bool):
            problems.append(f"clients: sampler_seed must be an integer, "
                            f"got {self.sampler_seed!r}")
        if not isinstance(self.data_skew_kwargs, dict):
            problems.append(f"clients: data_skew_kwargs must be a dict, got "
                            f"{type(self.data_skew_kwargs).__name__}")
        else:
            problems.extend(f"clients: {p}" for p in partition_problems(
                str(self.data_skew), dict(self.data_skew_kwargs)))

        if task is not None and task != "classification":
            problems.append(f"clients: federated client populations support "
                            f"classification tasks only (got task {task!r})")
        if sync_strategy is not None:
            try:
                strategy = SYNC_STRATEGIES.canonical(str(sync_strategy))
            except RegistryKeyError:
                strategy = str(sync_strategy)
            if strategy != "fedavg":
                problems.append(
                    f"clients: a client population requires sync strategy "
                    f"'fedavg' (got {sync_strategy!r})")
        if faults_active:
            problems.append("clients: fault injection is not supported with "
                            "a client population; cohort sampling already "
                            "models partial participation")
        return problems

    def validate(self, **kwargs: object) -> "ClientSpec":
        """Raise ``ValueError`` listing every problem; returns self when clean."""
        problems = self.problems(**kwargs)
        if problems:
            raise ValueError("invalid clients spec:\n" +
                             "\n".join(f"  - {p}" for p in problems))
        return self

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        if not self.enabled:
            return "disabled"
        parts = [f"num_clients={self.num_clients}"]
        parts.append(f"cohort_size={self.cohort_size if self.cohort_size is not None else 'world_size'}")
        parts.append(f"sampler={self.sampler}")
        parts.append(f"sampler_seed={self.sampler_seed}")
        parts.append(f"data_skew={self.data_skew}")
        if self.data_skew_kwargs:
            parts.append(f"data_skew_kwargs={dict(self.data_skew_kwargs)}")
        return " ".join(parts)
