"""Per-round cohort sampling over the logical client population.

Every round the trainer materializes a cohort of ``K`` clients onto the
``K`` physical replica slots.  A sampler decides *which* clients: the draw
is a pure function of ``(sampler_seed, round_index)`` — no internal RNG
state — so the cohort sequence is reproducible across world sizes, rebuild
orders, and checkpoint resumes (restoring the round counter restores the
stream).  ``uniform_without_replacement`` additionally draws cohorts as the
``K``-prefix of one seeded permutation, so cohorts at different ``K`` under
the same seed are nested (the property test pins this).
"""

from __future__ import annotations

from typing import Tuple

from repro.registry import Registry
from repro.utils.rng import new_rng

CLIENT_SAMPLERS = Registry("client sampler", expose="client-samplers")


class ClientSampler:
    """Base class: stateless, seeded per-round cohort selection."""

    name = "base"
    #: True when every client participates every round (cohort == population).
    full_participation = False

    def sample(self, round_index: int, num_clients: int, cohort_size: int,
               seed: int) -> Tuple[int, ...]:
        """The sorted client ids forming round ``round_index``'s cohort."""
        raise NotImplementedError

    @staticmethod
    def _check(round_index: int, num_clients: int, cohort_size: int) -> None:
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        if not 1 <= cohort_size <= num_clients:
            raise ValueError(f"cohort_size must be in [1, {num_clients}], "
                             f"got {cohort_size}")


@CLIENT_SAMPLERS.register("full", aliases=("all", "everyone"),
                          description="every client participates every round "
                                      "(requires cohort_size == num_clients)")
class FullParticipationSampler(ClientSampler):
    """Degenerate sampler: the cohort is the whole population, every round.

    With ``N == K == P`` the slot assignment is the identity and never
    changes, which is what pins fedavg bit-identical to local_sgd.
    """

    name = "full"
    full_participation = True

    def sample(self, round_index: int, num_clients: int, cohort_size: int,
               seed: int) -> Tuple[int, ...]:
        self._check(round_index, num_clients, cohort_size)
        if cohort_size != num_clients:
            raise ValueError("the 'full' sampler requires cohort_size == "
                             f"num_clients, got {cohort_size} != {num_clients}")
        return tuple(range(num_clients))


@CLIENT_SAMPLERS.register("uniform_without_replacement",
                          aliases=("uniform", "random"),
                          description="K distinct clients drawn uniformly per "
                                      "round, seeded and world-size independent")
class UniformWithoutReplacementSampler(ClientSampler):
    """K distinct clients per round, uniform over the population.

    The cohort is the first ``K`` entries of a permutation derived from
    ``(seed, round_index)`` only — never from ``K`` or the world size — so
    runs at different ``P`` draw nested prefixes of the same stream.
    """

    name = "uniform_without_replacement"

    def sample(self, round_index: int, num_clients: int, cohort_size: int,
               seed: int) -> Tuple[int, ...]:
        self._check(round_index, num_clients, cohort_size)
        perm = new_rng("client_sampler", int(seed),
                       int(round_index)).permutation(int(num_clients))
        return tuple(sorted(int(c) for c in perm[:cohort_size]))
