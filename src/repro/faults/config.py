"""Declarative fault configuration: the spec's ``faults`` section.

A :class:`FaultSpec` is the serializable description of one fault
scenario — which fault model runs, its parameters, and the barrier
timeout/retry policy lockstep worlds use to survive it — carried by
:class:`~repro.core.spec.ExperimentSpec` under the ``faults`` key (with
the seed as the sibling ``fault_seed`` field / ``--seed-faults`` flag)::

    {"faults": {"model": "transient_blackout",
                "model_kwargs": {"mean_down_s": 0.2, "mean_up_s": 0.8}},
     "fault_seed": 7}

``FaultSpec()`` (all defaults, model ``"none"``) describes a healthy
world: no injector is built and every code path is bit-identical to the
fault-free trainer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.faults.injector import FaultInjector
from repro.faults.models import FAULT_MODELS
from repro.registry import RegistryKeyError, unknown_field_problems


@dataclass
class FaultSpec:
    """One fully-described fault scenario (JSON round-trippable)."""

    #: Registered fault model name ("none" disables injection entirely):
    #: crash_stop, transient_blackout, message_loss, slow_node.
    model: str = "none"
    #: Extra kwargs for the fault model constructor (e.g. mean_down_s for
    #: transient_blackout, p for message_loss).
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Simulated seconds a lockstep barrier waits before suspecting a rank.
    barrier_timeout_s: float = 0.1
    #: Bounded retry attempts before a suspected rank is declared dead (and
    #: per lost message before a retransmission gives up backing off).
    max_retries: int = 3
    #: Base of the exponential backoff ladder (base · 2^k per attempt k).
    backoff_base_s: float = 0.05

    # ------------------------------------------------------------------ #
    # construction / serialization
    # ------------------------------------------------------------------ #
    @classmethod
    def resolve(cls, value: Union[None, str, Dict[str, object], "FaultSpec"]
                ) -> "FaultSpec":
        """Normalize the forms a spec/config may carry: None, name, dict,
        FaultSpec."""
        if value is None:
            return cls()
        if isinstance(value, FaultSpec):
            return value
        if isinstance(value, str):
            return cls(model=value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise ValueError(f"faults must be None, a model name, a dict or a "
                         f"FaultSpec; got {value!r}")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        """Build from a dict, rejecting unknown keys with suggestions."""
        if not isinstance(payload, dict):
            raise ValueError(f"faults must be a JSON object, "
                             f"got {type(payload).__name__}")
        problems = unknown_field_problems(
            payload, [f.name for f in dataclasses.fields(cls)],
            label="faults field")
        if problems:
            raise ValueError("\n".join(problems))
        return cls(**payload)

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def merged_with(self, overrides: Dict[str, object]) -> Dict[str, object]:
        """Overlay partial field overrides, dict form, for CLI/API merging.

        Switching the fault model resets ``model_kwargs`` — a blackout
        config's ``mean_down_s`` would make ``crash_stop`` unconstructible.
        Names are compared canonically so aliases never read as a switch.
        """
        merged = self.to_dict()

        def canonical(name: object) -> str:
            try:
                return FAULT_MODELS.canonical(str(name))
            except KeyError:
                return str(name)

        if "model" in overrides \
                and canonical(overrides["model"]) != canonical(merged["model"]):
            merged["model_kwargs"] = {}
        merged.update(overrides)
        return merged

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """Whether a fault model is configured (not "none")."""
        return str(self.model).strip().lower() not in ("none", "")

    def problems(self, world_size: Optional[int] = None) -> List[str]:
        """Every problem with this faults section, as actionable messages."""
        problems: List[str] = []
        model_known = False
        if self.active:
            try:
                FAULT_MODELS.canonical(str(self.model))
                model_known = True
            except RegistryKeyError as error:
                problems.append(str(error))
        if not isinstance(self.model_kwargs, dict):
            problems.append(f"model_kwargs must be a dict, "
                            f"got {type(self.model_kwargs).__name__}")
        elif not self.active and self.model_kwargs:
            problems.append(f"model_kwargs {self.model_kwargs!r} given but "
                            f"fault model is {self.model!r}")
        elif model_known:
            try:
                model = FAULT_MODELS.create(self.model, **self.model_kwargs)
                if world_size is not None:
                    model.bind(world_size, 0)
            except Exception as error:
                problems.append(f"fault model {self.model!r} cannot be "
                                f"constructed with {self.model_kwargs!r}: "
                                f"{error}")
        if not isinstance(self.barrier_timeout_s, (int, float)) \
                or isinstance(self.barrier_timeout_s, bool) \
                or self.barrier_timeout_s < 0:
            problems.append(f"barrier_timeout_s must be a number >= 0, "
                            f"got {self.barrier_timeout_s!r}")
        if not isinstance(self.max_retries, int) \
                or isinstance(self.max_retries, bool) or self.max_retries < 0:
            problems.append(f"max_retries must be an integer >= 0, "
                            f"got {self.max_retries!r}")
        if not isinstance(self.backoff_base_s, (int, float)) \
                or isinstance(self.backoff_base_s, bool) \
                or self.backoff_base_s < 0:
            problems.append(f"backoff_base_s must be a number >= 0, "
                            f"got {self.backoff_base_s!r}")
        return problems

    def validate(self, world_size: Optional[int] = None) -> "FaultSpec":
        """Raise ``ValueError`` listing every problem; returns self when clean."""
        problems = self.problems(world_size=world_size)
        if problems:
            raise ValueError("invalid faults spec:\n" +
                             "\n".join(f"  - {p}" for p in problems))
        return self

    # ------------------------------------------------------------------ #
    # injector construction
    # ------------------------------------------------------------------ #
    def build(self, world_size: int, seed: int = 0,
              bridge_compute_stalls: bool = False) -> Optional[FaultInjector]:
        """Instantiate the injector, or None when no injection is needed.

        ``bridge_compute_stalls`` forces an injector even for model
        ``"none"`` so that ``intermittent_dropout`` compute-model stalls
        can be promoted to membership absences.
        """
        if not self.active and not bridge_compute_stalls:
            return None
        model = FAULT_MODELS.create(self.model, **dict(self.model_kwargs)) \
            if self.active else None
        return FaultInjector(
            model, world_size, seed=seed,
            barrier_timeout_s=self.barrier_timeout_s,
            max_retries=self.max_retries,
            backoff_base_s=self.backoff_base_s,
            bridge_compute_stalls=bridge_compute_stalls)

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        if not self.active:
            return "model=none"
        parts = [f"model={self.model}"]
        if self.model_kwargs:
            parts.append(f"model_kwargs={dict(self.model_kwargs)}")
        parts.append(f"barrier_timeout_s={self.barrier_timeout_s}")
        parts.append(f"max_retries={self.max_retries}")
        parts.append(f"backoff_base_s={self.backoff_base_s}")
        return " ".join(parts)
