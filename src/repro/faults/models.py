"""Seeded fault schedules: *when* is rank r down, which messages die?

A :class:`FaultModel` is a pure, deterministic function of
``(fault_seed, rank)`` onto the simulated-time axis.  It never mutates
training state itself — the :class:`repro.faults.injector.FaultInjector`
queries it at injection points (the ``SimulationEngine`` event loop, the
lockstep iteration boundary, the exchange layer) and flips the
:class:`~repro.faults.membership.Membership` mask accordingly.  Keeping
schedules outside the strategies is the design invariant: strategies
*consult* membership, they never decide faults.

Three query surfaces, each deterministic and restore-free:

* :meth:`FaultModel.down_interval` — for membership-affecting models,
  the ``(start, end)`` down-interval covering time ``t`` (``end`` may be
  ``inf`` for crash-stop), else ``None``.  Blackout schedules are
  generated lazily per rank from a dedicated
  :func:`repro.utils.rng.new_rng` stream and memoized, so checkpoint
  resume simply regenerates them — no RNG state is saved.
* :meth:`FaultModel.message_dropped` — stateless per-message coin flip
  keyed on ``(seed, rank, message_index)`` via
  :func:`repro.utils.rng.derive_seed`; only integer counters need
  checkpointing.
* :meth:`FaultModel.extra_stall` — timing-only stalls (``slow_node``),
  keyed the same stateless way.

Per-rank streams never involve ``world_size``, so the same
``--seed-faults`` reproduces each rank's timeline across world sizes.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.registry import Registry, RegistryKeyError
from repro.utils.rng import derive_seed, new_rng

FAULT_MODELS = Registry("fault model", expose="fault-models")

#: Resolution of the stateless per-event uniform draws.
_DRAW_DENOM = float(1 << 53)


def _unit_draw(seed: int, *components) -> float:
    """Deterministic uniform in ``[0, 1)`` from a hashed event key."""
    return (derive_seed(*components, base=seed) % (1 << 53)) / _DRAW_DENOM


def _check_positive(value: float, label: str) -> float:
    value = float(value)
    if not value > 0:
        raise ValueError(f"{label} must be > 0, got {value}")
    return value


def _check_nonnegative(value: float, label: str) -> float:
    value = float(value)
    if value < 0:
        raise ValueError(f"{label} must be >= 0, got {value}")
    return value


class FaultModel:
    """Base fault schedule; all queries are pure in ``(seed, rank, ...)``."""

    name = "base"
    #: Does this model take ranks in and out of membership?
    affects_membership = False
    #: Does this model drop messages on the wire?
    affects_messages = False
    #: Does this model inject extra per-step stalls (timing only)?
    affects_timing = False

    def __init__(self):
        self.world_size = 0
        self.seed = 0

    def bind(self, world_size: int, seed: int) -> None:
        if world_size < 1:
            raise ValueError("world_size must be at least 1")
        self.world_size = int(world_size)
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    # query surfaces
    # ------------------------------------------------------------------ #
    def down_interval(self, rank: int, t: float) -> Optional[Tuple[float, float]]:
        """The down-interval ``(start, end)`` containing simulated time
        ``t``, or ``None`` if the rank is up at ``t``."""
        return None

    def message_dropped(self, rank: int, index: int) -> bool:
        """Is message ``index`` from ``rank`` lost on the wire?"""
        return False

    def extra_stall(self, rank: int, index: int) -> float:
        """Timing-only stall injected before step ``index`` of ``rank``."""
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name}


def _validate_ranks(ranks: Sequence[int], world_size: int,
                    label: str) -> List[int]:
    out = sorted(int(r) for r in ranks)
    for rank in out:
        if not 0 <= rank < world_size:
            raise ValueError(f"{label} rank {rank} out of range for "
                             f"world_size {world_size}")
    return out


@FAULT_MODELS.register("crash_stop",
                       description="listed ranks die at at_s and never return")
class CrashStopFaultModel(FaultModel):
    """Fail-stop: ``ranks`` (default: the last rank) go down at simulated
    time ``at_s`` and stay down for the rest of the run."""

    name = "crash_stop"
    affects_membership = True

    def __init__(self, ranks: Optional[Sequence[int]] = None,
                 at_s: float = 0.0):
        super().__init__()
        self.at_s = _check_nonnegative(at_s, "at_s")
        self.ranks = None if ranks is None else sorted(int(r) for r in ranks)

    def bind(self, world_size: int, seed: int) -> None:
        super().bind(world_size, seed)
        ranks = self.ranks if self.ranks is not None else [world_size - 1]
        self._crashed = frozenset(_validate_ranks(ranks, world_size,
                                                  "crash_stop"))

    def down_interval(self, rank: int, t: float) -> Optional[Tuple[float, float]]:
        if rank in self._crashed and t >= self.at_s:
            return (self.at_s, math.inf)
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "ranks": self.ranks, "at_s": self.at_s}


@FAULT_MODELS.register("transient_blackout",
                       description="ranks alternate up/down with exponential durations")
class TransientBlackoutFaultModel(FaultModel):
    """Crash-recovery churn: each affected rank alternates exponentially
    distributed up-phases (mean ``mean_up_s``) and blackouts (mean
    ``mean_down_s``), from an independent per-rank stream.  Intervals are
    generated lazily and memoized; regenerating after a checkpoint load
    reproduces the identical timeline."""

    name = "transient_blackout"
    affects_membership = True

    def __init__(self, mean_down_s: float = 0.25, mean_up_s: float = 1.0,
                 ranks: Optional[Sequence[int]] = None):
        super().__init__()
        self.mean_down_s = _check_positive(mean_down_s, "mean_down_s")
        self.mean_up_s = _check_positive(mean_up_s, "mean_up_s")
        self.ranks = None if ranks is None else sorted(int(r) for r in ranks)

    def bind(self, world_size: int, seed: int) -> None:
        super().bind(world_size, seed)
        ranks = self.ranks if self.ranks is not None else list(range(world_size))
        self._affected = frozenset(_validate_ranks(ranks, world_size,
                                                   "transient_blackout"))
        # rank -> (rng, [(down_start, down_end), ...], horizon); the horizon
        # is the end of the last generated interval, so queries below it are
        # fully answerable from the memoized list.
        self._schedules: Dict[int, list] = {}

    def _ensure(self, rank: int, t: float) -> List[Tuple[float, float]]:
        state = self._schedules.get(rank)
        if state is None:
            rng = new_rng("fault-model", self.name, rank, seed=self.seed)
            state = [rng, [], 0.0]
            self._schedules[rank] = state
        rng, intervals, horizon = state
        while horizon <= t:
            up = float(rng.exponential(self.mean_up_s))
            down = float(rng.exponential(self.mean_down_s))
            start = horizon + up
            intervals.append((start, start + down))
            horizon = start + down
        state[2] = horizon
        return intervals

    def down_interval(self, rank: int, t: float) -> Optional[Tuple[float, float]]:
        if rank not in self._affected:
            return None
        intervals = self._ensure(rank, t)
        pos = bisect_right(intervals, (t, math.inf)) - 1
        if pos >= 0:
            start, end = intervals[pos]
            if start <= t < end:
                return (start, end)
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "mean_down_s": self.mean_down_s,
                "mean_up_s": self.mean_up_s, "ranks": self.ranks}


@FAULT_MODELS.register("message_loss",
                       description="each message independently lost with probability p")
class MessageLossFaultModel(FaultModel):
    """Lossy network: every message from every rank is independently lost
    with probability ``p``.  Draws are stateless hashes of
    ``(seed, rank, message_index)`` — only the per-rank message counters
    (kept by the injector) need checkpointing."""

    name = "message_loss"
    affects_messages = True

    def __init__(self, p: float = 0.05):
        super().__init__()
        self.p = float(p)
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")

    def message_dropped(self, rank: int, index: int) -> bool:
        if self.p == 0.0:
            return False
        return _unit_draw(self.seed, "fault-msg", self.name, rank, index) < self.p

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "p": self.p}


@FAULT_MODELS.register("slow_node",
                       description="timing-only stalls: ranks pause downtime_s with probability drop_prob")
class SlowNodeFaultModel(FaultModel):
    """The old ``intermittent_dropout`` semantics, preserved: before each
    step an affected rank stalls for ``downtime_s`` with probability
    ``drop_prob`` — it is *slow*, never absent.  Membership, exchanges and
    numerics are untouched; only simulated time moves."""

    name = "slow_node"
    affects_timing = True

    def __init__(self, drop_prob: float = 0.05, downtime_s: float = 0.25,
                 ranks: Optional[Sequence[int]] = None):
        super().__init__()
        self.drop_prob = float(drop_prob)
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.downtime_s = _check_nonnegative(downtime_s, "downtime_s")
        self.ranks = None if ranks is None else sorted(int(r) for r in ranks)

    def bind(self, world_size: int, seed: int) -> None:
        super().bind(world_size, seed)
        ranks = self.ranks if self.ranks is not None else list(range(world_size))
        self._affected = frozenset(_validate_ranks(ranks, world_size,
                                                   "slow_node"))

    def extra_stall(self, rank: int, index: int) -> float:
        if rank not in self._affected or self.drop_prob == 0.0:
            return 0.0
        u = _unit_draw(self.seed, "fault-stall", self.name, rank, index)
        return self.downtime_s if u < self.drop_prob else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "drop_prob": self.drop_prob,
                "downtime_s": self.downtime_s, "ranks": self.ranks}


# ---------------------------------------------------------------------- #
# spec-level helpers (mirrors sim/compute.resolve_compute_model)
# ---------------------------------------------------------------------- #
def resolve_fault_model(value) -> Optional[FaultModel]:
    """``None``/``"none"`` | registry name | ``{"name": ...}`` | instance."""
    if value is None:
        return None
    if isinstance(value, FaultModel):
        return value
    if isinstance(value, str):
        if value == "none":
            return None
        return FAULT_MODELS.create(value)
    if isinstance(value, dict):
        kwargs = dict(value)
        name = kwargs.pop("name", None)
        if not isinstance(name, str):
            raise ValueError("fault model dict requires a 'name' key")
        if name == "none":
            if kwargs:
                raise ValueError("fault model 'none' takes no arguments")
            return None
        return FAULT_MODELS.create(name, **kwargs)
    raise ValueError(f"fault model must be None, a name or a dict, "
                     f"got {type(value).__name__}")


def fault_model_problems(value) -> List[str]:
    """Validation-friendly version of :func:`resolve_fault_model`."""
    if value is None:
        return []
    try:
        resolve_fault_model(value)
    except (RegistryKeyError, ValueError, TypeError) as error:
        return [f"fault model: {error}"]
    return []
