"""Fault injection and graceful degradation.

Seeded, registry-backed fault schedules (:mod:`repro.faults.models`)
drive a live :class:`~repro.faults.membership.Membership` mask over the
flat ``(P, n)`` world buffers.  Comm collectives and every
``SyncStrategy`` consult the mask — aggregation renormalizes over
survivors, gossip re-routes around dead neighbours, async PS drops lost
pushes and serves rejoining workers a fresh pull — while the
:class:`~repro.faults.injector.FaultInjector` prices timeouts, retries
and catch-up re-syncs into simulated time and accounts everything in a
:class:`~repro.faults.report.FaultReport`.
"""

from repro.faults.config import FaultSpec
from repro.faults.injector import FaultInjector
from repro.faults.membership import Membership
from repro.faults.models import (FAULT_MODELS, FaultModel,
                                 fault_model_problems, resolve_fault_model)
from repro.faults.report import FaultReport

__all__ = [
    "FAULT_MODELS",
    "FaultInjector",
    "FaultModel",
    "FaultReport",
    "FaultSpec",
    "Membership",
    "fault_model_problems",
    "resolve_fault_model",
]
