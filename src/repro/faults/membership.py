"""Live membership over the flat ``(P, n)`` world buffers.

A :class:`Membership` is a boolean alive-mask over the ``P`` ranks of a
world.  It is the single source of truth for "who is participating right
now": the fault injector flips ranks down/up, comm collectives subset
their participant lists through it, and every ``SyncStrategy`` consults
it so aggregation renormalizes over survivors instead of deadlocking on
(or averaging in) dead ranks.

The mask is deliberately dumb — no timers, no schedules.  *When* a rank
is down is the fault model's business (:mod:`repro.faults.models`); the
membership only records the current state so that every layer observes
one consistent view within an iteration.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


class Membership:
    """Boolean alive-mask over ``world_size`` ranks (all alive initially)."""

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = int(world_size)
        self.alive = np.ones(self.world_size, dtype=bool)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_alive(self, rank: int) -> bool:
        return bool(self.alive[rank])

    def alive_ranks(self) -> List[int]:
        return [int(r) for r in np.flatnonzero(self.alive)]

    def dead_ranks(self) -> List[int]:
        return [int(r) for r in np.flatnonzero(~self.alive)]

    @property
    def num_alive(self) -> int:
        return int(self.alive.sum())

    @property
    def all_alive(self) -> bool:
        return bool(self.alive.all())

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def set_alive(self, rank: int, alive: bool) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world_size "
                             f"{self.world_size}")
        self.alive[rank] = bool(alive)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {"alive": self.alive.astype(np.uint8)}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        alive = np.asarray(arrays["alive"]).astype(bool)
        if alive.shape != (self.world_size,):
            raise ValueError("membership state does not match world_size")
        self.alive = alive.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Membership(alive={self.alive.astype(int).tolist()})"
