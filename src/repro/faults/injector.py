"""The fault injector: schedules in, membership flips and pricing out.

One :class:`FaultInjector` per trainer.  It owns the
:class:`~repro.faults.membership.Membership` mask, the
:class:`~repro.faults.report.FaultReport` counters and the small amount
of mutable state (per-rank message/stall counters, pending catch-up
flags) that the stateless fault models cannot carry.  Injection points
call it from exactly two layers:

* the ``SimulationEngine`` event loop / lockstep iteration boundary —
  membership transitions, rejoin catch-up scheduling, stall injection;
* the exchange layer — per-message loss draws and retransmit pricing.

Strategies never see the injector; they only consult the membership.

Barrier policy: a lockstep world discovers a newly-dead rank by timing
out on it (``barrier_timeout_s``) and then retrying with bounded
exponential backoff (``max_retries`` attempts, base ``backoff_base_s``)
before declaring it dead — all charged to simulated time instead of
deadlocking.  The same backoff schedule prices reliable retransmission
of lost lockstep messages.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.faults.membership import Membership
from repro.faults.models import FaultModel
from repro.faults.report import FaultReport


class FaultInjector:
    """Orchestrates one fault model over one world."""

    def __init__(self, model: Optional[FaultModel], world_size: int,
                 seed: int = 0, barrier_timeout_s: float = 0.1,
                 max_retries: int = 3, backoff_base_s: float = 0.05,
                 bridge_compute_stalls: bool = False):
        self.model = model
        self.world_size = int(world_size)
        self.seed = int(seed)
        self.barrier_timeout_s = float(barrier_timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        #: When True, compute-model stalls (``intermittent_dropout``) are
        #: promoted to membership absences for the stalled iteration.
        self.bridge_compute_stalls = bool(bridge_compute_stalls)
        if model is not None:
            model.bind(self.world_size, self.seed)
        self.membership = Membership(self.world_size)
        self.report = FaultReport(
            self.world_size, model.name if model is not None else "none",
            self.seed)
        self._message_counters = np.zeros(self.world_size, dtype=np.int64)
        self._stall_counters = np.zeros(self.world_size, dtype=np.int64)
        #: Ranks whose next scheduled event is a catch-up re-sync (async).
        self.needs_catchup = np.zeros(self.world_size, dtype=bool)
        #: Per-rank simulated time up to which permanent (infinite-interval)
        #: downtime has already been charged to the report — settling is
        #: incremental so an interrupted run resumes without double counting.
        self._downtime_marks = np.zeros(self.world_size, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # schedule queries
    # ------------------------------------------------------------------ #
    def down_interval(self, rank: int, t: float) -> Optional[Tuple[float, float]]:
        if self.model is None or not self.model.affects_membership:
            return None
        return self.model.down_interval(rank, t)

    def is_down(self, rank: int, t: float) -> bool:
        return self.down_interval(rank, t) is not None

    @property
    def affects_messages(self) -> bool:
        return self.model is not None and self.model.affects_messages

    @property
    def affects_timing(self) -> bool:
        return self.model is not None and self.model.affects_timing

    # ------------------------------------------------------------------ #
    # counter-consuming draws (checkpointed via the counters)
    # ------------------------------------------------------------------ #
    def message_dropped(self, rank: int) -> bool:
        """One wire transmission from ``rank``; True if it is lost."""
        if not self.affects_messages:
            return False
        index = int(self._message_counters[rank])
        self._message_counters[rank] += 1
        dropped = self.model.message_dropped(rank, index)
        if dropped:
            self.report.dropped_messages += 1
        return dropped

    def extra_stall(self, rank: int) -> float:
        """Timing-only stall for the rank's next step (``slow_node``)."""
        if not self.affects_timing:
            return 0.0
        index = int(self._stall_counters[rank])
        self._stall_counters[rank] += 1
        return self.model.extra_stall(rank, index)

    # ------------------------------------------------------------------ #
    # pricing
    # ------------------------------------------------------------------ #
    def discovery_penalty_s(self) -> float:
        """Simulated cost of a barrier discovering one newly-dead rank:
        one timeout plus the full bounded-backoff retry ladder."""
        self.report.barrier_timeouts += 1
        self.report.retries += self.max_retries
        backoff = sum(self.backoff_base_s * (2.0 ** k)
                      for k in range(self.max_retries))
        return self.barrier_timeout_s + backoff

    def retransmit_penalty_s(self, rank: int) -> float:
        """Reliable lockstep send under message loss: redraw until a
        transmission survives (bounded by ``max_retries`` retries — the
        final attempt always succeeds), charging exponential backoff per
        lost attempt.  Numerics are untouched; only time and counters."""
        if not self.affects_messages:
            return 0.0
        penalty = 0.0
        for attempt in range(self.max_retries + 1):
            if not self.message_dropped(rank):
                break
            if attempt >= self.max_retries:
                break
            self.report.retries += 1
            penalty += self.backoff_base_s * (2.0 ** attempt)
        return penalty

    def settle_permanent_downtime(self, now: float) -> None:
        """Charge downtime for permanently-dead ranks up to ``now``.

        Finite outages record their downtime when they are discovered; an
        infinite one (crash_stop) only ends with the run, so the event loop
        settles it at exit.  The per-rank mark makes settling idempotent:
        an interrupted run charges up to the interruption and the resumed
        run only charges the remainder.
        """
        for rank in self.membership.dead_ranks():
            interval = self.down_interval(rank, now)
            if interval is None or math.isfinite(interval[1]):
                continue
            mark = max(float(self._downtime_marks[rank]), interval[0])
            if now > mark:
                self.report.record_downtime(rank, now - mark)
                self._downtime_marks[rank] = now

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {
            "message_counters": self._message_counters.copy(),
            "stall_counters": self._stall_counters.copy(),
            "needs_catchup": self.needs_catchup.astype(np.uint8),
            "downtime_marks": self._downtime_marks.copy(),
        }
        for key, value in self.membership.state_arrays().items():
            arrays[f"membership_{key}"] = value
        for key, value in self.report.state_arrays().items():
            arrays[f"report_{key}"] = value
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self._message_counters = np.asarray(
            arrays["message_counters"], dtype=np.int64).copy()
        self._stall_counters = np.asarray(
            arrays["stall_counters"], dtype=np.int64).copy()
        self.needs_catchup = np.asarray(
            arrays["needs_catchup"]).astype(bool).copy()
        if "downtime_marks" in arrays:
            self._downtime_marks = np.asarray(
                arrays["downtime_marks"], dtype=np.float64).copy()
        self.membership.load_state_arrays(
            {"alive": arrays["membership_alive"]})
        self.report.load_state_arrays(
            {key[len("report_"):]: value for key, value in arrays.items()
             if key.startswith("report_")})
