"""Fault accounting: what actually went wrong during a (simulated) run.

:class:`FaultReport` is the fault-side companion of
:class:`repro.sim.report.SimReport` — per-rank downtime and transition
counts, dropped messages, barrier timeouts/retries and catch-up re-sync
traffic.  It is attached to the ``SimReport`` (surfacing in ``as_dict``,
``repro run`` output and the metrics CSV) and round-trips through
checkpoints so an interrupted faulty run resumes with identical
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class FaultReport:
    """Counters for injected faults and the recovery work they caused."""

    world_size: int
    model: str = "none"
    seed: int = 0
    #: Simulated seconds each rank spent out of membership.
    downtime_s_per_rank: List[float] = field(default_factory=list)
    #: Number of alive→down transitions per rank.
    down_transitions_per_rank: List[int] = field(default_factory=list)
    #: Number of down→alive rejoins per rank.
    rejoins_per_rank: List[int] = field(default_factory=list)
    #: Gradient steps whose work was lost because the rank was down.
    lost_steps: int = 0
    #: Messages lost on the wire (dropped pushes, lost transmissions).
    dropped_messages: int = 0
    #: Lockstep barriers that timed out discovering a newly-dead rank.
    barrier_timeouts: int = 0
    #: Bounded-backoff retry attempts charged to simulated time.
    retries: int = 0
    #: Dense catch-up re-sync traffic (bytes) charged through the α–β model.
    resync_bytes: float = 0.0
    #: Number of dense catch-up re-syncs served to rejoining ranks.
    resyncs: int = 0

    def __post_init__(self):
        if not self.downtime_s_per_rank:
            self.downtime_s_per_rank = [0.0] * self.world_size
        if not self.down_transitions_per_rank:
            self.down_transitions_per_rank = [0] * self.world_size
        if not self.rejoins_per_rank:
            self.rejoins_per_rank = [0] * self.world_size

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_down(self, rank: int) -> None:
        self.down_transitions_per_rank[rank] += 1

    def record_rejoin(self, rank: int) -> None:
        self.rejoins_per_rank[rank] += 1

    def record_downtime(self, rank: int, seconds: float) -> None:
        self.downtime_s_per_rank[rank] += float(seconds)

    def record_resync(self, num_bytes: float) -> None:
        self.resyncs += 1
        self.resync_bytes += float(num_bytes)

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    @property
    def total_downtime_s(self) -> float:
        return float(sum(self.downtime_s_per_rank))

    @property
    def empty(self) -> bool:
        """True when no fault was ever observed (healthy run)."""
        return (self.total_downtime_s == 0.0
                and not any(self.down_transitions_per_rank)
                and self.lost_steps == 0 and self.dropped_messages == 0
                and self.barrier_timeouts == 0 and self.retries == 0
                and self.resyncs == 0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "seed": self.seed,
            "world_size": self.world_size,
            "downtime_s_per_rank": list(self.downtime_s_per_rank),
            "down_transitions_per_rank": list(self.down_transitions_per_rank),
            "rejoins_per_rank": list(self.rejoins_per_rank),
            "total_downtime_s": self.total_downtime_s,
            "lost_steps": self.lost_steps,
            "dropped_messages": self.dropped_messages,
            "barrier_timeouts": self.barrier_timeouts,
            "retries": self.retries,
            "resync_bytes": self.resync_bytes,
            "resyncs": self.resyncs,
        }

    def summary_line(self) -> str:
        """One-line digest for ``repro run`` output."""
        return (f"downtime {self.total_downtime_s:.4f}s over "
                f"{sum(self.down_transitions_per_rank)} outage(s), "
                f"{sum(self.rejoins_per_rank)} rejoin(s), "
                f"{self.dropped_messages} dropped message(s), "
                f"{self.retries} retrie(s), "
                f"resync {self.resync_bytes:.0f} B over {self.resyncs} catch-up(s)")

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "downtime_s": np.asarray(self.downtime_s_per_rank, dtype=np.float64),
            "down_transitions": np.asarray(self.down_transitions_per_rank,
                                           dtype=np.int64),
            "rejoins": np.asarray(self.rejoins_per_rank, dtype=np.int64),
            "scalars": np.asarray([self.lost_steps, self.dropped_messages,
                                   self.barrier_timeouts, self.retries,
                                   self.resyncs], dtype=np.int64),
            "resync_bytes": np.asarray([self.resync_bytes], dtype=np.float64),
        }

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self.downtime_s_per_rank = [float(v) for v in arrays["downtime_s"]]
        self.down_transitions_per_rank = [int(v) for v in
                                          arrays["down_transitions"]]
        self.rejoins_per_rank = [int(v) for v in arrays["rejoins"]]
        scalars = [int(v) for v in arrays["scalars"]]
        (self.lost_steps, self.dropped_messages, self.barrier_timeouts,
         self.retries, self.resyncs) = scalars
        self.resync_bytes = float(arrays["resync_bytes"][0])
