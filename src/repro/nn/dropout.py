"""Dropout regularization layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F
from repro.utils.rng import new_rng


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    Each layer instance owns its own generator so that dropout masks are
    reproducible per layer and independent across layers.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = float(p)
        self.rng = rng if rng is not None else new_rng("dropout", p)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)
