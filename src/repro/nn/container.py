"""Sequential container."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered = []
        for i, module in enumerate(modules):
            self.add_module(str(i), module)
            self._ordered.append(module)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._ordered)), module)
        self._ordered.append(module)
        return self

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Chain the members' batched forwards over the stacked replica batch."""
        for module in self._ordered:
            x = module.forward_batched(x, stack)
        return x
