"""LSTM layers for the LSTM-PTB language model.

The implementation follows the standard LSTM equations with a single fused
weight matrix per direction (input-to-hidden and hidden-to-hidden), matching
what ``torch.nn.LSTM`` computes.  Sequences are processed step by step through
the autograd graph, so backpropagation-through-time falls out of the generic
backward pass.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, init
from repro.utils.rng import new_rng


class LSTMCell(Module):
    """A single LSTM step: (x_t, h_{t-1}, c_{t-1}) → (h_t, c_t)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        rng = rng if rng is not None else new_rng("lstm_cell", input_size, hidden_size)
        bound = 1.0 / np.sqrt(hidden_size)
        # Fused gate weights: [input, forget, cell, output] stacked on the output axis.
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), rng, bound))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), rng, bound))
        self.bias_ih = Parameter(init.zeros((4 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((4 * hidden_size,)))

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = (x.matmul(self.weight_ih.T) + self.bias_ih
                 + h_prev.matmul(self.weight_hh.T) + self.bias_hh)
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        # Saturated-gate products decay carried values into float32
        # subnormals across long chains, where x86 kernels run 10-100x
        # slower; flushing the state updates keeps the recurrence (and its
        # backward) at full kernel speed without touching normal values.
        c_new = (f_gate * c_prev + i_gate * g_gate).flush_subnormals()
        h_new = (o_gate * c_new.tanh()).flush_subnormals()
        return h_new, c_new

    def forward_batched(self, x: Tensor, state: Tuple[Tensor, Tensor], stack
                        ) -> Tuple[Tensor, Tensor]:
        """One LSTM step for all replicas: ``(P, N, D)`` input, stacked weights.

        Mirrors :meth:`forward` operation for operation with a leading replica
        axis — the fused gate matmuls become stacked GEMMs against the
        ``(P, 4H, D)``/``(P, 4H, H)`` weight views, so every replica slice is
        bit-identical to stepping that replica's cell alone.
        """
        h_prev, c_prev = state
        weight_ih = stack.tensor(self.weight_ih)
        weight_hh = stack.tensor(self.weight_hh)
        bias_ih = stack.reshaped(self.bias_ih, x.shape[0], 1, 4 * self.hidden_size)
        bias_hh = stack.reshaped(self.bias_hh, x.shape[0], 1, 4 * self.hidden_size)
        gates = (x.matmul(weight_ih.transpose((0, 2, 1))) + bias_ih
                 + h_prev.matmul(weight_hh.transpose((0, 2, 1))) + bias_hh)
        hs = self.hidden_size
        i_gate = gates[:, :, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, :, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, :, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, :, 3 * hs:4 * hs].sigmoid()
        # Same subnormal flush as :meth:`forward` — the stacked update must
        # stay bit-identical to stepping each replica's cell alone.
        c_new = (f_gate * c_prev + i_gate * g_gate).flush_subnormals()
        h_new = (o_gate * c_new.tanh()).flush_subnormals()
        return h_new, c_new

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Zero hidden and cell state for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size), dtype=np.float32)
        return Tensor(zeros.copy()), Tensor(zeros.copy())

    def initial_state_batched(self, world_size: int, batch_size: int
                              ) -> Tuple[Tensor, Tensor]:
        """Zero state for all replicas at once: two ``(P, N, H)`` tensors."""
        zeros = np.zeros((world_size, batch_size, self.hidden_size), dtype=np.float32)
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-layer LSTM over a (T, N, D) input sequence.

    Returns the stacked hidden states of the top layer, shape (T, N, H), and
    the final (h, c) state per layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)
        rng = rng if rng is not None else new_rng("lstm", input_size, hidden_size, num_layers)
        self.cells: List[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size,
                            rng=np.random.default_rng(rng.integers(0, 2**63 - 1)))
            self.add_module(f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(self, x: Tensor,
                state: Optional[List[Tuple[Tensor, Tensor]]] = None
                ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        seq_len, batch, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        if len(state) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} layer states, got {len(state)}")

        outputs: List[Tensor] = []
        states = list(state)
        for t in range(seq_len):
            layer_input = x[t]
            for layer, cell in enumerate(self.cells):
                h, c = cell(layer_input, states[layer])
                states[layer] = (h, c)
                layer_input = h
            outputs.append(layer_input)
        stacked = Tensor.stack(outputs, axis=0)
        return stacked, states

    def forward_batched(self, x: Tensor,
                        state: Optional[List[Tuple[Tensor, Tensor]]], stack
                        ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Multi-layer LSTM over a stacked ``(P, T, N, D)`` replica batch.

        The time/layer loop structure of :meth:`forward` is preserved exactly
        (same graph shape, same accumulation order into the weights during
        BPTT); only the per-step ops gain the replica axis.  Returns the top
        layer's hidden states ``(P, T, N, H)`` and the per-layer final states.
        """
        world_size, seq_len, batch, _ = x.shape
        if state is None:
            state = [cell.initial_state_batched(world_size, batch) for cell in self.cells]
        if len(state) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} layer states, got {len(state)}")

        outputs: List[Tensor] = []
        states = list(state)
        for t in range(seq_len):
            layer_input = x[:, t]
            for layer, cell in enumerate(self.cells):
                h, c = cell.forward_batched(layer_input, states[layer], stack)
                states[layer] = (h, c)
                layer_input = h
            outputs.append(layer_input)
        stacked = Tensor.stack(outputs, axis=1)
        return stacked, states

    def initial_state_batched(self, world_size: int, batch_size: int
                              ) -> List[Tuple[Tensor, Tensor]]:
        """Zero per-layer state for all replicas at once."""
        return [cell.initial_state_batched(world_size, batch_size) for cell in self.cells]

    def detach_state(self, state: List[Tuple[Tensor, Tensor]]) -> List[Tuple[Tensor, Tensor]]:
        """Truncate backpropagation-through-time by detaching carried state."""
        return [(h.detach(), c.detach()) for h, c in state]
