"""Neural-network layers built on the :mod:`repro.tensor` autograd engine."""

from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.normalization import BatchNorm1d, BatchNorm2d
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.recurrent import LSTM, LSTMCell
from repro.nn.flatten import Flatten
from repro.nn.loss import CrossEntropyLoss, MSELoss

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "Flatten",
    "CrossEntropyLoss",
    "MSELoss",
]
