"""Activation-function layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Elementwise, so the stacked replica batch needs no special handling."""
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        return x.sigmoid()
