"""Activation-function layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()
