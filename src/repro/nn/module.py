"""Base classes for neural-network modules.

:class:`Module` mirrors the small subset of ``torch.nn.Module`` the paper's
models rely on: registration of parameters and submodules by attribute
assignment, recursive parameter iteration, train/eval mode, ``zero_grad`` and
a flat ``state_dict``.

The distributed trainer treats a model as "the ordered list of its
parameters"; gradient compression operates on the concatenation of their
gradients (see :mod:`repro.core.flatten`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True):
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # registration via attribute assignment
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BatchNorm stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs in deterministic registration order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        """All learnable parameters, in registration order."""
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (the paper's ``n``)."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        """Switch the module (recursively) to training or evaluation mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter and buffer names to arrays (copies)."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (shapes must match)."""
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer:"):
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            if params[name].data.shape != value.shape:
                raise ValueError(f"shape mismatch for {name!r}: "
                                 f"{params[name].data.shape} vs {value.shape}")
            params[name].data[...] = value
        # Buffers are matched by walking modules in the same order.
        buffer_items = [(n, b) for n, b in self.named_buffers()]
        for name, _ in buffer_items:
            key = f"buffer:{name}"
            if key in state:
                self._assign_buffer(name, state[key])

    def _assign_buffer(self, dotted_name: str, value: np.ndarray) -> None:
        parts = dotted_name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        module._buffers[parts[-1]][...] = value
        object.__setattr__(module, parts[-1], module._buffers[parts[-1]])

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        children = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({children})"
