"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F, init
from repro.utils.rng import new_rng


class Conv2d(Module):
    """Square-kernel 2-D convolution on NCHW tensors.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Convolution stride and symmetric zero padding.
    bias:
        Whether to learn a per-channel bias (often disabled before BatchNorm).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        rng = rng if rng is not None else new_rng("conv2d", in_channels, out_channels, kernel_size)
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng))
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Convolve all replicas at once with stacked ``(P, ...)`` filters.

        One im2col gathers every replica's patches and one stacked GEMM per
        direction replaces the per-replica loop (see
        :func:`repro.tensor.functional.conv2d_batched`); each replica slice is
        bit-identical to :meth:`forward` on that replica.
        """
        bias = stack.tensor(self.bias) if self.bias is not None else None
        return F.conv2d_batched(x, stack.tensor(self.weight), bias,
                                stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})")
