"""Flatten layer: collapse all non-batch dimensions."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class Flatten(Module):
    """Reshape ``(N, ...)`` into ``(N, prod(...))``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Keep the leading replica axis; collapse per-sample dimensions."""
        return x.reshape(x.shape[0], x.shape[1], -1)
