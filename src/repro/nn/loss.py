"""Loss-function layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class CrossEntropyLoss(Module):
    """Mean softmax cross-entropy over integer class targets."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target)
