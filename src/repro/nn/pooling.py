"""Pooling layers."""

from __future__ import annotations

from typing import Optional

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Pool a stacked ``(P, N, C, H, W)`` replica batch."""
        return F.max_pool2d_batched(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.kernel_size = int(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Average ``(P, N, C, H, W)`` over the spatial axes → ``(P, N, C)``."""
        return x.mean(axis=(3, 4))
