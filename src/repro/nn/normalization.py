"""Batch normalization layers.

ResNet-20 and VGG-16 rely on BatchNorm; the layer keeps running statistics as
buffers (excluded from gradient synchronization, as in the paper's setup where
only gradients are exchanged).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, init
from repro.tensor.tensor import invalidate_active_tape, record_tape_effect


class _BatchNormBase(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def _update_running(self, mean: np.ndarray, var: np.ndarray) -> None:
        m = self.momentum
        self._buffers["running_mean"][...] = (1 - m) * self._buffers["running_mean"] + m * mean
        self._buffers["running_var"][...] = (1 - m) * self._buffers["running_var"] + m * var


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over a (N, C) tensor."""

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            self._update_running(mean.data.reshape(-1), var.data.reshape(-1))
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(1, -1))
            var = Tensor(self._buffers["running_var"].reshape(1, -1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        return x_hat * self.weight.reshape(1, -1) + self.bias.reshape(1, -1)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Normalize a stacked ``(P, N, C)`` replica batch per replica.

        Batch statistics stay per replica (axis 1 only), and each replica's
        own running buffers are updated with its slice's statistics, exactly
        as the per-replica loop does.
        """
        P = x.shape[0]
        if self.training:
            mean = x.mean(axis=1, keepdims=True)
            var = x.var(axis=1, keepdims=True)
            siblings = list(stack.siblings(self))

            def update_running() -> None:
                # Reads mean/var data fresh at call time, so a tape replay that
                # refreshed those buffers in place updates the same statistics.
                for sibling, m_row, v_row in zip(siblings,
                                                 mean.data.reshape(P, -1),
                                                 var.data.reshape(P, -1)):
                    sibling._update_running(m_row, v_row)

            update_running()
            record_tape_effect(update_running)
        else:
            invalidate_active_tape("batchnorm eval-mode buffers")
            siblings = stack.siblings(self)
            mean = Tensor(np.stack([s._buffers["running_mean"] for s in siblings])
                          .reshape(P, 1, -1))
            var = Tensor(np.stack([s._buffers["running_var"] for s in siblings])
                         .reshape(P, 1, -1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        return (x_hat * stack.reshaped(self.weight, P, 1, self.num_features)
                + stack.reshaped(self.bias, P, 1, self.num_features))


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over an (N, C, H, W) tensor, per channel."""

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var_spatial() if hasattr(x, "var_spatial") else self._channel_var(x, mean)
            self._update_running(mean.data.reshape(-1), var.data.reshape(-1))
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(1, -1, 1, 1))
            var = Tensor(self._buffers["running_var"].reshape(1, -1, 1, 1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        return (x_hat * self.weight.reshape(1, -1, 1, 1)
                + self.bias.reshape(1, -1, 1, 1))

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Normalize a stacked ``(P, N, C, H, W)`` replica batch per replica.

        The reduction axes exclude the leading replica axis, so each replica
        sees exactly its own batch statistics; running buffers are updated on
        every replica's module (``stack.siblings``) with its own slice —
        bit-identical to running :meth:`forward` replica by replica.
        """
        P = x.shape[0]
        if self.training:
            mean = x.mean(axis=(1, 3, 4), keepdims=True)
            var = self._channel_var_batched(x, mean)
            siblings = list(stack.siblings(self))

            def update_running() -> None:
                for sibling, m_row, v_row in zip(siblings,
                                                 mean.data.reshape(P, -1),
                                                 var.data.reshape(P, -1)):
                    sibling._update_running(m_row, v_row)

            update_running()
            record_tape_effect(update_running)
        else:
            invalidate_active_tape("batchnorm eval-mode buffers")
            siblings = stack.siblings(self)
            mean = Tensor(np.stack([s._buffers["running_mean"] for s in siblings])
                          .reshape(P, 1, -1, 1, 1))
            var = Tensor(np.stack([s._buffers["running_var"] for s in siblings])
                         .reshape(P, 1, -1, 1, 1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        return (x_hat * stack.reshaped(self.weight, P, 1, self.num_features, 1, 1)
                + stack.reshaped(self.bias, P, 1, self.num_features, 1, 1))

    @staticmethod
    def _channel_var(x: Tensor, mean: Tensor) -> Tensor:
        centered = x - mean
        return (centered * centered).mean(axis=(0, 2, 3), keepdims=True)

    @staticmethod
    def _channel_var_batched(x: Tensor, mean: Tensor) -> Tensor:
        centered = x - mean
        return (centered * centered).mean(axis=(1, 3, 4), keepdims=True)
