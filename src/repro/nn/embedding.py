"""Token embedding layer (used by the LSTM-PTB language model)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F, init
from repro.utils.rng import new_rng


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size ``V``.
    embedding_dim:
        Vector dimensionality ``D``.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        rng = rng if rng is not None else new_rng("embedding", num_embeddings, embedding_dim)
        self.weight = Parameter(init.uniform((num_embeddings, embedding_dim), rng, bound=0.1))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(indices, self.weight)

    def forward_batched(self, indices: np.ndarray, stack) -> Tensor:
        """Look all replicas' tokens up at once: ``(P, ...)`` indices against
        the stacked ``(P, V, D)`` tables (bit-identical per replica)."""
        return F.embedding_batched(indices, stack.tensor(self.weight))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
