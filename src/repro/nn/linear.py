"""Fully-connected (affine) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F, init
from repro.utils.rng import new_rng


class Linear(Module):
    """Affine transformation ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for weight initialization; a deterministic default is
        derived from the layer dimensions when omitted.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = rng if rng is not None else new_rng("linear", in_features, out_features)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Affine map of all replicas at once: ``(P, N, in) -> (P, N, out)``.

        ``stack`` (a :class:`~repro.core.batched_replicas.ReplicaStack`)
        resolves this layer's parameters to their stacked ``(P, *shape)``
        autograd tensors; one stacked GEMM replaces the per-replica loop with
        bit-identical arithmetic.
        """
        weight = stack.tensor(self.weight)
        out = x.matmul(weight.transpose((0, 2, 1)))
        if self.bias is not None:
            out = out + stack.reshaped(self.bias, x.shape[0], 1, self.out_features)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"
