"""Communication substrate for simulated data-parallel training.

The paper runs Horovod/MPI Allreduce over 16 GPU nodes on 100 Gbps
InfiniBand.  This package replaces that stack with:

* :mod:`repro.comm.collectives` — faithful collective algorithms (ring
  Allreduce, ring Allgather, binomial-tree Broadcast, Reduce-scatter) that
  operate on the per-rank NumPy buffers of an in-process "world" and report
  exactly how many bytes each rank sent;
* :mod:`repro.comm.network_model` — an α–β (latency–bandwidth) cost model
  that converts those byte counts and round structures into time, with a
  preset for the paper's 100 Gbps InfiniBand fabric;
* :mod:`repro.comm.inprocess` — :class:`InProcessWorld`, which ties the two
  together and keeps per-rank traffic/time accounting for the evaluation
  harness;
* :mod:`repro.comm.topology` — node/link descriptions used by the network
  model, plus the logical communication graphs (ring / star /
  fully-connected) that gossip synchronization averages over.
"""

from repro.comm.backend import CollectiveOp, Communicator
from repro.comm.collectives import (
    CollectiveTrace,
    allgather,
    allreduce_naive,
    allreduce_ring,
    broadcast,
    neighbor_exchange,
    reduce_scatter,
)
from repro.comm.inprocess import InProcessWorld, WorldStats
from repro.comm.network_model import (
    CollectiveTimeModel,
    NetworkModel,
    ethernet_10gbps,
    infiniband_100gbps,
)
from repro.comm.topology import (
    TOPOLOGIES,
    ClusterTopology,
    CommTopology,
    FullyConnectedTopology,
    NodeSpec,
    RingTopology,
    StarTopology,
    get_topology,
)

__all__ = [
    "Communicator",
    "CollectiveOp",
    "CollectiveTrace",
    "allreduce_ring",
    "allreduce_naive",
    "allgather",
    "broadcast",
    "neighbor_exchange",
    "reduce_scatter",
    "InProcessWorld",
    "WorldStats",
    "NetworkModel",
    "CollectiveTimeModel",
    "infiniband_100gbps",
    "ethernet_10gbps",
    "ClusterTopology",
    "NodeSpec",
    "CommTopology",
    "RingTopology",
    "StarTopology",
    "FullyConnectedTopology",
    "TOPOLOGIES",
    "get_topology",
]
