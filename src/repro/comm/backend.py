"""Abstract communicator interface.

The trainer is written against this interface so the in-process simulated
world could later be swapped for a real MPI backend (mpi4py) without touching
the algorithm code — the same layering Horovod provides in the paper's
implementation.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

import numpy as np


class CollectiveOp(enum.Enum):
    """Reduction operators supported by allreduce / reduce-scatter.

    All three ops are supported end to end by the traced in-process world:
    the ring allreduce folds ``MAX`` with ``np.maximum`` in the same
    chunk-ring order it folds sums (so the trace/pricing is identical to a
    ``SUM`` allreduce of the same payload), and the naive gather+broadcast
    reference reduces through :meth:`combine`.  ``MAX`` is what distributed
    gradient-clipping and TernGrad-style scale negotiation would use; tests
    in ``tests/test_comm_world.py`` pin the end-to-end behaviour so the enum
    never advertises an op the fabric cannot execute.
    """

    SUM = "sum"
    MEAN = "average"
    MAX = "max"

    def combine(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Apply the reduction across a sequence of equal-shape arrays."""
        if not arrays:
            raise ValueError("cannot reduce an empty sequence")
        stacked = np.stack([np.asarray(a) for a in arrays])
        if self is CollectiveOp.SUM:
            return stacked.sum(axis=0)
        if self is CollectiveOp.MEAN:
            return stacked.mean(axis=0)
        if self is CollectiveOp.MAX:
            return stacked.max(axis=0)
        raise NotImplementedError(self)


class Communicator:
    """Per-rank view of a communication world.

    The synchronous collectives take this rank's contribution and return this
    rank's result; implementations coordinate across ranks however they like
    (in-process staging here; MPI in a real deployment).
    """

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def world_size(self) -> int:
        raise NotImplementedError

    def allreduce(self, array: np.ndarray, op: CollectiveOp = CollectiveOp.MEAN) -> np.ndarray:
        """Reduce ``array`` across all ranks and return the result to every rank.

        Implementations must honour every :class:`CollectiveOp` member —
        ``SUM``, ``MEAN`` and ``MAX`` — or raise a clear error naming the
        unsupported op; the in-process world supports all three.
        """
        raise NotImplementedError

    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        """Gather every rank's ``array``; returns the list indexed by rank."""
        raise NotImplementedError

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        """Broadcast ``root``'s array to every rank."""
        raise NotImplementedError

    def barrier(self) -> None:
        """Synchronize all ranks (no data movement)."""
        raise NotImplementedError
