"""In-process multi-worker communication world.

The reproduction simulates ``P`` data-parallel workers inside one Python
process.  Workers execute in lockstep: the trainer runs each rank's compute
phase, collects the per-rank buffers, and hands them to the world's
collective operations.  The collectives perform the *real* data movement
semantics (see :mod:`repro.comm.collectives`) and the world converts each
collective's trace into simulated wall-clock time using the α–β network
model, accumulating per-rank traffic statistics along the way.

This mirrors what Horovod + MPI give the paper's implementation: correct
collective results plus a communication cost determined by message sizes and
the fabric, not by Python overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.comm.backend import CollectiveOp
from repro.comm.collectives import (
    CollectiveTrace,
    _stage_ragged_payloads,
    allgather as _allgather,
    allreduce_naive,
    allreduce_ring,
    broadcast as _broadcast,
    neighbor_exchange as _neighbor_exchange,
    reduce_scatter as _reduce_scatter,
)
from repro.comm.network_model import CollectiveTimeModel, NetworkModel, infiniband_100gbps


@dataclass
class WorldStats:
    """Accounting of communication performed through a world."""

    collective_counts: Dict[str, int] = field(default_factory=dict)
    bytes_sent_per_rank: float = 0.0
    logical_payload_bytes: float = 0.0
    simulated_time_s: float = 0.0

    def record(self, trace: CollectiveTrace, simulated_time: float) -> None:
        self.collective_counts[trace.kind] = self.collective_counts.get(trace.kind, 0) + 1
        self.bytes_sent_per_rank += trace.bytes_sent_per_rank
        self.logical_payload_bytes += trace.message_bytes
        self.simulated_time_s += simulated_time

    def reset(self) -> None:
        self.collective_counts.clear()
        self.bytes_sent_per_rank = 0.0
        self.logical_payload_bytes = 0.0
        self.simulated_time_s = 0.0


class InProcessWorld:
    """A simulated world of ``world_size`` lockstep workers.

    Parameters
    ----------
    world_size:
        Number of simulated workers (the paper evaluates 2, 4, 8 and 16).
    network:
        The fabric model used to price collectives; defaults to the paper's
        100 Gbps InfiniBand.
    use_ring_allreduce:
        If True (default) dense allreduces use the ring algorithm; otherwise
        the naive gather+broadcast reference implementation.
    """

    def __init__(self, world_size: int, network: Optional[NetworkModel] = None,
                 use_ring_allreduce: bool = True):
        if world_size < 1:
            raise ValueError("world size must be at least 1")
        self.world_size = int(world_size)
        self.network = network if network is not None else infiniband_100gbps()
        self.time_model = CollectiveTimeModel(self.network)
        self.use_ring_allreduce = bool(use_ring_allreduce)
        self.stats = WorldStats()
        self.last_trace: Optional[CollectiveTrace] = None
        #: Live membership mask (a :class:`repro.faults.membership.Membership`,
        #: installed by the trainer's fault injector).  ``None`` — the default
        #: — means a healthy static world and keeps every collective on the
        #: exact pre-fault code path.
        self.membership = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(f"expected {self.world_size} contributions, got {len(buffers)}")

    def _alive(self) -> Optional[List[int]]:
        """Participating ranks under the membership mask, or ``None`` for the
        all-alive fast path.  Callers always pass full ``world_size`` buffer
        lists; dead ranks' entries are ignored (they may be ``None``), and
        dead ranks receive their own contribution back (or an empty gather),
        so reductions renormalize over the survivors automatically."""
        membership = self.membership
        if membership is None or membership.all_alive:
            return None
        alive = membership.alive_ranks()
        if not alive:
            raise RuntimeError("collective called with every rank dead")
        return alive

    def _record(self, trace: CollectiveTrace, logical_bytes: Optional[float] = None) -> float:
        """Price a collective trace and add it to the world statistics.

        ``logical_bytes`` overrides the payload size used for pricing.  The
        simulated workers exchange float32/float64 NumPy arrays for numerical
        fidelity, but several compressors would use a denser wire encoding in
        a real deployment (e.g. QSGD packs ≈2.8 bits per coordinate, Top-K
        sends 32-bit values).  The caller passes the analytic wire size so the
        priced traffic matches Table 2 of the paper.
        """
        if logical_bytes is not None and trace.message_bytes > 0:
            scale = float(logical_bytes) / trace.message_bytes
            trace.message_bytes = float(logical_bytes)
            trace.bytes_sent_per_rank *= scale
        if trace.kind == "neighbor_exchange":
            # The graph's degree structure (trace.rounds = max degree), not
            # the world size, sets the critical path of a gossip exchange.
            simulated = self.time_model.neighbor_exchange(trace.message_bytes, trace.rounds)
        else:
            simulated = self.time_model.collective_time(
                "allreduce" if trace.kind.startswith("allreduce") else trace.kind,
                trace.message_bytes, trace.world_size)
        self.stats.record(trace, simulated)
        self.last_trace = trace
        return simulated

    # ------------------------------------------------------------------ #
    # collectives (world-level: one contribution per rank, in rank order)
    # ------------------------------------------------------------------ #
    def allreduce(self, buffers: Sequence[np.ndarray],
                  op: CollectiveOp = CollectiveOp.MEAN,
                  logical_bytes: Optional[float] = None) -> List[np.ndarray]:
        """Allreduce across all ranks; returns each rank's (identical) result.

        Under a degraded membership only surviving ranks participate: the
        reduction (and a MEAN's normalization) runs over the alive subset
        and dead ranks receive their own contribution back untouched.
        """
        self._check(buffers)
        alive = self._alive()
        sub = buffers if alive is None else [buffers[r] for r in alive]
        if self.use_ring_allreduce:
            results, trace = allreduce_ring(sub, op)
        else:
            results, trace = allreduce_naive(sub, op)
        self._record(trace, logical_bytes)
        if alive is None:
            return results
        out = list(buffers)
        for i, r in enumerate(alive):
            out[r] = results[i]
        return out

    def allgather(self, buffers: Sequence[np.ndarray],
                  logical_bytes: Optional[float] = None) -> List[List[np.ndarray]]:
        """Allgather; rank ``r``'s result is the full list of contributions.

        Every rank receives read-only views of one shared staging buffer per
        contribution (one copy per contributor, not per rank) — the fused
        exchange path and the seed loop both route through this.

        Under a degraded membership the gathered list holds only surviving
        contributions (in rank order) and dead ranks receive an empty list.
        """
        self._check(buffers)
        alive = self._alive()
        sub = buffers if alive is None else [buffers[r] for r in alive]
        results, trace = _allgather(sub)
        self._record(trace, logical_bytes)
        if alive is None:
            return results
        out: List[List[np.ndarray]] = [[] for _ in range(self.world_size)]
        for i, r in enumerate(alive):
            out[r] = results[i]
        return out

    def broadcast(self, buffers: Sequence[np.ndarray], root: int = 0,
                  logical_bytes: Optional[float] = None) -> List[np.ndarray]:
        """Broadcast rank ``root``'s buffer to every rank (one shared
        read-only staging copy, not one copy per rank).  A dead root cannot
        broadcast; dead receivers keep their own buffer."""
        self._check(buffers)
        alive = self._alive()
        if alive is None:
            results, trace = _broadcast(buffers, root=root)
            self._record(trace, logical_bytes)
            return results
        if root not in alive:
            raise ValueError(f"broadcast root {root} is not alive")
        sub = [buffers[r] for r in alive]
        results, trace = _broadcast(sub, root=alive.index(root))
        self._record(trace, logical_bytes)
        out = list(buffers)
        for i, r in enumerate(alive):
            out[r] = results[i]
        return out

    def reduce_scatter(self, buffers: Sequence[np.ndarray],
                       op: CollectiveOp = CollectiveOp.SUM,
                       logical_bytes: Optional[float] = None) -> List[np.ndarray]:
        """Reduce then scatter equal chunks across ranks.  Under a degraded
        membership only survivors contribute and receive chunks; dead ranks
        get their own (unreduced) buffer back."""
        self._check(buffers)
        alive = self._alive()
        sub = buffers if alive is None else [buffers[r] for r in alive]
        results, trace = _reduce_scatter(sub, op)
        self._record(trace, logical_bytes)
        if alive is None:
            return results
        out = list(buffers)
        for i, r in enumerate(alive):
            out[r] = results[i]
        return out

    def neighbor_exchange(self, buffers: Sequence[np.ndarray], topology,
                          logical_bytes: Optional[float] = None) -> List[List[np.ndarray]]:
        """Gossip exchange over a :class:`~repro.comm.topology.CommTopology`.

        Rank ``r``'s result is the read-only staged contributions of its
        closed neighbourhood (itself + graph neighbours), ascending by rank.
        Priced by the graph's maximum degree, not the world size.

        Under a degraded membership the graph is re-routed around dead
        ranks (:meth:`~repro.comm.topology.CommTopology.alive_neighbors` —
        rings walk past dead hops, a dead star hub is replaced by the
        lowest survivor), degree/wire accounting follows the degraded
        graph, and dead ranks contribute nothing and receive an empty list.
        """
        self._check(buffers)
        alive = self._alive()
        if alive is None:
            results, trace = _neighbor_exchange(buffers, topology)
            self._record(trace, logical_bytes)
            return results
        p = self.world_size
        topology.validate(p)
        mask = self.membership.alive
        staged, mean_bytes = _stage_ragged_payloads(
            [buffers[r] for r in alive], "neighbor_exchange")
        by_rank = {r: staged[i] for i, r in enumerate(alive)}
        gathered: List[List[np.ndarray]] = [[] for _ in range(p)]
        for r in alive:
            hood = topology.alive_closed_neighborhood(r, p, mask)
            gathered[r] = [by_rank[q] for q in hood]
        trace = CollectiveTrace(
            kind="neighbor_exchange", message_bytes=mean_bytes,
            bytes_sent_per_rank=topology.alive_mean_degree(p, mask) * mean_bytes,
            rounds=topology.alive_max_degree(p, mask), world_size=len(alive))
        self._record(trace, logical_bytes)
        return gathered

    def point_to_point(self, message_bytes: float) -> float:
        """Price one point-to-point message (no data movement) and record it.

        The asynchronous strategies exchange with a server/center one rank at
        a time — there is no collective, just a single α–β priced message.
        The traffic still lands in :class:`WorldStats`, so
        ``simulated_comm_time`` covers async runs too.
        """
        message_bytes = float(message_bytes)
        if message_bytes < 0:
            raise ValueError(f"message_bytes must be >= 0, got {message_bytes}")
        trace = CollectiveTrace(kind="point_to_point",
                                message_bytes=message_bytes,
                                bytes_sent_per_rank=message_bytes,
                                rounds=1, world_size=self.world_size)
        simulated = self.network.point_to_point(message_bytes)
        self.stats.record(trace, simulated)
        self.last_trace = trace
        return simulated

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        self.stats.reset()

    @property
    def simulated_comm_time(self) -> float:
        """Total simulated communication time accumulated so far (seconds)."""
        return self.stats.simulated_time_s

    def __repr__(self) -> str:  # pragma: no cover
        return (f"InProcessWorld(world_size={self.world_size}, "
                f"network={self.network.name!r})")
