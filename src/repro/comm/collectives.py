"""Collective communication algorithms over per-rank buffers.

Each function takes the list of contributions indexed by rank (the state of
the whole simulated world), produces the per-rank results, and returns a
:class:`CollectiveTrace` describing the byte/round structure of the algorithm
actually executed.  The trace — not the Python execution time — is what the
α–β model prices, so the simulated communication cost reflects the collective
algorithm rather than NumPy overheads.

The ring Allreduce is implemented as a genuine reduce-scatter + allgather over
chunks (not a shortcut ``sum``), so tests can verify both the numerics and the
step structure that the paper's timing analysis relies on.

Allgather and broadcast distribute their results through a shared read-only
staging buffer: each contributor's payload is copied once and every rank
receives views of the same storage (as on a real fabric, where a payload is
serialized once).  This cuts the per-exchange memcopy of payload-gathering
algorithms from O(P²·n) to O(P·n) without touching the traces the network
model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.comm.backend import CollectiveOp


@dataclass
class CollectiveTrace:
    """Record of one collective execution.

    Attributes
    ----------
    kind:
        Collective name understood by the network model.
    message_bytes:
        Size of the logical payload per rank (what each rank contributes).
    bytes_sent_per_rank:
        Bytes each rank actually put on the wire under the chosen algorithm.
    rounds:
        Number of communication rounds on the critical path.
    world_size:
        Number of participating ranks.
    """

    kind: str
    message_bytes: float
    bytes_sent_per_rank: float
    rounds: int
    world_size: int


def _stage_read_only(payload: np.ndarray) -> np.ndarray:
    """One staging copy of a contributor's payload, shared by every rank.

    The seed collectives handed each rank its own private copy of every
    payload — O(P²·n) memcopy per Allgather.  A real network writes each
    contribution onto the wire once; this staging buffer mirrors that: one
    contiguous copy per contributor, marked read-only so the views handed to
    all ranks cannot alias-corrupt each other, cutting the exchange memcopy
    to O(P·n).
    """
    staged = np.array(payload, copy=True)
    staged.setflags(write=False)
    return staged


def _stage_ragged_payloads(buffers: Sequence[np.ndarray], collective: str
                           ) -> tuple[List[np.ndarray], float]:
    """Validate + stage possibly ragged per-rank payloads for gathering.

    Payload lengths may differ across ranks (sparse compressors select a
    different number of coordinates per worker), but every payload must
    share one dtype — validated up front with the offending ranks named,
    instead of failing deep inside a downstream concatenation.  Each
    payload is staged once into a shared read-only buffer; the returned
    mean byte size is what gather-style traces report as the message size.
    """
    arrays = [np.asarray(b) for b in buffers]
    if not arrays:
        raise ValueError("collective called with no participants")
    dtypes = [a.dtype for a in arrays]
    if len(set(dtypes)) > 1:
        offenders = ", ".join(f"rank {rank}: {dtype}" for rank, dtype in enumerate(dtypes))
        raise ValueError(
            f"{collective} requires every rank's payload to share one dtype, "
            f"got {offenders}; cast the payloads to a common dtype before the collective")
    mean_bytes = float(np.mean([a.nbytes for a in arrays]))
    return [_stage_read_only(a) for a in arrays], mean_bytes


def _as_float_arrays(buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
    arrays = [np.asarray(b) for b in buffers]
    if not arrays:
        raise ValueError("collective called with no participants")
    shape = arrays[0].shape
    for a in arrays:
        if a.shape != shape:
            raise ValueError(f"all contributions must share a shape; got {a.shape} vs {shape}")
    return arrays


def allreduce_naive(buffers: Sequence[np.ndarray],
                    op: CollectiveOp = CollectiveOp.MEAN) -> tuple[List[np.ndarray], CollectiveTrace]:
    """Reference allreduce: reduce centrally then copy to every rank.

    Exists to cross-check the ring implementation in tests; its trace models a
    gather+broadcast star, which is how a naive parameter server would behave.
    """
    arrays = _as_float_arrays(buffers)
    p = len(arrays)
    result = op.combine(arrays)
    nbytes = float(arrays[0].nbytes)
    trace = CollectiveTrace(kind="broadcast", message_bytes=nbytes,
                            bytes_sent_per_rank=nbytes, rounds=2 * max(0, p - 1),
                            world_size=p)
    return [result.copy() for _ in range(p)], trace


def allreduce_ring(buffers: Sequence[np.ndarray],
                   op: CollectiveOp = CollectiveOp.MEAN) -> tuple[List[np.ndarray], CollectiveTrace]:
    """Bandwidth-optimal ring allreduce (reduce-scatter phase + allgather phase).

    Every rank splits its buffer into P chunks.  During the reduce-scatter
    phase, chunk ``c`` travels around the ring starting at rank ``c``,
    accumulating one rank's contribution per hop; during the allgather phase
    the finished chunks circulate back.  Each rank transmits ``2 (P-1)/P`` of
    the buffer in total.

    The reduction is evaluated as a vectorized fold: element ``j`` belongs to
    chunk ``c(j)`` and accumulates contributions in ring order ``c(j),
    c(j)+1, …`` — the exact per-element addition sequence of a chunk-by-chunk
    ring (the seed's nested Python loops produced the same sums two orders of
    magnitude slower; the allgather phase is pure copying and contributes no
    arithmetic).
    """
    arrays = _as_float_arrays(buffers)
    p = len(arrays)
    original_shape = arrays[0].shape
    nbytes = float(arrays[0].nbytes)
    flat = np.stack([a.reshape(-1) for a in arrays]).astype(np.float64)
    n = flat.shape[1]

    if p == 1:
        result = flat[0] if op is not CollectiveOp.MEAN else flat[0] / 1.0
        out = [result.reshape(original_shape).astype(arrays[0].dtype)]
        return out, CollectiveTrace("allreduce_ring", nbytes, 0.0, 0, 1)

    # Chunk boundaries (last chunk absorbs the remainder) and, per element,
    # the chunk that owns it — i.e. the rank where its ring reduction starts.
    bounds = np.linspace(0, n, p + 1, dtype=np.int64)
    owner = np.searchsorted(bounds, np.arange(n), side="right") - 1
    np.clip(owner, 0, p - 1, out=owner)           # empty trailing chunks

    columns = np.arange(n)
    reduced = flat[owner, columns]
    for step in range(1, p):
        rows = owner + step
        rows[rows >= p] -= p
        contribution = flat[rows, columns]
        if op is CollectiveOp.MAX:
            np.maximum(reduced, contribution, out=reduced)
        else:
            reduced += contribution
    if op is CollectiveOp.MEAN:
        reduced = reduced / p

    results = [reduced.reshape(original_shape).astype(arrays[0].dtype) for _ in range(p)]
    trace = CollectiveTrace(kind="allreduce_ring", message_bytes=nbytes,
                            bytes_sent_per_rank=2.0 * (p - 1) / p * nbytes,
                            rounds=2 * (p - 1), world_size=p)
    return results, trace


def allgather(buffers: Sequence[np.ndarray]) -> tuple[List[List[np.ndarray]], CollectiveTrace]:
    """Ring allgather: every rank ends with the list of all contributions.

    Contributions may have different lengths (an "allgatherv"), which sparse
    compressors such as Gaussian-K need because each worker selects a
    different number of coordinates — but every payload must share one dtype
    (validated up front with the offending ranks named, instead of failing
    deep inside a downstream concatenation).  The trace reports the *average*
    per-rank contribution as the message size; in a ring allgather each rank
    forwards every other rank's contribution exactly once, so it sends
    ``(P-1) × average`` bytes.

    Each contribution is staged **once** into a shared read-only buffer and
    every rank receives views of the same staging storage (O(P·n) memcopy per
    exchange instead of the seed's copy-per-rank O(P²·n)); the trace's byte
    accounting still describes the modelled ring traffic, unchanged.
    """
    staged, mean_bytes = _stage_ragged_payloads(buffers, "allgather")
    p = len(staged)
    gathered = [list(staged) for _ in range(p)]
    trace = CollectiveTrace(kind="allgather", message_bytes=mean_bytes,
                            bytes_sent_per_rank=(p - 1) * mean_bytes if p > 1 else 0.0,
                            rounds=max(0, p - 1), world_size=p)
    return gathered, trace


def broadcast(buffers: Sequence[np.ndarray], root: int = 0) -> tuple[List[np.ndarray], CollectiveTrace]:
    """Binomial-tree broadcast of ``buffers[root]`` to every rank.

    The root's payload is staged once into a shared read-only buffer; every
    rank receives the same view (one copy total instead of one per rank).
    """
    arrays = _as_float_arrays(buffers)
    p = len(arrays)
    if not 0 <= root < p:
        raise ValueError(f"root {root} out of range for world size {p}")
    payload = arrays[root]
    nbytes = float(payload.nbytes)
    rounds = int(np.ceil(np.log2(p))) if p > 1 else 0
    trace = CollectiveTrace(kind="broadcast", message_bytes=nbytes,
                            bytes_sent_per_rank=nbytes, rounds=rounds, world_size=p)
    staged = _stage_read_only(payload)
    return [staged for _ in range(p)], trace


def neighbor_exchange(buffers: Sequence[np.ndarray], topology
                      ) -> tuple[List[List[np.ndarray]], CollectiveTrace]:
    """Sparse allgather over a :class:`~repro.comm.topology.CommTopology` graph.

    Rank ``r``'s result is the list of contributions of its *closed
    neighbourhood* (itself plus its graph neighbours), in ascending rank
    order — the averaging set of one gossip step.  Each contribution is
    staged once into a shared read-only buffer exactly like
    :func:`allgather`, so neighbours receive views, not copies.

    Contributions may have different lengths (an "allgatherv" over the
    graph): compressed parameter payloads — Gaussian-K deltas in
    particular — select a different number of coordinates per rank.  Every
    payload must share one dtype (validated up front with the offending
    ranks named).  The trace reports the *average* contribution as the
    message size, so callers that price a compressed exchange pass the
    analytic payload size via ``logical_bytes``.

    The trace models one send per edge endpoint: a rank with degree ``d``
    puts ``d`` copies of its payload on the wire, and the critical path is
    the maximum degree (a rank's NIC serializes its sends), which is what
    the α–β model prices.  This is how the graph "drives the network cost":
    a ring costs 2 rounds for any ``P >= 3`` (1 at ``P = 2``) while the
    star's hub pays ``P - 1``.
    """
    staged, mean_bytes = _stage_ragged_payloads(buffers, "neighbor_exchange")
    p = len(staged)
    topology.validate(p)
    gathered = [[staged[q] for q in topology.closed_neighborhood(r, p)] for r in range(p)]
    trace = CollectiveTrace(kind="neighbor_exchange", message_bytes=mean_bytes,
                            bytes_sent_per_rank=topology.mean_degree(p) * mean_bytes,
                            rounds=topology.max_degree(p), world_size=p)
    return gathered, trace


def reduce_scatter(buffers: Sequence[np.ndarray],
                   op: CollectiveOp = CollectiveOp.SUM) -> tuple[List[np.ndarray], CollectiveTrace]:
    """Reduce across ranks, then scatter equal chunks (rank r gets chunk r)."""
    arrays = _as_float_arrays(buffers)
    p = len(arrays)
    flat = [a.reshape(-1) for a in arrays]
    n = flat[0].size
    reduced = op.combine(flat)
    bounds = np.linspace(0, n, p + 1, dtype=np.int64)
    outputs = [reduced[bounds[r]:bounds[r + 1]].copy() for r in range(p)]
    nbytes = float(arrays[0].nbytes)
    trace = CollectiveTrace(kind="reduce_scatter", message_bytes=nbytes,
                            bytes_sent_per_rank=(p - 1) / p * nbytes if p > 1 else 0.0,
                            rounds=max(0, p - 1), world_size=p)
    return outputs, trace
