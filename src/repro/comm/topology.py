"""Cluster topology descriptions.

The paper's testbed is 16 nodes, each with one V100 GPU and a 100 Gbps
InfiniBand NIC.  The topology object records per-node compute throughput
relative to the benchmark host so the cost model can translate measured
compute times into "paper testbed" estimates if desired, and exposes the
network model of the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.comm.network_model import NetworkModel, infiniband_100gbps


@dataclass(frozen=True)
class NodeSpec:
    """A single node of the cluster."""

    name: str = "node"
    gpus_per_node: int = 1
    gpu_memory_gb: float = 16.0
    cpu_memory_gb: float = 256.0
    #: Relative compute speed versus the machine running the simulation (1.0
    #: means "assume the simulation host's measured compute time").
    relative_compute_speed: float = 1.0


@dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous cluster of ``num_nodes`` nodes on one fabric."""

    num_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkModel = field(default_factory=infiniband_100gbps)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a cluster needs at least one node")

    @property
    def total_workers(self) -> int:
        """One worker per GPU, as in the paper's Horovod setup."""
        return self.num_nodes * self.node.gpus_per_node

    def validate_world_size(self, world_size: int) -> None:
        """Check that a requested worker count fits on this cluster."""
        if world_size > self.total_workers:
            raise ValueError(f"world size {world_size} exceeds cluster capacity "
                             f"{self.total_workers}")


def paper_testbed() -> ClusterTopology:
    """The evaluation cluster from §4.1: 16 × (1 V100, 256 GB RAM), 100 Gbps IB."""
    return ClusterTopology(num_nodes=16,
                           node=NodeSpec(name="v100-node", gpus_per_node=1,
                                         gpu_memory_gb=16.0, cpu_memory_gb=256.0),
                           network=infiniband_100gbps())
