"""Cluster and communication-graph topology descriptions.

Two kinds of topology live here:

* :class:`ClusterTopology` / :class:`NodeSpec` — the *physical* testbed
  description (the paper's 16 × V100 cluster) used by the cost model to
  translate measured compute times into testbed estimates.
* :class:`CommTopology` and its registry ``TOPOLOGIES`` — *logical*
  communication graphs over the ranks of a world (ring, star,
  fully-connected).  The gossip synchronization strategy averages each
  rank's parameters with its graph neighbours, and the graph's degree
  structure drives the α–β network cost of the exchange
  (:meth:`repro.comm.inprocess.InProcessWorld.neighbor_exchange`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.comm.network_model import NetworkModel, infiniband_100gbps
from repro.registry import Registry


@dataclass(frozen=True)
class NodeSpec:
    """A single node of the cluster."""

    name: str = "node"
    gpus_per_node: int = 1
    gpu_memory_gb: float = 16.0
    cpu_memory_gb: float = 256.0
    #: Relative compute speed versus the machine running the simulation (1.0
    #: means "assume the simulation host's measured compute time").
    relative_compute_speed: float = 1.0


@dataclass(frozen=True)
class ClusterTopology:
    """A homogeneous cluster of ``num_nodes`` nodes on one fabric."""

    num_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkModel = field(default_factory=infiniband_100gbps)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a cluster needs at least one node")

    @property
    def total_workers(self) -> int:
        """One worker per GPU, as in the paper's Horovod setup."""
        return self.num_nodes * self.node.gpus_per_node

    def validate_world_size(self, world_size: int) -> None:
        """Check that a requested worker count fits on this cluster."""
        if world_size > self.total_workers:
            raise ValueError(f"world size {world_size} exceeds cluster capacity "
                             f"{self.total_workers}")


# --------------------------------------------------------------------- #
# logical communication graphs (gossip neighbourhoods)
# --------------------------------------------------------------------- #
class CommTopology:
    """A communication graph over the ranks ``0 .. world_size-1``.

    Subclasses define :meth:`neighbors`; everything else (degrees, closed
    neighbourhoods, validation) derives from it.  Graphs are undirected in
    spirit — a rank both sends to and receives from its neighbours — but
    :meth:`neighbors` is the single source of truth, so an asymmetric graph
    (the star's hub) simply returns asymmetric neighbour sets.
    """

    name: str = "base"

    def neighbors(self, rank: int, world_size: int) -> Tuple[int, ...]:
        """Ranks that ``rank`` exchanges with (excluding itself), ascending."""
        raise NotImplementedError

    def closed_neighborhood(self, rank: int, world_size: int) -> Tuple[int, ...]:
        """``rank`` plus its neighbours, ascending — the gossip averaging set."""
        self.validate(world_size)
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        return tuple(sorted({rank, *self.neighbors(rank, world_size)}))

    def degree(self, rank: int, world_size: int) -> int:
        return len(self.neighbors(rank, world_size))

    def max_degree(self, world_size: int) -> int:
        return max((self.degree(r, world_size) for r in range(world_size)), default=0)

    def mean_degree(self, world_size: int) -> float:
        if world_size < 1:
            return 0.0
        return sum(self.degree(r, world_size) for r in range(world_size)) / world_size

    def validate(self, world_size: int) -> "CommTopology":
        if world_size < 1:
            raise ValueError("world size must be at least 1")
        return self

    # ------------------------------------------------------------------ #
    # live-membership re-routing
    # ------------------------------------------------------------------ #
    def alive_neighbors(self, rank: int, world_size: int,
                        alive: Sequence[bool]) -> Tuple[int, ...]:
        """Neighbours of ``rank`` once dead ranks are routed around.

        The default simply drops dead neighbours from the static graph;
        subclasses with exploitable structure (ring, star) reconnect the
        graph instead so a single failure does not partition it.
        """
        return tuple(n for n in self.neighbors(rank, world_size) if alive[n])

    def alive_closed_neighborhood(self, rank: int, world_size: int,
                                  alive: Sequence[bool]) -> Tuple[int, ...]:
        """``rank`` plus its re-routed neighbours (the degraded gossip set)."""
        self.validate(world_size)
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        if all(alive):
            return self.closed_neighborhood(rank, world_size)
        return tuple(sorted({rank, *self.alive_neighbors(rank, world_size, alive)}))

    def alive_degree(self, rank: int, world_size: int,
                     alive: Sequence[bool]) -> int:
        return len(self.alive_neighbors(rank, world_size, alive))

    def alive_max_degree(self, world_size: int, alive: Sequence[bool]) -> int:
        """Max degree over surviving ranks — the degraded wire critical path."""
        return max((self.alive_degree(r, world_size, alive)
                    for r in range(world_size) if alive[r]), default=0)

    def alive_mean_degree(self, world_size: int, alive: Sequence[bool]) -> float:
        survivors = [r for r in range(world_size) if alive[r]]
        if not survivors:
            return 0.0
        return sum(self.alive_degree(r, world_size, alive)
                   for r in survivors) / len(survivors)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


#: Registry of communication graphs constructible by name (spec/CLI).
TOPOLOGIES = Registry("topology", expose="topologies")


@TOPOLOGIES.register("ring", description="each rank talks to its two ring neighbours")
class RingTopology(CommTopology):
    """Ring graph: rank ``r`` neighbours ``(r-1) % P`` and ``(r+1) % P``."""

    name = "ring"

    def neighbors(self, rank: int, world_size: int) -> Tuple[int, ...]:
        if world_size <= 1:
            return ()
        return tuple(sorted({(rank - 1) % world_size, (rank + 1) % world_size}))

    def alive_neighbors(self, rank: int, world_size: int,
                        alive: Sequence[bool]) -> Tuple[int, ...]:
        """Walk the ring past dead ranks: each survivor connects to the
        nearest alive rank in each direction, keeping the ring closed."""
        if world_size <= 1 or not alive[rank]:
            return ()
        found = set()
        for step in (-1, 1):
            node = (rank + step) % world_size
            while node != rank and not alive[node]:
                node = (node + step) % world_size
            if node != rank:
                found.add(node)
        return tuple(sorted(found))


@TOPOLOGIES.register("star", description="every rank talks to hub rank 0")
class StarTopology(CommTopology):
    """Star graph: rank 0 is the hub, every other rank is a leaf."""

    name = "star"

    def neighbors(self, rank: int, world_size: int) -> Tuple[int, ...]:
        if world_size <= 1:
            return ()
        if rank == 0:
            return tuple(range(1, world_size))
        return (0,)

    def alive_neighbors(self, rank: int, world_size: int,
                        alive: Sequence[bool]) -> Tuple[int, ...]:
        """When the hub dies, the lowest surviving rank acts as hub so the
        leaves are never stranded."""
        if world_size <= 1 or not alive[rank]:
            return ()
        survivors = [r for r in range(world_size) if alive[r]]
        if len(survivors) <= 1:
            return ()
        hub = survivors[0]
        if rank == hub:
            return tuple(r for r in survivors if r != hub)
        return (hub,)


@TOPOLOGIES.register("fully_connected", aliases=("full", "complete"),
                     description="every rank talks to every other rank")
class FullyConnectedTopology(CommTopology):
    """Complete graph: gossip over it equals a global average."""

    name = "fully_connected"

    def neighbors(self, rank: int, world_size: int) -> Tuple[int, ...]:
        return tuple(r for r in range(world_size) if r != rank)


@TOPOLOGIES.register("hierarchical", aliases=("two_level", "edge"),
                     description="two-level tree: clients -> edge "
                                 "aggregators -> server")
class HierarchicalTopology(CommTopology):
    """Two-level aggregation tree: clients → edge aggregators → server.

    The active cohort's slots are split into ``num_edges`` contiguous
    groups, each served by one edge aggregator; the edges feed one central
    server.  The fedavg strategy prices its parameter averaging over this
    tree's edges only — ``K`` client uplinks, ``num_edges`` edge→server
    links, and the same links again for the broadcast back — so inactive
    clients never appear on the wire.

    As a gossip graph, :meth:`neighbors` connects the members of one edge
    group to each other (the set of slots whose updates the edge aggregator
    combines), which keeps the graph valid for degree-based pricing.
    """

    name = "hierarchical"

    def __init__(self, num_edges: int = 2):
        if num_edges < 1:
            raise ValueError(f"num_edges must be >= 1, got {num_edges}")
        self.num_edges = int(num_edges)

    def edge_groups(self, world_size: int) -> Tuple[Tuple[int, ...], ...]:
        """Contiguous slot groups, one per edge aggregator (non-empty)."""
        self.validate(world_size)
        edges = min(self.num_edges, world_size)
        bounds = [world_size * e // edges for e in range(edges + 1)]
        return tuple(tuple(range(bounds[e], bounds[e + 1]))
                     for e in range(edges))

    def edge_of(self, rank: int, world_size: int) -> int:
        """The edge aggregator serving ``rank``."""
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size "
                             f"{world_size}")
        for edge, group in enumerate(self.edge_groups(world_size)):
            if rank in group:
                return edge
        raise AssertionError("edge groups must cover every rank")

    def max_group_size(self, world_size: int) -> int:
        return max(len(group) for group in self.edge_groups(world_size))

    def neighbors(self, rank: int, world_size: int) -> Tuple[int, ...]:
        group = self.edge_groups(world_size)[self.edge_of(rank, world_size)]
        return tuple(r for r in group if r != rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HierarchicalTopology(num_edges={self.num_edges})"


def get_topology(name: str) -> CommTopology:
    """Construct a registered communication graph, e.g. ``get_topology("ring")``."""
    return TOPOLOGIES.create(name)


def paper_testbed() -> ClusterTopology:
    """The evaluation cluster from §4.1: 16 × (1 V100, 256 GB RAM), 100 Gbps IB."""
    return ClusterTopology(num_nodes=16,
                           node=NodeSpec(name="v100-node", gpus_per_node=1,
                                         gpu_memory_gb=16.0, cpu_memory_gb=256.0),
                           network=infiniband_100gbps())
