"""Analytic α–β network cost model.

The standard Hockney model charges ``α + m/β`` seconds to move an ``m``-byte
message over a link, where ``α`` is the per-message latency and ``β`` the link
bandwidth in bytes/second.  Collective costs follow Thakur, Rabenseifner &
Gropp (2005) — the same reference the paper cites ([46]) when discussing
Allreduce vs Allgather behaviour on its 100 Gbps fabric.

The model produces the *communication* component of iteration time for
Figures 4/5 and the scaling-efficiency column of Table 2.  Compute and
compression components are measured on the host running the benchmark, so
absolute times differ from the paper's V100 testbed while the relative
ordering (the figure "shape") is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth description of the interconnect.

    Parameters
    ----------
    latency_s:
        Per-message latency α in seconds.
    bandwidth_Bps:
        Link bandwidth β in bytes per second.
    name:
        Human-readable label used in reports.
    """

    latency_s: float
    bandwidth_Bps: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_Bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")

    def point_to_point(self, message_bytes: float) -> float:
        """Time to move one message of ``message_bytes`` over one link."""
        return self.latency_s + max(0.0, message_bytes) / self.bandwidth_Bps


def infiniband_100gbps() -> NetworkModel:
    """The paper's fabric: 100 Gbps InfiniBand (EDR), ~1.5 µs MPI latency."""
    return NetworkModel(latency_s=1.5e-6, bandwidth_Bps=100e9 / 8.0, name="100Gbps InfiniBand")


def ethernet_10gbps() -> NetworkModel:
    """A slower commodity fabric used for what-if comparisons."""
    return NetworkModel(latency_s=25e-6, bandwidth_Bps=10e9 / 8.0, name="10Gbps Ethernet")


# Named fabrics resolvable from an ExperimentSpec's ``"network": "<name>"``.
from repro.registry import Registry  # noqa: E402  (registry has no comm deps)

NETWORKS = Registry("network", expose="networks")
NETWORKS.register("infiniband_100gbps", infiniband_100gbps, aliases=("infiniband", "ib100"),
                  description="the paper's 100 Gbps InfiniBand fabric")
NETWORKS.register("ethernet_10gbps", ethernet_10gbps, aliases=("ethernet",),
                  description="10 Gbps commodity Ethernet for what-if comparisons")


def get_network(name: str) -> NetworkModel:
    """Construct a named network model, e.g. ``get_network("ethernet_10gbps")``."""
    return NETWORKS.create(name)


@dataclass(frozen=True)
class CollectiveTimeModel:
    """Closed-form collective costs on top of a :class:`NetworkModel`.

    All formulas are per-collective wall-clock estimates assuming a flat,
    full-bisection network (every rank has one NIC of the given bandwidth).
    """

    network: NetworkModel

    # ------------------------------------------------------------------ #
    # allreduce
    # ------------------------------------------------------------------ #
    def allreduce_ring(self, message_bytes: float, world_size: int) -> float:
        """Ring allreduce: 2(P−1) steps of ``m/P`` bytes each.

        Bandwidth-optimal for large messages; this is what Horovod/NCCL use
        for dense gradient exchange.
        """
        p = max(1, int(world_size))
        if p == 1:
            return 0.0
        chunk = message_bytes / p
        steps = 2 * (p - 1)
        return steps * self.network.point_to_point(chunk)

    def allreduce_recursive_doubling(self, message_bytes: float, world_size: int) -> float:
        """Recursive-doubling allreduce: log2(P) rounds of the full message.

        Latency-optimal; the right choice for A2SGD's 8-byte payload.
        """
        p = max(1, int(world_size))
        if p == 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        return rounds * self.network.point_to_point(message_bytes)

    def allreduce(self, message_bytes: float, world_size: int,
                  small_message_threshold: float = 4096.0) -> float:
        """Dispatch between latency- and bandwidth-optimal allreduce.

        MPI implementations switch algorithms by message size; we mimic that
        so A2SGD's two-scalar exchange is charged the latency-bound cost and
        dense exchanges the bandwidth-bound cost.
        """
        if message_bytes <= small_message_threshold:
            return self.allreduce_recursive_doubling(message_bytes, world_size)
        return self.allreduce_ring(message_bytes, world_size)

    # ------------------------------------------------------------------ #
    # allgather / broadcast / reduce-scatter
    # ------------------------------------------------------------------ #
    def allgather(self, per_rank_bytes: float, world_size: int) -> float:
        """Ring allgather: (P−1) steps, each moving one rank's contribution."""
        p = max(1, int(world_size))
        if p == 1:
            return 0.0
        return (p - 1) * self.network.point_to_point(per_rank_bytes)

    def broadcast(self, message_bytes: float, world_size: int) -> float:
        """Binomial-tree broadcast: ceil(log2 P) rounds of the full message."""
        p = max(1, int(world_size))
        if p == 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        return rounds * self.network.point_to_point(message_bytes)

    def reduce_scatter(self, message_bytes: float, world_size: int) -> float:
        """Ring reduce-scatter: (P−1) steps of ``m/P`` bytes."""
        p = max(1, int(world_size))
        if p == 1:
            return 0.0
        chunk = message_bytes / p
        return (p - 1) * self.network.point_to_point(chunk)

    def neighbor_exchange(self, message_bytes: float, max_degree: int) -> float:
        """Gossip neighbour exchange: the busiest rank's sends gate the step.

        Every rank sends its payload to each graph neighbour; sends share
        one NIC, so the critical path is ``max_degree`` sequential
        point-to-point messages.  A ring therefore costs 2 messages for any
        ``P >= 3`` (1 at ``P = 2``, where both directions collapse onto the
        single other rank) while a star's hub pays ``P − 1`` — the
        topology, not the world size, sets the price.

        ``message_bytes`` is the payload actually serialized per message:
        dense float32 parameter vectors cost ``4n`` bytes, while a
        compressed parameter exchange passes the compressor's analytic
        payload size (``wire_bits / 8``), so quantized gossip is priced by
        what travels, not by what it reconstructs.
        """
        return max(0, int(max_degree)) * self.network.point_to_point(message_bytes)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def collective_time(self, kind: str, message_bytes: float, world_size: int) -> float:
        """Time for a named collective (used by the traffic replayer)."""
        dispatch = {
            "allreduce": self.allreduce,
            "allreduce_ring": self.allreduce_ring,
            "allreduce_recursive_doubling": self.allreduce_recursive_doubling,
            "allgather": self.allgather,
            "broadcast": self.broadcast,
            "reduce_scatter": self.reduce_scatter,
        }
        if kind not in dispatch:
            raise KeyError(f"unknown collective {kind!r}")
        return dispatch[kind](message_bytes, world_size)
