"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List the registered models, compressors and the Table-1 hyperparameters.
``run``
    Train one (model, algorithm, world-size) configuration with the simulated
    distributed trainer and print its convergence curve.
``sweep``
    Run a Figure-3-style convergence sweep (several algorithms × worker
    counts) and write the results to JSON.
``cost``
    Evaluate the paper-scale cost model: iteration time, total training time
    and scaling efficiency (Figures 4/5, Table 2).
``compare``
    Compare every registered compressor on one synthetic gradient (traffic,
    measured kernel time, compression error).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_figure_series, format_table
from repro.analysis.sweeps import DEFAULT_ALGORITHMS, convergence_sweep, cost_sweep
from repro.compress import get_compressor, list_compressors
from repro.core.cost_model import CostModel
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.models.registry import (
    PAPER_HYPERPARAMETERS,
    PAPER_PARAMETER_COUNTS,
    get_model_spec,
    list_models,
)
from repro.utils.serialization import save_json
from repro.utils.timer import median_time


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="A2SGD reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list models, compressors and paper hyperparameters")

    run = sub.add_parser("run", help="train one configuration with the simulated trainer")
    run.add_argument("--model", default="fnn3", choices=list_models())
    run.add_argument("--algorithm", default="a2sgd", choices=list_compressors())
    run.add_argument("--workers", type=int, default=4)
    run.add_argument("--epochs", type=int, default=3)
    run.add_argument("--iterations", type=int, default=12, help="iterations per epoch")
    run.add_argument("--batch-size", type=int, default=16)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--output", default=None, help="optional JSON output path")

    sweep = sub.add_parser("sweep", help="Figure-3-style convergence sweep")
    sweep.add_argument("--model", default="fnn3", choices=list_models())
    sweep.add_argument("--workers", type=int, nargs="+", default=[2, 4, 8])
    sweep.add_argument("--algorithms", nargs="+", default=list(DEFAULT_ALGORITHMS))
    sweep.add_argument("--epochs", type=int, default=3)
    sweep.add_argument("--output", default=None, help="optional JSON output path")

    cost = sub.add_parser("cost", help="paper-scale cost model (Figures 4/5, Table 2)")
    cost.add_argument("--models", nargs="+", default=["fnn3", "vgg16", "resnet20", "lstm_ptb"])
    cost.add_argument("--algorithms", nargs="+", default=list(DEFAULT_ALGORITHMS))
    cost.add_argument("--workers", type=int, nargs="+", default=[2, 4, 8, 16])
    cost.add_argument("--output", default=None, help="optional JSON output path")

    compare = sub.add_parser("compare", help="compare compressors on one gradient")
    compare.add_argument("--size", type=int, default=1_000_000)
    compare.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench-pipeline",
                           help="time the fused gradient pipeline against the seed path")
    # The harness times the classification iteration loop.
    bench.add_argument("--model", default="fnn3",
                       choices=[name for name in list_models()
                                if get_model_spec(name, "tiny").task == "classification"])
    bench.add_argument("--algorithm", default="a2sgd", choices=list_compressors())
    bench.add_argument("--workers", type=int, default=8)
    bench.add_argument("--iterations", type=int, default=60)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--output", default="BENCH_pipeline.json",
                       help="JSON file the run is appended to")

    return parser


# ---------------------------------------------------------------------- #
# command implementations (each returns the text it printed, for testing)
# ---------------------------------------------------------------------- #
def cmd_info() -> str:
    rows = []
    for name in list_models():
        hp = PAPER_HYPERPARAMETERS[name]
        rows.append([name, f"{PAPER_PARAMETER_COUNTS[name]:,}", hp["dataset"],
                     hp["batch_size"], hp["base_lr"], hp["lr_policy"], hp["epochs"]])
    models_table = format_table(
        ["model", "#params (paper)", "dataset", "batch", "base LR", "LR policy", "epochs"],
        rows, title="Models (Table 1)")
    compressors_table = format_table(
        ["compressor", "exchange", "bits @ 1M params", "complexity"],
        [[name, get_compressor(name).exchange.value,
          f"{get_compressor(name).wire_bits(1_000_000):,.0f}",
          get_compressor(name).computation_complexity(1_000_000)]
         for name in list_compressors()],
        title="Gradient compressors")
    text = models_table + "\n\n" + compressors_table
    print(text)
    return text


def cmd_run(args: argparse.Namespace) -> str:
    config = ExperimentConfig(model=args.model, preset="tiny", algorithm=args.algorithm,
                              world_size=args.workers, epochs=args.epochs,
                              batch_size=args.batch_size,
                              max_iterations_per_epoch=args.iterations, seed=args.seed)
    result = run_experiment(config)
    rows = [[epoch, f"{loss:.4f}", f"{metric:.2f}"]
            for epoch, loss, metric in zip(result.metrics.epochs, result.metrics.train_loss,
                                           result.metrics.metric)]
    text = format_table(
        ["epoch", "train loss", result.metric_name],
        rows,
        title=(f"{args.model} / {args.algorithm} / {args.workers} workers — "
               f"{result.wire_bits_per_iteration:,.0f} bits/worker/iteration, "
               f"{result.wall_time_s:.1f}s wall time"))
    print(text)
    if args.output:
        path = save_json(result.as_dict(), args.output)
        print(f"results written to {path}")
    return text


def cmd_sweep(args: argparse.Namespace) -> str:
    results = convergence_sweep(args.model, algorithms=args.algorithms,
                                world_sizes=args.workers, epochs=args.epochs)
    sections: List[str] = []
    for world_size, row in results.items():
        series = {name: data["metric"] for name, data in row.items()}
        epochs = next(iter(row.values()))["epochs"]
        metric_name = next(iter(row.values()))["metric_name"]
        sections.append(format_figure_series(
            series, epochs, x_label="epoch",
            title=f"{args.model}, {world_size} workers — {metric_name} per epoch"))
    text = "\n\n".join(sections)
    print(text)
    if args.output:
        path = save_json(results, args.output)
        print(f"results written to {path}")
    return text


def cmd_cost(args: argparse.Namespace) -> str:
    sweep = cost_sweep(models=args.models, algorithms=args.algorithms,
                       world_sizes=args.workers, cost_model=CostModel())
    sections: List[str] = []
    for model, entry in sweep.items():
        series = {name: [round(v * 1e3, 2) for v in data["iteration_s"]]
                  for name, data in entry["algorithms"].items()}
        sections.append(format_figure_series(series, entry["world_sizes"], x_label="workers",
                                             title=f"{model} — ms per iteration (Figure 4)"))
        efficiency_rows = [[name, f"{data['scaling_efficiency_at_8']:.2f}",
                            f"{data['communication_bits']:,.0f}"]
                           for name, data in entry["algorithms"].items()]
        sections.append(format_table(["algorithm", "scaling efficiency @8", "bits/worker/iter"],
                                     efficiency_rows, title=f"{model} — Table 2 quantities"))
    text = "\n\n".join(sections)
    print(text)
    if args.output:
        path = save_json(sweep, args.output)
        print(f"results written to {path}")
    return text


def cmd_compare(args: argparse.Namespace) -> str:
    gradient = (np.random.default_rng(args.seed).standard_normal(args.size) * 0.01
                ).astype(np.float32)
    rows = []
    for name in list_compressors():
        compressor = get_compressor(name)
        seconds = median_time(lambda c=compressor: c.compress(gradient.copy()), repeats=3)
        fresh = get_compressor(name)
        fresh.compress(gradient.copy())
        rows.append([name, compressor.exchange.value,
                     f"{compressor.wire_bits(args.size):,.0f}",
                     f"{seconds * 1e3:.2f}",
                     f"{fresh.stats.last_compression_error:.3f}"])
    text = format_table(
        ["compressor", "exchange", "bits/worker", "compress (ms)", "single-shot error"],
        rows, title=f"Compressor comparison on an n={args.size:,} gradient")
    print(text)
    return text


def cmd_bench_pipeline(args: argparse.Namespace) -> str:
    from repro.analysis.perf_pipeline import (
        format_benchmark,
        run_pipeline_benchmark,
        write_benchmark_json,
    )

    result = run_pipeline_benchmark(model=args.model, algorithm=args.algorithm,
                                    world_size=args.workers,
                                    iterations=args.iterations, repeats=args.repeats)
    text = format_benchmark(result)
    print(text)
    if args.output:
        path = write_benchmark_json(result, args.output)
        print(f"appended run to {path}")
    return text


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "info":
        cmd_info()
    elif args.command == "run":
        cmd_run(args)
    elif args.command == "sweep":
        cmd_sweep(args)
    elif args.command == "cost":
        cmd_cost(args)
    elif args.command == "compare":
        cmd_compare(args)
    elif args.command == "bench-pipeline":
        cmd_bench_pipeline(args)
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
